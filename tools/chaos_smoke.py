"""CI chaos harness: seeded fault plans against the always-on service.

The robustness contract under test, for every :class:`FaultPlan` below:

1. **byte-identity** — a :class:`~repro.service.QueryService` driven through
   transport drops/tears, daemon crashes and store IO errors returns raw
   values *and* noisy releases byte-identical to the same-seed fault-free
   serial service;
2. **ledger conservation** — the per-camera budget snapshot after the chaos
   run equals the serial run's exactly: a fault may cost retries, never
   epsilon;
3. **replay** — plans whose sites are driven deterministically (crash-at-seq,
   content-keyed store faults) fire the *same* fault sequence on every run
   of the same plan + seed;
4. **typed degradation** — a query deadline raises
   :class:`~repro.errors.QueryTimeoutError` with nothing charged, and the
   clean rerun admits normally;
5. **crash consistency** — a durable service (``wal_dir=``) killed with a
   *real* ``SIGKILL`` mid-query (the ``service.crash_at_seq`` fault site
   with the WAL's crash hook swapped for ``os.kill``), then restarted over
   the same WAL directory, recovers per-camera budgets exactly equal to a
   never-crashed run's, never double-charges, and resumes the interrupted
   query byte-identically with its pre-crash chunks served warm from the
   shared store.  The crash-restart cycle runs twice and both iterations
   must produce identical bytes (replay determinism), with no stranded
   ``*.tmp`` files in the WAL directories and no leaked
   ``/dev/shm/privid-bc-*`` segments.

Run with: ``python tools/chaos_smoke.py``
(``--crash-driver`` is the internal child-process mode of the
crash-restart plan — the process that actually gets SIGKILLed.)
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import warnings
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.faults import FaultKind, FaultPlan, FaultRule  # noqa: E402
from repro.core.remote import ShardedEngine  # noqa: E402
from repro.errors import QueryTimeoutError  # noqa: E402
from repro.evaluation.runner import (  # noqa: E402
    register_scenario_camera,
    scenario_policy_map,
)
from repro.query.builder import QueryBuilder  # noqa: E402
from repro.scene.scenarios import build_scenario  # noqa: E402
from repro.service import QueryService  # noqa: E402

FAILURES: list[str] = []

# Transport mayhem: dropped and torn result frames, sticky task writes.
# Reader-thread arrival order is the OS scheduler's, so this plan asserts
# byte-identity and conservation, not an exact fired log.
TRANSPORT_CHAOS = FaultPlan(name="transport-chaos", seed=11, rules=(
    FaultRule(site="transport.*.result", kind=FaultKind.DROP_FRAME,
              probability=0.15, max_fires=3),
    FaultRule(site="transport.*.result", kind=FaultKind.TORN_FRAME,
              at=(5,), max_fires=1),
    FaultRule(site="transport.*.task", kind=FaultKind.DELAY,
              probability=0.2, delay=0.05, max_fires=5),
))

# A shard daemon dies right after accepting protocol seq 4, and the first
# respawn attempt is refused (feeding the dial/breaker path).  The crash
# trigger is a pure function of the seq, so the fired schedule must replay.
DAEMON_CRASH = FaultPlan(name="daemon-crash", seed=23, rules=(
    FaultRule(site="transport.*.task", kind=FaultKind.CRASH, after_seq=4),
    FaultRule(site="transport.worker2.connect", kind=FaultKind.CONNECT_REFUSED,
              at=(0,), max_fires=1),
))

# Store mayhem: reads and writes fail, one entry is scribbled over.  Every
# decision is keyed by the entry fingerprint and polled from the driving
# thread, so the fired log must replay exactly.
STORE_CHAOS = FaultPlan(name="store-chaos", seed=37, rules=(
    FaultRule(site="store.put", kind=FaultKind.IO_ERROR,
              probability=0.3, max_fires=100),
    FaultRule(site="store.get", kind=FaultKind.IO_ERROR,
              probability=0.2, max_fires=100),
    FaultRule(site="store.get", kind=FaultKind.CORRUPT,
              probability=0.15, max_fires=100),
))

# Same-host fast-path mayhem: binary-format store entries (the tiered
# default) are scribbled over mid-run, exercising the mmap decoder's
# corrupt-entry self-heal, and a pipe worker is killed *while it holds an
# attachment to the stream's shared-memory broadcast segment*.  Both
# triggers are deterministic (fixed op indices / seq), so the fired log
# must replay; the per-run checks additionally assert the coordinator
# unlinked every ``privid-bc-*`` segment at stream close — a dead worker's
# attachment must never leak the segment.
SHM_BINARY_CHAOS = FaultPlan(name="shm-binary-chaos", seed=51, rules=(
    FaultRule(site="store.get", kind=FaultKind.CORRUPT, at=(3, 11),
              max_fires=2),
    FaultRule(site="transport.*.task", kind=FaultKind.CRASH, after_seq=6),
))

PLANS = [(TRANSPORT_CHAOS, False), (DAEMON_CRASH, True), (STORE_CHAOS, True),
         (SHM_BINARY_CHAOS, True)]


def replay_signature(log: tuple[str, ...]) -> list[str]:
    """The deterministic view of a fired log, for replay comparison.

    Each event string embeds its site, per-site op index, kind, seq and
    token.  Three things are scheduler placement, not schedule, and are
    normalized away: *which* interchangeable pool worker absorbed a
    transport fault (``workerN`` → ``worker*``), how many earlier ops that
    worker happened to carry (the per-site op index on transport sites —
    the protocol ``seq`` stays exact), and how events from different sites
    interleaved in the global log (sorted).
    """
    def normalize(line: str) -> str:
        line = re.sub(r"transport\.worker\d+", "transport.worker*", line)
        return re.sub(r"(transport\.worker\*\.[\w.]+)#\d+", r"\1#*", line)
    return sorted(normalize(line) for line in log)


def check(ok: bool, label: str) -> None:
    print(f"{'PASS' if ok else 'FAIL'}  {label}")
    if not ok:
        FAILURES.append(label)


def people_query(name: str, *, bucket: float = 360, epsilon: float = 1.0,
                 chunk: float = 60):
    return (QueryBuilder(name)
            .split("campus", begin=0, end=720, chunk_duration=chunk,
                   mask="owner", into="chunks")
            .process("chunks", executable="count_entering_people.py", max_rows=5,
                     schema=[("kind", "STRING", ""), ("dy", "NUMBER", 0.0)],
                     into="people")
            .select_count(table="people", bucket_seconds=bucket, epsilon=epsilon)
            .build())


def drive_queries(service: QueryService):
    """The fixed sequential query sequence every run replays.

    Sequential submission keeps noise-stream assignment (query seq) and
    coordinator-side store traffic deterministic, which is what lets the
    chaos run be compared bit-for-bit against the serial run.
    """
    outputs = []
    # Distinct chunkings so the second query cannot be fully served from the
    # first one's warm store entries — every stream exercises the engine.
    for name, epsilon, chunk in (("q-count", 1.0, 60), ("q-count-fine", 0.5, 45)):
        result = service.execute(people_query(name, epsilon=epsilon, chunk=chunk))
        outputs.append((repr(result.raw_series_unsafe()), repr(result.series())))
    return outputs, service.stats()["budgets"]


def run_serial(scenario, policy_map):
    with QueryService(seed=3, cache="memory") as service:
        register_scenario_camera(service, scenario, policy_map=policy_map,
                                 epsilon_budget=5.0, sample_period=1.0)
        return drive_queries(service)


def run_chaos(scenario, policy_map, plan: FaultPlan):
    """One seeded chaos run; returns (outputs, budgets, injector, health,
    dispatch stats)."""
    injector = plan.injector()
    store_dir = tempfile.mkdtemp(prefix=f"privid-chaos-{plan.name}-")
    engine = ShardedEngine(2, chunksize=1, heartbeat_interval=0.2,
                           task_timeout=2.0, max_task_retries=5,
                           breaker_reset=0.5)
    try:
        with QueryService(seed=3, engine=engine, cache=f"tiered:{store_dir}",
                          on_engine_failure="serial_fallback",
                          fault_injector=injector) as service:
            register_scenario_camera(service, scenario, policy_map=policy_map,
                                     epsilon_budget=5.0, sample_period=1.0)
            outputs, budgets = drive_queries(service)
            health = service.health()
            dispatch = engine.dispatch_stats.as_dict()
        return outputs, budgets, injector, health, dispatch
    finally:
        engine.shutdown()  # caller-owned: the service leaves it running


# --------------------------------------------------------- crash-restart plan

#: Journal token of the crash-restart plan's query: naming it up front is
#: what lets the restarted process find and resume the interrupted query.
CRASH_TOKEN = "crash-q"


def crash_driver(args: argparse.Namespace) -> int:
    """Child-process mode: one durable service run that may get SIGKILLed.

    Opens a :class:`~repro.service.QueryService` over ``--wal-dir`` (opening
    *is* recovery when the directory already holds a log), registers the
    scenario camera, and executes the fixed query under ``--token``.  With
    ``--crash-at-seq N`` a ``service.crash_at_seq`` CRASH rule is armed and
    the WAL's crash hook swapped for a genuine ``os.kill(getpid(), SIGKILL)``
    — the process dies dirty at the exact WAL append the plan names, leaving
    whatever the fsync discipline made durable.  On survival, writes a JSON
    report (results, budgets, charge seq, recovery info, warm-store hits) to
    ``--out`` and exits 0; the parent distinguishes crash from completion by
    the exit status and the report's existence.
    """
    scenario = build_scenario("campus", scale=0.2, duration_hours=0.2, seed=7)
    policy_map = scenario_policy_map(scenario, k_segments=1)
    injector = None
    if args.crash_at_seq is not None:
        injector = FaultPlan(name="crash-restart", seed=5, rules=(
            FaultRule(site="service.crash_at_seq", kind=FaultKind.CRASH,
                      after_seq=args.crash_at_seq),)).injector()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        service = QueryService(seed=3, cache=f"tiered:{args.store_dir}",
                               wal_dir=args.wal_dir, fault_injector=injector)
        service.wal.crash_hook = lambda: os.kill(os.getpid(), signal.SIGKILL)
        register_scenario_camera(service, scenario, policy_map=policy_map,
                                 epsilon_budget=5.0, sample_period=1.0)
        result = service.execute(people_query("crashy"),
                                 resume_token=args.token)
        report = {
            "raw": repr(result.raw_series_unsafe()),
            "noisy": repr(result.series()),
            "budgets": service.stats()["budgets"],
            "charge_seq": service.ledger.last_charge_seq,
            "metadata": {"resumed": result.metadata["resumed"],
                         "resume_token": result.metadata["resume_token"]},
            "recovery": service.ledger.last_recovery,
            "warm_hits": service.stats()["cache"].get("hits", 0),
        }
        service.close()
    Path(args.out).write_text(json.dumps(report, sort_keys=True))
    return 0


def _drive_crash_run(wal_dir: str, store_dir: str,
                     crash_at: int | None = None):
    """Run one ``--crash-driver`` child; returns (returncode, report|None)."""
    out = Path(tempfile.mkdtemp(prefix="privid-crash-out-")) / "report.json"
    cmd = [sys.executable, str(Path(__file__).resolve()), "--crash-driver",
           "--wal-dir", wal_dir, "--store-dir", store_dir,
           "--token", CRASH_TOKEN, "--out", str(out)]
    if crash_at is not None:
        cmd += ["--crash-at-seq", str(crash_at)]
    proc = subprocess.run(cmd, capture_output=True, text=True, timeout=600)
    report = json.loads(out.read_text()) if out.exists() else None
    if proc.returncode not in (0, -signal.SIGKILL):
        print(proc.stdout[-2000:], file=sys.stderr)
        print(proc.stderr[-2000:], file=sys.stderr)
    return proc.returncode, report


def run_crash_restart() -> None:
    """The crash-restart plan: kill -9 mid-query, restart, resume, compare.

    Two crash windows per iteration, each against a never-crashed reference
    run over its own fresh WAL + store directories:

    * **mid-stream** — the kill lands among the per-chunk journal
      checkpoints, before the charge record exists: recovery must show the
      query uncharged and the resume must admit (and charge) normally.
    * **at-charge** — the kill lands on the very append that made the
      charge durable, before the in-memory ledger ever applied it: replay
      must reconstruct the charge from the WAL alone and the resume must
      *skip* admission (charging again would double-bill the analyst).

    Both windows must end with budgets exactly equal to the reference and
    the resumed query byte-identical, with pre-crash chunks served warm
    from the shared disk store.  The whole cycle runs twice; everything
    observable must replay bit-identically across iterations.
    """
    signatures = []
    for iteration in range(2):
        label = f"[crash-restart iter {iteration}]"
        observed: list[object] = []
        ref_code, ref = _drive_crash_run(
            tempfile.mkdtemp(prefix="privid-crwal-ref-"),
            tempfile.mkdtemp(prefix="privid-crstore-ref-"))
        check(ref_code == 0 and ref is not None,
              f"{label} never-crashed reference run completed")
        if ref is None:
            return
        check(ref["charge_seq"] > 0,
              f"{label} reference charged at WAL seq {ref['charge_seq']}")
        observed.append((ref["raw"], ref["noisy"], ref["budgets"]))
        windows = (("mid-stream", max(3, ref["charge_seq"] - 5)),
                   ("at-charge", ref["charge_seq"]))
        for window, crash_at in windows:
            wal_dir = tempfile.mkdtemp(prefix=f"privid-crwal-{window}-")
            store_dir = tempfile.mkdtemp(prefix=f"privid-crstore-{window}-")
            code, report = _drive_crash_run(wal_dir, store_dir,
                                            crash_at=crash_at)
            check(code == -signal.SIGKILL,
                  f"{label} {window}: service died by SIGKILL at WAL seq "
                  f"{crash_at} (rc={code})")
            check(report is None,
                  f"{label} {window}: killed run released no result")
            code, resumed = _drive_crash_run(wal_dir, store_dir)
            check(code == 0 and resumed is not None,
                  f"{label} {window}: restart over the same WAL recovered "
                  f"and finished")
            if resumed is None:
                continue
            check(resumed["metadata"]["resumed"] is True
                  and resumed["metadata"]["resume_token"] == CRASH_TOKEN,
                  f"{label} {window}: query resumed under its token")
            check(resumed["raw"] == ref["raw"]
                  and resumed["noisy"] == ref["noisy"],
                  f"{label} {window}: resumed raw + noisy releases "
                  f"byte-identical to the never-crashed run")
            check(resumed["budgets"] == ref["budgets"],
                  f"{label} {window}: budgets exactly conserved — "
                  f"no double-charge (remaining_min="
                  f"{resumed['budgets']['campus']['remaining_min']})")
            check(resumed["recovery"]["records_replayed"] > 0,
                  f"{label} {window}: recovery replayed "
                  f"{resumed['recovery']['records_replayed']} WAL records")
            if window == "at-charge":
                check(resumed["recovery"]["charged_queries"] == 1,
                      f"{label} at-charge: the durable charge was "
                      f"reconstructed from the WAL alone")
            check(resumed["warm_hits"] > 0,
                  f"{label} {window}: resume served {resumed['warm_hits']} "
                  f"pre-crash chunks warm from the shared store")
            stranded = sorted(str(p) for p in Path(wal_dir).glob("*.tmp"))
            check(not stranded,
                  f"{label} {window}: no stranded WAL temp files "
                  f"{stranded or ''}")
            observed.append((resumed["raw"], resumed["noisy"],
                             resumed["budgets"], resumed["recovery"]))
        if Path("/dev/shm").exists():
            leaked = sorted(str(entry) for entry
                            in Path("/dev/shm").glob("privid-bc-*"))
            check(not leaked,
                  f"{label} no leaked shared-memory segments {leaked or ''}")
        signatures.append(json.dumps(observed, sort_keys=True))
    check(signatures[0] == signatures[1],
          "[crash-restart] both iterations byte-identical (replay "
          "determinism)")


def main() -> int:
    scenario = build_scenario("campus", scale=0.2, duration_hours=0.2, seed=7)
    policy_map = scenario_policy_map(scenario, k_segments=1)
    reference_outputs, reference_budgets = run_serial(scenario, policy_map)

    for plan, exact_replay in PLANS:
        logs = []
        for attempt in range(2):
            with warnings.catch_warnings():
                # Chaos runs warn by design (dead shards, open breakers,
                # serial fallback); the checks below are the signal.
                warnings.simplefilter("ignore", RuntimeWarning)
                outputs, budgets, injector, health, dispatch = run_chaos(
                    scenario, policy_map, plan)
            label = f"[{plan.name} run {attempt}]"
            check(outputs == reference_outputs,
                  f"{label} raw + noisy releases byte-identical to serial")
            check(budgets == reference_budgets,
                  f"{label} per-camera ledger balances conserved "
                  f"(remaining_min={budgets['campus']['remaining_min']})")
            check(len(injector.fired) > 0,
                  f"{label} the plan actually fired "
                  f"({len(injector.fired)} events: {injector.summary()})")
            check(health["status"] in ("ok", "degraded"),
                  f"{label} service stayed serving (health={health['status']})")
            if Path("/dev/shm").exists():
                leaked = sorted(str(entry) for entry
                                in Path("/dev/shm").glob("privid-bc-*"))
                check(not leaked,
                      f"{label} every shared-memory broadcast segment "
                      f"unlinked at stream close {leaked or ''}")
            if plan is SHM_BINARY_CHAOS:
                # The scenario only means anything if the fast path engaged:
                # the killed worker must have been holding a real attachment.
                check(dispatch["shm_segments"] > 0,
                      f"{label} broadcasts used the shared-memory fast path "
                      f"({dispatch['shm_segments']} segments)")
            logs.append(replay_signature(injector.log()))
        if exact_replay:
            check(logs[0] == logs[1],
                  f"[{plan.name}] same plan + same seed fired the same "
                  f"fault sequence ({len(logs[0])} events)")

    # ---- deadlines: a timed-out query is typed and charges nothing.
    with QueryService(seed=3, cache="memory") as service:
        register_scenario_camera(service, scenario, policy_map=policy_map,
                                 epsilon_budget=5.0, sample_period=1.0)
        future = service.submit(people_query("doomed"), timeout=1e-6)
        try:
            future.result()
            timed_out = False
        except QueryTimeoutError:
            timed_out = True
        check(timed_out, "[deadline] past-deadline query raises QueryTimeoutError")
        remaining = service.stats()["budgets"]["campus"]["remaining_min"]
        check(remaining == 5.0,
              f"[deadline] nothing charged on timeout (remaining={remaining})")
        service.execute(people_query("clean"))
        counters = service.stats()["queries"]
        check(counters["timed_out"] == 1 and counters["completed"] == 1,
              f"[deadline] counters typed correctly: {counters}")

    # ---- crash consistency: kill -9 mid-query, recover, resume, compare.
    run_crash_restart()

    if FAILURES:
        print(f"\n{len(FAILURES)} chaos check(s) failed")
        return 1
    print("\nchaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--crash-driver", action="store_true",
                        help="internal: run one durable-service child of the "
                             "crash-restart plan")
    parser.add_argument("--wal-dir")
    parser.add_argument("--store-dir")
    parser.add_argument("--token", default=CRASH_TOKEN)
    parser.add_argument("--crash-at-seq", type=int, default=None)
    parser.add_argument("--out")
    parsed = parser.parse_args()
    if parsed.crash_driver:
        sys.exit(crash_driver(parsed))
    sys.exit(main())
