#!/usr/bin/env python3
"""Check that documentation links resolve.

Scans the repo-root markdown files and ``docs/*.md`` for markdown links and
verifies that every *relative* target exists — including ``#anchor``
fragments, which must match a heading (GitHub slugification) in the target
file.  External ``http(s)://`` links are not fetched (CI must not depend on
the network); ``mailto:`` links are skipped.

Exit status 0 when every link resolves, 1 otherwise (with one line per
broken link).  Run from anywhere: paths are resolved against the repo root.

Usage: ``python tools/check_docs.py``
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown inline links: [text](target) — tolerates titles after a space.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Fenced code blocks, removed before link extraction.
_FENCE = re.compile(r"```.*?```", re.DOTALL)
#: Inline code spans, removed before link extraction.
_CODE = re.compile(r"`[^`]*`")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def github_slug(heading: str) -> str:
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\s-]", "", text)
    return re.sub(r"\s+", "-", text)


def heading_slugs(path: Path) -> set[str]:
    """Every heading anchor of a markdown file (duplicate suffixes included)."""
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in _HEADING.finditer(path.read_text(encoding="utf-8")):
        slug = github_slug(match.group(1))
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        slugs.add(slug if seen == 0 else f"{slug}-{seen}")
    return slugs


def iter_links(path: Path):
    text = _CODE.sub("", _FENCE.sub("", path.read_text(encoding="utf-8")))
    for match in _LINK.finditer(text):
        yield match.group(1)


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    for target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, anchor = target.partition("#")
        resolved = path if not base else (path.parent / base).resolve()
        if not resolved.exists():
            errors.append(f"{path.relative_to(REPO_ROOT)}: broken link "
                          f"-> {target} (no such path)")
            continue
        if anchor:
            if resolved.is_dir() or resolved.suffix.lower() != ".md":
                errors.append(f"{path.relative_to(REPO_ROOT)}: anchor link "
                              f"-> {target} targets a non-markdown path")
            elif anchor not in heading_slugs(resolved):
                errors.append(f"{path.relative_to(REPO_ROOT)}: broken anchor "
                              f"-> {target} (no heading '#{anchor}')")
    return errors


def main() -> int:
    documents = sorted(REPO_ROOT.glob("*.md")) + sorted((REPO_ROOT / "docs").glob("*.md"))
    if not documents:
        print("check_docs: no markdown files found", file=sys.stderr)
        return 1
    errors: list[str] = []
    links = 0
    for document in documents:
        links += sum(1 for _ in iter_links(document))
        errors.extend(check_file(document))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"check_docs: {len(documents)} files, {links} links, "
          f"{len(errors)} broken")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
