"""CI smoke test for the serving load harness: replay determinism + leakage.

Stands up a small but real population — 12 tenants, zipf-skewed, open-loop
Poisson arrivals — over a scenario camera on a 4-wide service and checks the
two properties the load harness exists to guarantee:

1. **Replay determinism.**  Two same-seed runs on fresh same-seed services
   produce byte-identical workload schedules AND byte-identical per-query
   releases — noisy values included, because submission order pins each
   query's noise stream.
2. **Zero ledger leakage.**  The per-camera charge counts implied by the
   completed releases' ``source_intervals`` equal the ledger's own per-camera
   charge counts exactly, every admission is accounted
   (``admit_calls == admitted + denied``, ``admitted == completed``), and
   every arrival lands in exactly one outcome.

It then runs the full three-phase serving benchmark
(``benchmarks/bench_serving_load.py``), which asserts determinism again at
larger scale and writes ``BENCH_serving.json`` — the artifact the
``serving-bench`` CI job uploads.

Run with: ``python tools/serving_smoke.py``
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO / "src"))
sys.path.insert(0, str(_REPO))

from repro.bench.serving import (  # noqa: E402
    ServingLoadHarness,
    WorkloadConfig,
    generate_schedule,
    scenario_query_factory,
)
from repro.evaluation.runner import (  # noqa: E402
    register_scenario_camera,
    scenario_policy_map,
)
from repro.scene.scenarios import build_scenario  # noqa: E402
from repro.service import QueryService  # noqa: E402

FAILURES: list[str] = []

SMOKE_CONFIG = WorkloadConfig(seed=41, num_tenants=12, cameras=("campus",),
                              mode="open", duration_s=6.0,
                              arrival_rate_per_s=4.0)


def check(ok: bool, label: str) -> None:
    print(f"{'PASS' if ok else 'FAIL'}  {label}")
    if not ok:
        FAILURES.append(label)


def run_once(scenario, policy_map):
    service = QueryService(seed=3, engine="thread:4", cache="memory")
    register_scenario_camera(service, scenario, policy_map=policy_map,
                             epsilon_budget=500.0, sample_period=1.0)
    with service:
        harness = ServingLoadHarness(
            service, scenario_query_factory(epsilon=0.05),
            execute_kwargs={"default_epsilon": 0.05})
        report = harness.run(generate_schedule(SMOKE_CONFIG))
    return report


def main() -> int:
    scenario = build_scenario("campus", scale=0.2, duration_hours=0.2, seed=7)
    policy_map = scenario_policy_map(scenario, k_segments=1)

    first = run_once(scenario, policy_map)
    second = run_once(scenario, policy_map)
    events = len(first.schedule.events)
    print(f"population: {SMOKE_CONFIG.num_tenants} tenants, {events} arrivals")

    # ---- replay determinism.
    check(first.schedule.digest() == second.schedule.digest(),
          "same-seed workload schedules are byte-identical")
    outcomes = first.outcomes()
    check(outcomes["completed"] == events,
          f"every arrival completed under ample budget ({outcomes})")
    check(first.releases_digest() == second.releases_digest(),
          "two same-seed runs released byte-identical values (noise included)")
    check(first.raw_digest() == second.raw_digest(),
          "raw (pre-noise) values replay byte-identically")

    # ---- zero ledger leakage: releases' charged intervals == the ledger's
    # own charge records, per camera, exactly.
    budgets = first.stats["budgets"]
    charged = first.charges_by_camera()
    for camera, count in charged.items():
        check(budgets[camera]["charges"] == count,
              f"{camera}: ledger recorded {budgets[camera]['charges']} "
              f"charges == {count} release source intervals")
    ledger = first.ledger
    check(ledger["admitted"] == outcomes["completed"],
          f"one ledger admission per completed query "
          f"({ledger['admitted']} == {outcomes['completed']})")
    check(ledger["admit_calls"] == ledger["admitted"] + ledger["denied"],
          "every admission call classified as admitted or denied")
    check(sum(outcomes.values()) == events,
          f"outcomes partition the arrivals exactly ({outcomes})")
    check(first.stats["queries"]["active"] == 0,
          "no query left active after the run drained")

    if FAILURES:
        print(f"\n{len(FAILURES)} smoke check(s) failed")
        return 1

    # ---- the full three-phase benchmark: asserts determinism at 64-tenant
    # scale and writes BENCH_serving.json (the CI artifact).
    from benchmarks.bench_serving_load import test_serving_load_population
    test_serving_load_population()

    print("\nserving smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
