"""CI smoke test for the service layer over real TCP shard daemons.

Exercises the full always-on deployment path end to end, the way an
operator would run it:

1. starts two shard daemons (``python -m repro.core.remote --listen
   127.0.0.1:0``) and reads the announced ports;
2. stands up a :class:`~repro.service.QueryService` connected to them
   (``engine="sharded:127.0.0.1:P1,127.0.0.1:P2"``) with a tiered chunk
   store;
3. checks the TCP-sharded service answers byte-identically (raw values
   *and* noisy releases) to a same-seed serial service;
4. races four concurrent queries against a camera whose budget only admits
   two — exactly two must be admitted and the denied futures must raise
   ``BudgetExceededError`` with nothing charged past the budget;
5. shuts everything down cleanly and fails loudly (exit 1) on any miss.

Run with: ``python tools/service_smoke.py``
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
from concurrent.futures import wait
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.remote import _LISTENING_MARKER, _worker_env  # noqa: E402
from repro.errors import BudgetExceededError  # noqa: E402
from repro.evaluation.runner import (  # noqa: E402
    register_scenario_camera,
    scenario_policy_map,
)
from repro.query.builder import QueryBuilder  # noqa: E402
from repro.scene.scenarios import build_scenario  # noqa: E402
from repro.service import QueryService  # noqa: E402

FAILURES: list[str] = []


def check(ok: bool, label: str) -> None:
    print(f"{'PASS' if ok else 'FAIL'}  {label}")
    if not ok:
        FAILURES.append(label)


def start_daemon() -> tuple[subprocess.Popen, int]:
    """Start one shard daemon on an ephemeral port; return (process, port)."""
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.core.remote", "--listen", "127.0.0.1:0"],
        stdout=subprocess.PIPE, env=_worker_env(), text=True)
    line = process.stdout.readline().strip()
    marker, _host, port = line.split()
    if marker != _LISTENING_MARKER:
        raise RuntimeError(f"unexpected daemon announcement: {line!r}")
    return process, int(port)


def people_query(name: str, *, bucket: float = 360, epsilon: float = 1.0):
    return (QueryBuilder(name)
            .split("campus", begin=0, end=720, chunk_duration=60,
                   mask="owner", into="chunks")
            .process("chunks", executable="count_entering_people.py", max_rows=5,
                     schema=[("kind", "STRING", ""), ("dy", "NUMBER", 0.0)],
                     into="people")
            .select_count(table="people", bucket_seconds=bucket, epsilon=epsilon)
            .build())


def build_service(scenario, policy_map, *, engine, cache) -> QueryService:
    service = QueryService(seed=3, engine=engine, cache=cache)
    register_scenario_camera(service, scenario, policy_map=policy_map,
                             epsilon_budget=2.5, sample_period=1.0)
    return service


def main() -> int:
    scenario = build_scenario("campus", scale=0.2, duration_hours=0.2, seed=7)
    policy_map = scenario_policy_map(scenario, k_segments=1)
    daemons = [start_daemon() for _ in range(2)]
    addresses = ",".join(f"127.0.0.1:{port}" for _, port in daemons)
    store_dir = tempfile.mkdtemp(prefix="privid-service-smoke-")
    print(f"daemons listening: {addresses}")

    try:
        # ---- byte-identity: TCP-sharded service vs same-seed serial service.
        # Both answer their first submission (query seq 0) from the same
        # deterministic noise stream, so even the noisy releases must match.
        with build_service(scenario, policy_map, engine=None,
                           cache="memory") as serial_service:
            reference = serial_service.execute(people_query("reference"),
                                               charge_budget=False)
        with build_service(scenario, policy_map, engine=f"sharded:{addresses}",
                           cache=f"tiered:{store_dir}") as service:
            probe = service.execute(people_query("probe"), charge_budget=False)
            check(repr(probe.raw_series_unsafe())
                  == repr(reference.raw_series_unsafe()),
                  "raw values over TCP shards == serial service")
            check(repr(probe.series()) == repr(reference.series()),
                  "noisy releases over TCP shards == serial service")

            # ---- shared-budget exhaustion: four racing analysts, budget 2.5,
            # one 1.0-epsilon release each over the same window -> the
            # rho-expanded admission check admits exactly two.
            futures = [service.submit(people_query(f"analyst-{i}", bucket=720))
                       for i in range(4)]
            wait(futures)
            denials = [f for f in futures
                       if isinstance(f.exception(), BudgetExceededError)]
            admitted = [f for f in futures if f.exception() is None]
            unexpected = [f for f in futures
                          if f.exception() is not None
                          and not isinstance(f.exception(), BudgetExceededError)]
            check(not unexpected, "no query failed for a non-budget reason")
            check(len(admitted) == 2 and len(denials) == 2,
                  f"2 of 4 racing queries admitted on a 2.5-epsilon budget "
                  f"(admitted={len(admitted)}, denied={len(denials)})")

            stats = service.stats()
            remaining = stats["budgets"]["campus"]["remaining_min"]
            check(abs(remaining - 0.5) < 1e-9,
                  f"ledger charged exactly the admitted queries "
                  f"(remaining_min={remaining})")
            check(stats["queries"] == {"submitted": 5, "completed": 3,
                                       "denied": 2, "failed": 0,
                                       "timed_out": 0, "cancelled": 0,
                                       "rejected": 0, "active": 0},
                  f"service counters consistent: {stats['queries']}")
            check(stats["engine"]["engine"] == "sharded"
                  and len(stats["engine"]["dispatch"]["per_shard"]) == 2,
                  "stats() reports per-shard dispatch for both TCP shards")
    finally:
        for process, _ in daemons:
            process.kill()
            process.wait()

    if FAILURES:
        print(f"\n{len(FAILURES)} smoke check(s) failed")
        return 1
    print("\nservice smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
