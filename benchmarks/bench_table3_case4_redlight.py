"""Table 3 Case 4 (Q10-Q12): red-light duration with everything else masked.

Paper: masking all pixels except the traffic light yields rho = 0, so no
noise is needed and accuracy is 100%.
"""

from __future__ import annotations

import pytest

from repro.evaluation.baselines import red_light_duration_truth
from repro.evaluation.queries import case4_red_light_query
from repro.evaluation.runner import run_repeated
from repro.utils.timebase import SECONDS_PER_HOUR

from benchmarks.conftest import BENCH_HOURS, print_table

PAPER_TRUTH = {"campus": 75, "highway": 50, "urban": 100}


@pytest.mark.parametrize("name", ["campus", "highway", "urban"])
def test_case4_red_light_duration(benchmark, primary_scenarios, evaluation_system, name):
    scenario = primary_scenarios[name]
    query = case4_red_light_query(name, window_seconds=BENCH_HOURS * SECONDS_PER_HOUR,
                                  chunk_duration=600.0)
    truth = red_light_duration_truth(scenario)

    def run():
        return run_repeated(evaluation_system, query, samples=50, reference=truth)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Table 3 Case 4 ({name})", [{
        "video": name,
        "ground_truth_s": truth,
        "privid_result_s": round(outcome.raw_series[0], 2),
        "noise_scale": outcome.noise_scales[0],
        "accuracy": outcome.accuracy.as_percent(),
        "paper_truth_s": PAPER_TRUTH[name],
        "paper_accuracy": "100.00%",
    }])
    # rho = 0 means zero sensitivity and therefore zero noise.
    assert outcome.noise_scales[0] == 0.0
    assert outcome.accuracy.mean > 0.95
