"""Table 2: per-chunk output range, whole frame vs spatial regions.

Paper: splitting the frame into regions reduces the maximum per-chunk object
count by 1.74-2.25x, which translates directly into lower noise.
"""

from __future__ import annotations

import pytest

from repro.analysis.region_analysis import analyze_region_ranges
from repro.utils.timebase import TimeInterval

from benchmarks.conftest import print_table

PAPER_REDUCTIONS = {"campus": 2.00, "highway": 1.74, "urban": 2.25}


@pytest.mark.parametrize("name", ["campus", "highway", "urban"])
def test_table2_spatial_split(benchmark, primary_scenarios, name):
    scenario = primary_scenarios[name]

    def run():
        return analyze_region_ranges(scenario.video, scenario.region_scheme,
                                     chunk_duration=60.0,
                                     window=TimeInterval(0.0, scenario.video.duration))

    analysis = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Table 2 ({name})", [{
        "video": name,
        "max_frame": analysis.max_per_frame,
        "max_region": analysis.max_per_region,
        "reduction_x": round(analysis.reduction_factor, 2),
        "paper_reduction_x": PAPER_REDUCTIONS[name],
    }])
    assert analysis.max_per_region <= analysis.max_per_frame
    assert analysis.reduction_factor >= 1.0
