"""Fig. 8 (Appendix C): privacy degradation beyond the (rho, K) bound.

Paper: the probability an adversary can detect an event grows smoothly with
how far the event's persistence exceeds the protected rho, for each false-
positive tolerance alpha.
"""

from __future__ import annotations

import numpy as np

from repro.core.degradation import degradation_curve

from benchmarks.conftest import print_table

ALPHAS = (0.001, 0.01, 0.1, 0.2)
RATIOS = tuple(np.linspace(0.0, 12.0, 25))


def test_fig8_degradation_curves(benchmark):
    def run():
        curves = {}
        for alpha in ALPHAS:
            curves[alpha] = degradation_curve(epsilon=0.25, bounded_rho=30.0,
                                              chunk_duration=5.0, alpha=alpha, ratios=RATIOS)
        return curves

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for alpha, points in curves.items():
        for point in points[::6]:
            rows.append({
                "alpha": alpha,
                "persistence_ratio": round(point.persistence_ratio, 1),
                "effective_epsilon": round(point.effective_epsilon, 2),
                "max_detection_probability": round(point.detection_probability, 3),
            })
    print_table("Fig. 8: max detection probability vs actual/expected persistence", rows)
    for alpha, points in curves.items():
        probabilities = [point.detection_probability for point in points]
        assert probabilities == sorted(probabilities)
        assert probabilities[-1] <= 1.0
        # Within the bound the detection probability stays near the nominal
        # epsilon's bound (which exceeds alpha only by the e^eps factor).
        from repro.core.degradation import detection_probability_bound

        assert probabilities[0] <= detection_probability_bound(0.25, alpha) + 1e-9
