"""Fig. 3: persistence heatmaps and the owner-chosen masks per video.

Paper: lingering objects concentrate in a few fixed regions (benches, parking
shoulders, plazas); masking those regions is what enables the large rho
reductions of Fig. 4.
"""

from __future__ import annotations

import pytest

from repro.analysis.persistence import persistence_heatmap

from benchmarks.conftest import print_table


@pytest.mark.parametrize("name", ["campus", "highway", "urban"])
def test_fig3_persistence_heatmap(benchmark, primary_scenarios, name):
    scenario = primary_scenarios[name]

    def run():
        return persistence_heatmap(scenario.video, cell_size=80.0, sample_period=2.0)

    heatmap = benchmark.pedantic(run, rounds=1, iterations=1)
    hottest = heatmap.hottest_cells(10)
    rows = []
    overlaps_linger_zone = False
    for cell in hottest:
        box = heatmap.grid.cell_box(cell)
        in_zone = any(box.intersection_area(zone) > 0 for zone in scenario.linger_zones)
        overlaps_linger_zone = overlaps_linger_zone or in_zone
        rows.append({
            "video": name,
            "hot_cell": cell,
            "cell_x": int(box.x),
            "cell_y": int(box.y),
            "seconds": round(float(heatmap.cell_seconds.reshape(-1)[cell]), 1),
            "inside_owner_mask_zone": in_zone,
        })
    print_table(f"Fig. 3 hottest cells ({name})", rows[:5])
    # The heatmap must be non-trivial, and among its hottest cells the
    # owner's lingering zone should appear (that is how the paper's masks
    # were chosen); busy walkways can legitimately top the list.
    assert heatmap.max_cell_seconds > 0
    assert overlaps_linger_zone or name == "campus"
