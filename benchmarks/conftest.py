"""Shared fixtures for the benchmark harness.

Benchmarks regenerate every table and figure of the paper's evaluation on
scaled-down synthetic scenes (see DESIGN.md §2 for the substitutions and
EXPERIMENTS.md for paper-vs-measured numbers).  Scenario generation is
expensive, so scenes are built once per session and shared read-only.
"""

from __future__ import annotations

import os

import pytest

from repro.core import PrividSystem, create_cache, create_engine
from repro.evaluation.runner import (
    register_porto_cameras,
    register_scenario_camera,
    scenario_policy_map,
)
from repro.scene.porto import PortoConfig, generate_porto_dataset
from repro.scene.scenarios import build_scenario

#: Scale factors applied to the primary scenarios (1.0 reproduces the paper's
#: object densities but takes many minutes per query; these values keep the
#: full harness to a few minutes while preserving every trend).
BENCH_SCALES = {"campus": 0.5, "highway": 0.15, "urban": 0.15}
BENCH_HOURS = 4.0
#: The evaluation protects single appearances (K = 1), matching the noise
#: levels implied by the paper's reported accuracies.
BENCH_K_SEGMENTS = 1


def pytest_addoption(parser):
    """Engine/cache knobs for the whole benchmark harness.

    ``--privid-engine`` selects the chunk execution engine ('serial',
    'thread[:N]' or 'process[:N]'; defaults to the PRIVID_ENGINE environment
    variable, then 'serial').  ``--privid-cache`` selects the chunk result
    store ('off', 'memory', 'disk:PATH' or 'tiered:PATH'; defaults to the
    PRIVID_CACHE environment variable, then 'memory' — caching is on by
    default because the sweeps re-process large overlapping chunk sets).
    ``--privid-no-cache`` is the legacy off switch and overrides both.
    """
    parser.addoption("--privid-engine", default=os.environ.get("PRIVID_ENGINE", "serial"),
                     help="chunk execution engine: serial, thread[:N], process[:N]")
    parser.addoption("--privid-cache",
                     default=os.environ.get("PRIVID_CACHE", "memory"),
                     help="chunk result store: off, memory, disk:PATH, tiered:PATH")
    parser.addoption("--privid-no-cache", action="store_true",
                     default=os.environ.get("PRIVID_NO_CACHE", "") not in ("", "0"),
                     help="disable chunk result caching in the benchmark system")


@pytest.fixture(scope="session")
def bench_engine(request):
    """The execution engine every benchmark system schedules chunks on."""
    return create_engine(request.config.getoption("--privid-engine"))


@pytest.fixture(scope="session")
def bench_cache(request):
    """Session-wide chunk result store (None when disabled)."""
    if request.config.getoption("--privid-no-cache"):
        return None
    return create_cache(request.config.getoption("--privid-cache"))


@pytest.fixture(scope="session")
def campus_scenario():
    return build_scenario("campus", scale=BENCH_SCALES["campus"],
                          duration_hours=BENCH_HOURS, seed=7)


@pytest.fixture(scope="session")
def highway_scenario():
    return build_scenario("highway", scale=BENCH_SCALES["highway"],
                          duration_hours=BENCH_HOURS, seed=11)


@pytest.fixture(scope="session")
def urban_scenario():
    return build_scenario("urban", scale=BENCH_SCALES["urban"],
                          duration_hours=BENCH_HOURS, seed=13)


@pytest.fixture(scope="session")
def primary_scenarios(campus_scenario, highway_scenario, urban_scenario):
    return {"campus": campus_scenario, "highway": highway_scenario, "urban": urban_scenario}


@pytest.fixture(scope="session")
def porto_dataset():
    return generate_porto_dataset(PortoConfig(num_taxis=40, num_cameras=8, num_days=28, seed=31))


@pytest.fixture(scope="session")
def evaluation_system(primary_scenarios, porto_dataset, bench_engine, bench_cache):
    """One Privid deployment with every camera registered under a generous budget."""
    system = PrividSystem(seed=2022, engine=bench_engine, cache=bench_cache)
    for scenario in primary_scenarios.values():
        policy_map = scenario_policy_map(scenario, k_segments=BENCH_K_SEGMENTS)
        register_scenario_camera(system, scenario, policy_map=policy_map,
                                 epsilon_budget=500.0, sample_period=1.0)
    register_porto_cameras(system, porto_dataset, epsilon_budget=500.0, k_segments=2)
    return system


def print_cache_stats(system: PrividSystem, *, label: str = "chunk cache") -> None:
    """Print the system's chunk-cache counters (noting when caching is off)."""
    stats = system.cache_stats()
    if not stats["enabled"]:
        print(f"\n[{label}: disabled; engine={system.engine.name}]")
        return
    tiers = ""
    if "disk" in stats:
        tiers = (f" memory_hits={stats['memory']['hits']}"
                 f" disk_hits={stats['disk']['hits']}")
    print(f"\n[{label}: engine={system.engine.name} "
          f"hits={stats['hits']} misses={stats['misses']} "
          f"hit_rate={stats['hit_rate']}{tiers}]")


def print_table(title: str, rows: list[dict], *, columns: list[str] | None = None) -> None:
    """Print a small aligned table to stdout (captured into bench_output.txt)."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = columns or list(rows[0].keys())
    widths = {col: max(len(col), max(len(str(row.get(col, ""))) for row in rows))
              for col in columns}
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns))
