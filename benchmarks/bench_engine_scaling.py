"""Chunk execution engine scaling: serial vs parallel vs cached throughput.

Chunks are processed by independent executable instances (Appendix B), so the
split-process stage parallelises without changing any result.  This benchmark
runs the same counting query as a repeated what-if sweep (the access pattern
of the Fig. 6/7 sweeps and the Section 8.1 noise re-evaluations) under each
engine and under a chunk result cache, and checks that

* every engine produces identical raw results on the fixed seed, and
* the cache turns a repeated sweep into pure lookups (measurable speedup).

It also measures the *streaming* dataflow against the materialize-everything
batch dataflow — time-to-first-result, total wall time, peak concurrently
resident chunks, and the process's peak RSS — and times the columnar chunk
hot path stage by stage (render the FrameBatch, detect, track, emit rows
into the Table, aggregate), emitting a machine-readable
``BENCH_pipeline.json`` (path overridable via ``BENCH_PIPELINE_JSON``) with
chunk throughput, frames/sec, per-stage timings, the process engine's
per-dispatch IPC payload bytes, the sharded engine's per-shard dispatch
bytes (``sharded_dispatch``), the disk chunk store's warm-hit and decode
costs per entry format (``store``: binary columnar vs legacy JSON), and the
batch-vs-streaming columns, which CI uploads as an artifact (the perf-smoke
job runs this file, so a streaming regression shows up there).  Before
overwriting an existing JSON record the benchmark diffs the fresh chunk
throughput *and* the tracking stage time against it and prints a
``::warning::`` line on a >20% regression — in CI the committed baseline is
what sits at that path, so the perf-smoke job surfaces the comparison as an
annotation.

The scene is built from simple linear trajectories with no dynamic
attributes; scenario scenes (declarative schedules since the columnar
pipeline PR) are picklable too, so every scene runs on every engine.
"""

from __future__ import annotations

import json
import math
import os
import resource
import tempfile
import time

from repro.core import (
    ChunkResultCache,
    PrividSystem,
    ProcessPoolEngine,
    SerialEngine,
    ShardedEngine,
    ThreadPoolEngine,
    TieredChunkCache,
)
from repro.core.cache import DiskChunkStore, decode_binary_entry
from repro.core.policy import PrivacyPolicy
from repro.cv.tracker import IoUTracker
from repro.query.builder import QueryBuilder
from repro.relational.aggregates import Aggregation, GroupSpec, compute_releases
from repro.relational.expressions import ChunkBin
from repro.relational.sensitivity import SensitivityInfo, TableProperties
from repro.relational.table import ColumnSpec, DataType, Schema, Table
from repro.sandbox.environment import ExecutionContext, SandboxRunner
from repro.sandbox.registry import default_registry
from repro.scene.objects import Appearance, SceneObject
from repro.scene.trajectory import LinearTrajectory
from repro.utils.timebase import TimeInterval
from repro.video.chunking import ChunkSpec, iter_chunks, split_interval
from repro.video.geometry import BoundingBox
from repro.video.video import SyntheticVideo

from benchmarks.conftest import print_table

DURATION = 1800.0
CHUNK_DURATION = 30.0
NUM_WALKERS = 60
SWEEP_REPEATS = 2


def _picklable_video() -> SyntheticVideo:
    """A crossing-heavy scene with no closures, safe for process pools."""
    video = SyntheticVideo(name="engine-bench", fps=2.0, width=1280.0, height=720.0,
                           duration=DURATION)
    walkers = []
    for index in range(NUM_WALKERS):
        start = (index * 29.0) % (DURATION - 60.0)
        x = 100.0 + (index * 37.0) % 1000.0
        walkers.append(SceneObject(
            object_id=f"walker-{index}",
            category="person",
            appearances=[Appearance(
                interval=TimeInterval(start, start + 40.0),
                trajectory=LinearTrajectory(start=BoundingBox(x, 650.0, 30.0, 60.0),
                                            end=BoundingBox(x, 10.0, 30.0, 60.0),
                                            duration=40.0),
            )],
        ))
    video.add_objects(walkers)
    return video


def _build_system(video: SyntheticVideo, *, engine=None, cache=None) -> PrividSystem:
    system = PrividSystem(seed=2022, engine=engine, cache=cache)
    system.register_camera("cam", video, policy=PrivacyPolicy(rho=40.0, k_segments=1),
                           epsilon_budget=500.0)
    return system


def _query():
    return (QueryBuilder("engine-scaling")
            .split("cam", begin=0.0, end=DURATION, chunk_duration=CHUNK_DURATION,
                   into="chunks")
            .process("chunks", executable="count_entering_people.py", max_rows=5,
                     schema=[("kind", "STRING", ""), ("dy", "NUMBER", 0.0)], into="people")
            .select_count(table="people", bucket_seconds=300.0, epsilon=1.0)
            .build())


def _timed_sweep(system: PrividSystem) -> tuple[float, list]:
    """One what-if sweep: SWEEP_REPEATS executions of the same query.

    An untimed warmup execute precedes the measurement: the sweep models the
    *repeated* what-if regime (Fig. 6/7, noise re-evaluations), where worker
    pools are already spawned and per-process caches warm — one-time
    infrastructure cost is not what the per-engine comparison is about.
    """
    system.execute(_query(), charge_budget=False)
    started = time.perf_counter()
    raw = None
    for _ in range(SWEEP_REPEATS):
        result = system.execute(_query(), charge_budget=False)
        raw = result.raw_series_unsafe()
    return time.perf_counter() - started, raw


PERSON_SCHEMA = Schema(columns=(ColumnSpec("kind", DataType.STRING, ""),
                                ColumnSpec("dy", DataType.NUMBER, 0.0)))


def _peak_rss_kb() -> int:
    """Peak RSS of this process in KiB (a monotonic high-water mark)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _dataflow_metrics(video: SyntheticVideo, engine) -> dict:
    """Batch vs streaming over the same chunk set on one engine.

    ``batch`` materializes the full chunk list and runs ``map_chunks`` to
    completion before any row is visible (the pre-streaming dataflow);
    ``streaming`` pulls chunks lazily through ``imap_chunks`` and observes
    the first chunk's rows as soon as the head of the stream completes.
    ``peak_resident_chunks`` counts chunks materialized but not yet consumed
    (for batch that is the whole chunk list); ``peak_rss_kb`` is the process
    high-water mark after the run — monotonic across the process, so order
    the comparison streaming-first when reading absolute values.
    """
    spec = ChunkSpec(window=TimeInterval(0.0, DURATION), chunk_duration=CHUNK_DURATION)
    runner = SandboxRunner(default_registry().resolve("count_entering_people.py"),
                           PERSON_SCHEMA, max_rows=5, timeout_seconds=30.0)
    context = ExecutionContext(camera="cam", fps=video.fps)

    state = {"pulled": 0, "consumed": 0, "peak": 0}

    def instrumented():
        for chunk in iter_chunks(video, spec):
            state["pulled"] += 1
            state["peak"] = max(state["peak"], state["pulled"] - state["consumed"])
            yield chunk

    started = time.perf_counter()
    first_result_at = None
    for _ in engine.imap_chunks(runner, instrumented(), context):
        state["consumed"] += 1
        if first_result_at is None:
            first_result_at = time.perf_counter()
    streaming = {
        "ttfr_s": round(first_result_at - started, 6),
        "total_s": round(time.perf_counter() - started, 6),
        "peak_resident_chunks": state["peak"],
        "peak_rss_kb": _peak_rss_kb(),
    }

    started = time.perf_counter()
    chunks = split_interval(video, spec)
    outcomes = engine.map_chunks(runner, chunks, context)
    first_result_at = time.perf_counter()  # no row visible before the batch ends
    assert outcomes
    batch = {
        "ttfr_s": round(first_result_at - started, 6),
        "total_s": round(time.perf_counter() - started, 6),
        "peak_resident_chunks": len(chunks),
        "peak_rss_kb": _peak_rss_kb(),
    }
    return {"batch": batch, "streaming": streaming}


def _stage_timings(video: SyntheticVideo) -> dict:
    """Per-stage wall time over the full chunk set.

    Stages: render the columnar FrameBatch, detect (DetectionBatch), track
    (batch core + TrackViews), ingest each chunk's sandbox-coerced rows
    into the schema Table (``table_s`` times exactly the ``Table.extend``
    columnar append), and compute the grouped COUNT releases over that
    table (``aggregate_s``).

    Each timed stage runs over the full chunk set five times — one untimed
    warmup, then best of four measured passes — the sweeps' cold-start
    discipline with more samples, since the passes are milliseconds-cheap
    and these numbers are regression-checked.  The track stage is timed in
    stage isolation: each pass collects the detection batches while the
    other stages run, then drives the tracker over all of them
    consecutively, so ``track_s`` measures the stage rather than the
    cache interleaving of its neighbours.  The sandbox execution feeding
    ``table_s`` runs once; its rows are reused by every pass.
    """
    spec = ChunkSpec(window=TimeInterval(0.0, DURATION), chunk_duration=CHUNK_DURATION)
    chunks = split_interval(video, spec)
    context = ExecutionContext(camera="cam", fps=video.fps)
    detector = context.detector()
    runner = SandboxRunner(default_registry().resolve("count_entering_people.py"),
                           PERSON_SCHEMA, max_rows=5, timeout_seconds=30.0)
    chunk_rows = [runner.run_chunk_outcome(chunk, context).rows for chunk in chunks]
    render_s = detect_s = track_s = table_s = math.inf
    num_frames = 0
    num_detections = 0
    for pass_index in range(5):
        pass_render = pass_detect = pass_track = pass_table = 0.0
        num_frames = 0
        num_detections = 0
        table = Table.from_schema(PERSON_SCHEMA, name="people")
        detection_batches = []
        for chunk, rows in zip(chunks, chunk_rows):
            started = time.perf_counter()
            batch = chunk.frame_batch()
            rendered = time.perf_counter()
            detections = detector.detect_batch(batch, frame_width=video.width,
                                               frame_height=video.height,
                                               categories={"person"})
            detected = time.perf_counter()
            table.extend(rows)
            pass_table += time.perf_counter() - detected
            pass_render += rendered - started
            pass_detect += detected - rendered
            num_frames += batch.num_frames
            num_detections += len(detections)
            detection_batches.append(detections)
        track_started = time.perf_counter()
        for detections in detection_batches:
            tracker = IoUTracker(context.tracker_config)
            tracker.step_batch(detections)
            tracker.finalize_views()
        pass_track = time.perf_counter() - track_started
        if pass_index == 0:
            continue  # untimed warmup pass
        render_s = min(render_s, pass_render)
        detect_s = min(detect_s, pass_detect)
        track_s = min(track_s, pass_track)
        table_s = min(table_s, pass_table)
    properties = TableProperties(name="people", max_rows=5,
                                 chunk_duration=CHUNK_DURATION,
                                 num_chunks=len(chunks), rho=40.0, k_segments=1)
    info = SensitivityInfo.for_table(properties)
    group = GroupSpec(expressions=(("bucket", ChunkBin("chunk", 300.0)),))
    started = time.perf_counter()
    releases = compute_releases(table, info, Aggregation(function="COUNT"), group)
    aggregate_s = time.perf_counter() - started
    assert releases, "aggregation produced no releases"
    return {
        "num_chunks": len(chunks),
        "num_frames": num_frames,
        "num_detections": num_detections,
        "render_s": round(render_s, 6),
        "detect_s": round(detect_s, 6),
        "track_s": round(track_s, 6),
        "table_s": round(table_s, 6),
        "aggregate_s": round(aggregate_s, 6),
    }


def _store_metrics(disk_dir: str) -> dict:
    """Warm-hit cost of the on-disk chunk store, binary columnar vs JSON.

    Reopens the directory the tiered sweep wrote through (real query
    entries), mirrors the same rows into a JSON-format twin store, and
    measures per format: one warm ``get()`` pass over every entry (best of
    five — the disk-tier hit latency a repeated sweep pays), the raw entry
    decode (codec cost with the filesystem taken out), and the on-disk
    entry bytes.  The binary pass must never reach the JSON parser —
    ``legacy_json_reads`` staying zero is the zero-JSON-parse contract of
    the memory-mapped hit path.
    """
    store = DiskChunkStore(disk_dir)
    keys = [path.stem for path in store._entry_paths()]
    assert keys, "tiered sweep left no disk entries to measure"
    rows_by_key = {key: store.get(key) for key in keys}
    json_store = DiskChunkStore(tempfile.mkdtemp(prefix="privid-bench-store-"),
                                entry_format="json")
    for key, rows in rows_by_key.items():
        json_store.put(key, rows)

    def warm_pass(target: DiskChunkStore) -> float:
        best = float("inf")
        for _ in range(5):
            started = time.perf_counter()
            for key in keys:
                target.get(key)
            best = min(best, time.perf_counter() - started)
        return best

    store.reset_stats()
    warm_binary_s = warm_pass(store)
    warm_json_s = warm_pass(json_store)
    assert store.legacy_json_reads == 0, \
        "binary warm hits reached the JSON parser"

    binary_blobs = [store._path_for(key).read_bytes() for key in keys]
    json_blobs = [json_store._path_for(key, "json").read_bytes()
                  for key in keys]

    def decode_pass(blobs: list, decode) -> float:
        best = float("inf")
        for _ in range(5):
            started = time.perf_counter()
            for blob in blobs:
                decode(blob)
            best = min(best, time.perf_counter() - started)
        return best

    decode_binary_s = decode_pass(binary_blobs, decode_binary_entry)
    decode_json_s = decode_pass(json_blobs,
                                lambda blob: json.loads(blob)["rows"])
    return {
        "num_entries": len(keys),
        "entry_bytes_binary": sum(map(len, binary_blobs)),
        "entry_bytes_json": sum(map(len, json_blobs)),
        "warm_hit_s_binary": round(warm_binary_s, 6),
        "warm_hit_s_json": round(warm_json_s, 6),
        "decode_s_binary": round(decode_binary_s, 6),
        "decode_s_json": round(decode_json_s, 6),
        "legacy_json_reads": store.legacy_json_reads,
    }


#: Fractional throughput drop against the committed baseline that triggers
#: the perf-smoke warning annotation.
REGRESSION_THRESHOLD = 0.20


def _diff_against_baseline(payload: dict, path: str) -> None:
    """Warn when the fresh record regressed >20% vs the record at ``path``.

    Two checks: chunk throughput (lower is worse) and the tracking stage
    time (higher is worse — the per-stage hot path the tracker-core work
    targets).  In CI the file at ``path`` is the committed baseline (the
    fresh record has not been written yet); the ``::warning::`` prefix
    renders as an annotation on the perf-smoke job and is a plain line
    locally.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        base_throughput = float(baseline["chunk_throughput_per_s"])
    except (OSError, ValueError, KeyError, TypeError):
        return
    if base_throughput <= 0:
        return
    fresh = payload["chunk_throughput_per_s"]
    if fresh < base_throughput * (1.0 - REGRESSION_THRESHOLD):
        print(f"::warning title=perf-smoke regression::chunk throughput "
              f"{fresh}/s is {fresh / base_throughput:.2f}x the committed "
              f"baseline {base_throughput}/s (>{int(REGRESSION_THRESHOLD * 100)}% drop)")
    else:
        print(f"perf-smoke baseline check: {fresh}/s vs committed "
              f"{base_throughput}/s ({fresh / base_throughput:.2f}x)")
    try:
        base_track_s = float(baseline["stages"]["track_s"])
        fresh_track_s = float(payload["stages"]["track_s"])
    except (ValueError, KeyError, TypeError):
        return
    if base_track_s <= 0:
        return
    if fresh_track_s > base_track_s * (1.0 + REGRESSION_THRESHOLD):
        print(f"::warning title=perf-smoke regression::track stage "
              f"{fresh_track_s}s is {fresh_track_s / base_track_s:.2f}x the "
              f"committed baseline {base_track_s}s "
              f"(>{int(REGRESSION_THRESHOLD * 100)}% slower)")
    else:
        print(f"perf-smoke track-stage check: {fresh_track_s}s vs committed "
              f"{base_track_s}s ({fresh_track_s / base_track_s:.2f}x)")


def _write_pipeline_json(payload: dict) -> str:
    """Write the machine-readable benchmark record for the CI artifact."""
    path = os.environ.get("BENCH_PIPELINE_JSON", "BENCH_pipeline.json")
    _diff_against_baseline(payload, path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def test_engine_scaling_and_cache_speedup(benchmark):
    video = _picklable_video()
    tiered_dir = tempfile.mkdtemp(prefix="privid-bench-tiered-")

    def run():
        rows = []
        results = {}
        timings = {}
        extras = {}
        configs = [
            ("serial", SerialEngine(), None),
            ("thread:4", ThreadPoolEngine(max_workers=4), None),
            ("process:4", ProcessPoolEngine(max_workers=4), None),  # adaptive chunksize
            ("sharded:2", ShardedEngine(num_shards=2), None),
            ("serial+cache", SerialEngine(), ChunkResultCache()),
            ("serial+tiered", SerialEngine(), TieredChunkCache(disk=tiered_dir)),
        ]
        for label, engine, cache in configs:
            system = _build_system(video, engine=engine, cache=cache)
            # Best of two measured sweeps: the noise floor on shared
            # machines, so the recorded throughput tracks the code, not the
            # neighbours.
            elapsed, raw = _timed_sweep(system)
            second, raw = _timed_sweep(system)
            elapsed = min(elapsed, second)
            timings[label] = elapsed
            results[label] = raw
            stats = system.cache_stats()
            if isinstance(engine, ProcessPoolEngine):
                extras["process_dispatch"] = engine.dispatch_stats.as_dict()
                engine.shutdown()
                # The enforced budget for the spec-dispatch protocol: scene
                # size must never leak into per-dispatch IPC.
                assert engine.dispatch_stats.payload_bytes_max < 4096, \
                    "process-engine dispatch payload exceeded its byte budget"
            if isinstance(engine, ShardedEngine):
                # Per-shard dispatch bytes: the JSON task frames that crossed
                # each shard's pipe.  The same byte budget binds — coordinator
                # messages are the payload path plus compact specs.
                extras["sharded_dispatch"] = engine.dispatch_stats_dict()
                engine.shutdown()
                assert engine.dispatch_stats.payload_bytes_max < 4096, \
                    "sharded-engine dispatch payload exceeded its byte budget"
            rows.append({
                "engine": label,
                "sweep_s": round(elapsed, 3),
                "speedup_vs_serial": round(timings["serial"] / elapsed, 2),
                "cache_hit_rate": stats["hit_rate"] if stats["enabled"] else "-",
            })
        return rows, results, timings, extras

    rows, results, timings, extras = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Engine scaling: repeated sweep wall time per engine", rows)

    # Correctness: identical raw outputs on the fixed seed, engine-independent.
    baseline = results["serial"]
    for label, raw in results.items():
        assert raw == baseline, f"engine {label} changed query results"
    # The cached sweep re-executes the query with every chunk memoized, so it
    # must beat the uncached serial sweep even after paying the cold first run.
    assert timings["serial+cache"] < timings["serial"], \
        "chunk result cache failed to speed up a repeated sweep"

    # Streaming vs batch dataflow: time-to-first-result and peak residency.
    with ThreadPoolEngine(max_workers=4) as stream_engine:
        dataflow = _dataflow_metrics(video, stream_engine)
    dataflow_rows = [{"dataflow": mode, **metrics}
                     for mode, metrics in dataflow.items()]
    print_table("Batch vs streaming dataflow (thread:4, one sweep)", dataflow_rows)
    assert dataflow["streaming"]["ttfr_s"] < dataflow["batch"]["ttfr_s"], \
        "streaming lost its time-to-first-result advantage"
    assert dataflow["streaming"]["peak_resident_chunks"] \
        < dataflow["batch"]["peak_resident_chunks"], \
        "streaming no longer bounds resident chunks below the full chunk list"

    # Machine-readable record of the chunk hot path for the CI artifact.
    stages = _stage_timings(video)
    store_metrics = _store_metrics(tiered_dir)
    serial_exec_s = timings["serial"] / SWEEP_REPEATS
    num_chunks = stages["num_chunks"]
    payload = {
        "scene": {
            "duration_s": DURATION,
            "chunk_duration_s": CHUNK_DURATION,
            "fps": video.fps,
            "num_walkers": NUM_WALKERS,
            "num_chunks": num_chunks,
        },
        # Engine comparisons only mean what the hardware allows: with a
        # single CPU the process engine is bounded below by serial compute
        # plus IPC, so process:N beating serial requires cpu_count > 1.
        "cpu_count": os.cpu_count(),
        "serial_exec_s": round(serial_exec_s, 6),
        "chunk_throughput_per_s": round(num_chunks / serial_exec_s, 2),
        "frames_per_s": round(DURATION * video.fps / serial_exec_s, 1),
        "engine_sweep_s": {label: round(value, 6) for label, value in timings.items()},
        "dataflow": dataflow,
        "stages": stages,
        "store": store_metrics,
        **extras,
    }
    path = _write_pipeline_json(payload)
    print(f"\nwrote {path}: {payload['chunk_throughput_per_s']} chunks/s, "
          f"{payload['frames_per_s']} frames/s, streaming ttfr "
          f"{dataflow['streaming']['ttfr_s']}s vs batch {dataflow['batch']['ttfr_s']}s, "
          f"warm store hit {store_metrics['warm_hit_s_binary']}s binary vs "
          f"{store_metrics['warm_hit_s_json']}s json")
