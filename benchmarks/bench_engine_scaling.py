"""Chunk execution engine scaling: serial vs parallel vs cached throughput.

Chunks are processed by independent executable instances (Appendix B), so the
split-process stage parallelises without changing any result.  This benchmark
runs the same counting query as a repeated what-if sweep (the access pattern
of the Fig. 6/7 sweeps and the Section 8.1 noise re-evaluations) under each
engine and under a chunk result cache, and checks that

* every engine produces identical raw results on the fixed seed, and
* the cache turns a repeated sweep into pure lookups (measurable speedup).

The scene is built from simple linear trajectories only, keeping every object
picklable so the process pool can be exercised too (scenario scenes carry
closure-valued dynamic attributes and are thread/serial only).
"""

from __future__ import annotations

import time

from repro.core import (
    ChunkResultCache,
    PrividSystem,
    ProcessPoolEngine,
    SerialEngine,
    ThreadPoolEngine,
)
from repro.core.policy import PrivacyPolicy
from repro.query.builder import QueryBuilder
from repro.scene.objects import Appearance, SceneObject
from repro.scene.trajectory import LinearTrajectory
from repro.utils.timebase import TimeInterval
from repro.video.geometry import BoundingBox
from repro.video.video import SyntheticVideo

from benchmarks.conftest import print_table

DURATION = 1800.0
CHUNK_DURATION = 30.0
NUM_WALKERS = 60
SWEEP_REPEATS = 2


def _picklable_video() -> SyntheticVideo:
    """A crossing-heavy scene with no closures, safe for process pools."""
    video = SyntheticVideo(name="engine-bench", fps=2.0, width=1280.0, height=720.0,
                           duration=DURATION)
    walkers = []
    for index in range(NUM_WALKERS):
        start = (index * 29.0) % (DURATION - 60.0)
        x = 100.0 + (index * 37.0) % 1000.0
        walkers.append(SceneObject(
            object_id=f"walker-{index}",
            category="person",
            appearances=[Appearance(
                interval=TimeInterval(start, start + 40.0),
                trajectory=LinearTrajectory(start=BoundingBox(x, 650.0, 30.0, 60.0),
                                            end=BoundingBox(x, 10.0, 30.0, 60.0),
                                            duration=40.0),
            )],
        ))
    video.add_objects(walkers)
    return video


def _build_system(video: SyntheticVideo, *, engine=None, cache=None) -> PrividSystem:
    system = PrividSystem(seed=2022, engine=engine, cache=cache)
    system.register_camera("cam", video, policy=PrivacyPolicy(rho=40.0, k_segments=1),
                           epsilon_budget=500.0)
    return system


def _query():
    return (QueryBuilder("engine-scaling")
            .split("cam", begin=0.0, end=DURATION, chunk_duration=CHUNK_DURATION,
                   into="chunks")
            .process("chunks", executable="count_entering_people.py", max_rows=5,
                     schema=[("kind", "STRING", ""), ("dy", "NUMBER", 0.0)], into="people")
            .select_count(table="people", bucket_seconds=300.0, epsilon=1.0)
            .build())


def _timed_sweep(system: PrividSystem) -> tuple[float, list]:
    """One what-if sweep: SWEEP_REPEATS executions of the same query."""
    started = time.perf_counter()
    raw = None
    for _ in range(SWEEP_REPEATS):
        result = system.execute(_query(), charge_budget=False)
        raw = result.raw_series_unsafe()
    return time.perf_counter() - started, raw


def test_engine_scaling_and_cache_speedup(benchmark):
    video = _picklable_video()

    def run():
        rows = []
        results = {}
        timings = {}
        configs = [
            ("serial", SerialEngine(), None),
            ("thread:4", ThreadPoolEngine(max_workers=4), None),
            ("process:4", ProcessPoolEngine(max_workers=4, chunksize=4), None),
            ("serial+cache", SerialEngine(), ChunkResultCache()),
        ]
        for label, engine, cache in configs:
            system = _build_system(video, engine=engine, cache=cache)
            elapsed, raw = _timed_sweep(system)
            timings[label] = elapsed
            results[label] = raw
            stats = system.cache_stats()
            rows.append({
                "engine": label,
                "sweep_s": round(elapsed, 3),
                "speedup_vs_serial": round(timings["serial"] / elapsed, 2),
                "cache_hit_rate": stats["hit_rate"] if stats else "-",
            })
        return rows, results, timings

    rows, results, timings = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Engine scaling: repeated sweep wall time per engine", rows)

    # Correctness: identical raw outputs on the fixed seed, engine-independent.
    baseline = results["serial"]
    for label, raw in results.items():
        assert raw == baseline, f"engine {label} changed query results"
    # The cached sweep re-executes the query with every chunk memoized, so it
    # must beat the uncached serial sweep even after paying the cold first run.
    assert timings["serial+cache"] < timings["serial"], \
        "chunk result cache failed to speed up a repeated sweep"
