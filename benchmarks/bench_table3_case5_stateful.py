"""Table 3 Case 5 (Q13): stateful query — people heading towards campus.

Paper: requires 10-minute chunks so each crossing's direction is observable
within one chunk; accuracy ~79%, the lowest of the evaluation.
"""

from __future__ import annotations

from repro.evaluation.baselines import directional_crossing_count
from repro.evaluation.queries import case5_directional_query
from repro.evaluation.runner import run_repeated
from repro.utils.timebase import SECONDS_PER_HOUR, TimeInterval

from benchmarks.conftest import BENCH_HOURS, print_table


def test_case5_directional_count(benchmark, primary_scenarios, evaluation_system):
    scenario = primary_scenarios["campus"]
    window = BENCH_HOURS * SECONDS_PER_HOUR
    query = case5_directional_query("campus", window_seconds=window, chunk_duration=600.0,
                                    max_rows=15)
    truth = directional_crossing_count(scenario.video, category="person",
                                       entry_side="south", exit_side="north",
                                       window=TimeInterval(0.0, window))

    def run():
        return run_repeated(evaluation_system, query, samples=200, reference=truth)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Table 3 Q13 (northbound people, stateful)", [{
        "ground_truth": truth,
        "privid_no_noise": outcome.raw_series[0],
        "noise_scale": round(outcome.noise_scales[0], 1),
        "accuracy": outcome.accuracy.as_percent(),
        "paper_accuracy": "79.06% ± 4.75%",
    }])
    assert outcome.raw_series[0] > 0
