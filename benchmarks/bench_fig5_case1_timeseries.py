"""Fig. 5 / Table 3 Case 1 (Q1-Q3): hourly unique-object counts per video.

Paper: the noisy hourly series preserves the diurnal trend of the original;
accuracy of the standing query stays within 79-99% of the non-private run.
"""

from __future__ import annotations

import pytest

from repro.evaluation.baselines import ground_truth_hourly_counts
from repro.evaluation.queries import case1_counting_query
from repro.evaluation.runner import run_repeated
from repro.utils.timebase import SECONDS_PER_HOUR, TimeInterval

from benchmarks.conftest import BENCH_HOURS, print_table

CASES = {
    "campus": ("person", 5),
    "highway": ("car", 10),
    "urban": ("person", 8),
}


@pytest.mark.parametrize("name", ["campus", "highway", "urban"])
def test_fig5_case1_hourly_counts(benchmark, primary_scenarios, evaluation_system, name):
    scenario = primary_scenarios[name]
    category, max_rows = CASES[name]
    window = BENCH_HOURS * SECONDS_PER_HOUR
    query = case1_counting_query(name, category=category, window_seconds=window,
                                 chunk_duration=60.0, max_rows=max_rows, mask="owner",
                                 bucket_seconds=SECONDS_PER_HOUR, epsilon=1.0)
    reference = ground_truth_hourly_counts(scenario.video, category=category,
                                           window=TimeInterval(0.0, window))

    def run():
        return run_repeated(evaluation_system, query, samples=200, reference=reference)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for hour, (raw, truth) in enumerate(zip(outcome.raw_series, reference)):
        rows.append({
            "hour": hour,
            "ground_truth": truth,
            "privid_no_noise": raw,
            "noise_scale": round(outcome.noise_scales[hour], 1),
        })
    print_table(f"Fig. 5 ({name}, {category}s per hour)", rows)
    print(f"Fig. 5 / Table 3 Case 1 accuracy ({name}): {outcome.accuracy.as_percent()}")
    # Shape target: the chunked pipeline tracks the diurnal trend (counts
    # rise towards midday) and the pipeline produces non-degenerate output.
    # The paper's 79-99% accuracy band corresponds to full-scale, 12-hour
    # scenes whose hourly counts dwarf the noise; see EXPERIMENTS.md.
    assert sum(outcome.raw_series) > 0
    assert outcome.raw_series[-1] > outcome.raw_series[0] * 0.5
    assert outcome.accuracy.mean > 0.05
