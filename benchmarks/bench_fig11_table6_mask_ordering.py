"""Fig. 11 / Table 6 (Appendix F): greedy mask ordering across ten videos.

Paper: for every video there is a mask (a small fraction of grid cells) that
reduces the maximum persistence by a large factor while retaining most
identities; Algorithm 2 finds it greedily.
"""

from __future__ import annotations

import pytest

from repro.analysis.mask_policy import greedy_mask_ordering
from repro.scene.scenarios import build_scenario

from benchmarks.conftest import print_table

EXTENDED_PRESETS = ("grand-canal", "venice-rialto", "taipei", "shibuya", "beach", "warsaw", "uav")


def _ordering_summary(name, video):
    grid, steps = greedy_mask_ordering(video, cell_size=80.0, sample_period=2.0, max_cells=80)
    if not steps:
        return None
    initial_max = max(step.max_persistence for step in steps[:1])
    final = steps[-1]
    return {
        "video": name,
        "grid_cells": grid.num_cells,
        "cells_masked": final.cells_masked,
        "pct_cells_masked": round(final.fraction_masked * 100, 1),
        "max_persistence_after_s": round(final.max_persistence, 1),
        "identities_retained": f"{final.retention_fraction * 100:.1f}%",
        "first_step_max_s": round(initial_max, 1),
    }


@pytest.mark.parametrize("name", ["campus", "highway", "urban"])
def test_table6_primary_videos(benchmark, primary_scenarios, name):
    scenario = primary_scenarios[name]
    row = benchmark.pedantic(lambda: _ordering_summary(name, scenario.video),
                             rounds=1, iterations=1)
    print_table(f"Table 6 / Fig. 11 ({name})", [row])
    assert row is not None
    assert row["cells_masked"] > 0


def test_table6_extended_videos(benchmark):
    def run():
        rows = []
        for name in EXTENDED_PRESETS:
            scenario = build_scenario(name, duration_hours=0.5)
            summary = _ordering_summary(name, scenario.video)
            if summary is not None:
                rows.append(summary)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Table 6 / Fig. 11 (BlazeIt / MIRIS presets)", rows)
    assert len(rows) == len(EXTENDED_PRESETS)
