"""Table 1: ground-truth vs CV-estimated maximum duration per video.

Paper: despite missing 5-76% of objects per frame, detection + tracking
produce a *conservative* (>= ground truth) estimate of the maximum duration,
which is what parameterising a (rho, K) policy needs.
"""

from __future__ import annotations

import pytest

from repro.analysis.policy_estimation import estimate_policy
from repro.utils.timebase import TimeInterval

from benchmarks.conftest import print_table

SEGMENT_SECONDS = 600.0  # the paper uses a 10-minute annotated segment per video


@pytest.mark.parametrize("name", ["campus", "highway", "urban"])
def test_table1_duration_estimation(benchmark, primary_scenarios, name):
    scenario = primary_scenarios[name]

    def run():
        return estimate_policy(
            scenario.video,
            detector_config=scenario.detector_config,
            tracker_config=scenario.tracker_config,
            window=TimeInterval(0.0, SEGMENT_SECONDS),
            sample_period=1.0,
        )

    estimate = benchmark.pedantic(run, rounds=1, iterations=1)
    row = {
        "video": name,
        "ground_truth_max_s": round(estimate.estimate.ground_truth_max, 1),
        "cv_estimate_s": round(estimate.estimate.estimated_max, 1),
        "pct_objects_missed": round(estimate.estimate.miss_fraction * 100, 1),
        "conservative": estimate.estimate.is_conservative,
    }
    print_table(f"Table 1 ({name})", [row])
    # The reproduction target is the *shape*: the CV estimate must be a
    # conservative upper bound on the ground truth.  Two scenario-specific
    # caveats mirror the paper's own: the highway ground truth contains cars
    # parked for longer than the annotated segment (excluded in the paper's
    # Table 1 footnote), and highway-speed vehicles move too far between the
    # 2 fps substrate's frames for IoU tracking — in that regime the owner
    # falls back to domain knowledge, which is exactly what
    # `scenario_policy_map`'s default (ground-truth-driven) path models.
    assert estimate.estimate.is_conservative or name == "highway"
