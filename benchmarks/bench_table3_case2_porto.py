"""Table 3 Case 2 (Q4-Q6): multi-camera Porto queries (UNION / JOIN / ARGMAX).

Paper: with a year-long window the noise is negligible relative to the
aggregate, so accuracies are 94-100%.
"""

from __future__ import annotations

from repro.evaluation.metrics import argmax_hit_rate
from repro.evaluation.queries import (
    case2_porto_argmax_query,
    case2_porto_intersection_query,
    case2_porto_working_hours_query,
)
from repro.evaluation.runner import run_repeated

from benchmarks.conftest import print_table


def test_q4_average_working_hours(benchmark, porto_dataset, evaluation_system):
    cameras = porto_dataset.camera_names[:2]
    query = case2_porto_working_hours_query(cameras, porto_dataset.taxi_ids,
                                            num_days=porto_dataset.config.num_days,
                                            chunk_duration=900.0, max_rows=15)
    truth = porto_dataset.average_working_hours(cameras)

    def run():
        return run_repeated(evaluation_system, query, samples=200, reference=truth)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Table 3 Q4 (avg working hours, union of 2 cameras)", [{
        "ground_truth_hours": round(truth, 2),
        "privid_no_noise": round(outcome.raw_series[0], 2),
        "noise_scale": round(outcome.noise_scales[0], 4),
        "accuracy": outcome.accuracy.as_percent(),
        "paper_accuracy": "94.14%",
    }])
    # The paper's 94% corresponds to 442 taxis over 365 days (a much larger
    # group count, hence far less relative noise on the average).
    assert outcome.accuracy.mean > 0.3
    assert abs(outcome.raw_series[0] - truth) <= max(1.0, 0.4 * truth)


def test_q5_taxis_traversing_both(benchmark, porto_dataset, evaluation_system):
    cameras = porto_dataset.camera_names[:2]
    query = case2_porto_intersection_query(cameras[0], cameras[1], porto_dataset.taxi_ids,
                                           num_days=porto_dataset.config.num_days,
                                           chunk_duration=900.0)
    truth_total = porto_dataset.average_taxis_traversing_both(cameras[0], cameras[1]) \
        * porto_dataset.config.num_days

    def run():
        return run_repeated(evaluation_system, query, samples=200, reference=truth_total)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Table 3 Q5 (taxis traversing both cameras, JOIN)", [{
        "ground_truth_total": round(truth_total, 1),
        "privid_no_noise": round(outcome.raw_series[0], 1),
        "noise_scale": round(outcome.noise_scales[0], 2),
        "accuracy": outcome.accuracy.as_percent(),
        "paper_accuracy": "99.80%",
    }])
    assert outcome.raw_series[0] >= 0


def test_q6_busiest_camera_argmax(benchmark, porto_dataset, evaluation_system):
    query = case2_porto_argmax_query(porto_dataset.camera_names,
                                     num_days=porto_dataset.config.num_days,
                                     chunk_duration=3600.0)
    truth = porto_dataset.busiest_camera()

    def run():
        results = [evaluation_system.execute(query, charge_budget=False) for _ in range(20)]
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    hit_rate = argmax_hit_rate(results, truth)
    print_table("Table 3 Q6 (busiest camera, ARGMAX over all cameras)", [{
        "ground_truth": truth,
        "noisy_argmax_hit_rate": f"{hit_rate * 100:.0f}%",
        "paper_accuracy": "100.00%",
    }])
    assert 0.0 <= hit_rate <= 1.0
