"""Fig. 7: noise required per released hourly figure vs query window size.

Paper: as the window grows, the number of chunks an individual can influence
stays constant while the total number of chunks grows, so the noise added to
the (per-hour) result shrinks.
"""

from __future__ import annotations

from repro.evaluation.queries import case1_counting_query
from repro.utils.timebase import SECONDS_PER_HOUR

from benchmarks.conftest import BENCH_HOURS, print_cache_stats, print_table

WINDOW_HOURS = (1.0, 2.0, 3.0, 4.0)


def test_fig7_window_size_sweep(benchmark, evaluation_system):
    def run():
        rows = []
        for hours in WINDOW_HOURS:
            if hours > BENCH_HOURS:
                continue
            window = hours * SECONDS_PER_HOUR
            query = case1_counting_query(
                "campus", category="person", window_seconds=window, chunk_duration=60.0,
                max_rows=5, mask="owner", bucket_seconds=None, epsilon=1.0)
            result = evaluation_system.execute(query, charge_budget=False)
            release = result.releases[0]
            rows.append({
                "window_hours": hours,
                "total_count_sensitivity": release.sensitivity,
                "noise_per_hourly_figure": round(release.noise_scale / hours, 2),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Fig. 7 (campus): noise on the per-hour figure vs window size", rows)
    # The swept windows nest (1h ⊂ 2h ⊂ 3h ⊂ 4h with a fixed chunk size), so
    # with caching enabled each window re-processes only its newly added hour.
    print_cache_stats(evaluation_system)
    noise = [row["noise_per_hourly_figure"] for row in rows]
    assert noise == sorted(noise, reverse=True), "noise per hourly figure should shrink with window"
