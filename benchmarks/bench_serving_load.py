"""Serving load benchmark: tenant populations against one always-on service.

Every other benchmark measures a single query; a Privid deployment serves a
*population* — many analysts contending for one engine, one chunk store and
one budget ledger.  This benchmark replays seeded multi-tenant workloads
(``repro.bench.serving``) against a live :class:`~repro.service.QueryService`
in three phases and emits ``BENCH_serving.json`` (path overridable via
``BENCH_SERVING_JSON``; the ``serving-bench`` CI job uploads it as an
artifact — the full field schema is documented in docs/benchmarks.md):

* **steady** — a 64-tenant zipf-skewed open-loop workload on a 4-wide pool
  with ample budget: submit→first-row / submit→result latency percentiles
  (p50/p90/p99/p999), per-tier cache hit-rates, per-camera ledger charge
  counts, throughput.  The phase runs TWICE on fresh same-seed services and
  *asserts* replay determinism: identical workload schedules and
  byte-identical per-query releases, noisy values included.
* **storm** — the same population against a 2-slot pool with a 2-deep queue
  and a budget small enough to exhaust: admission sheds, budget denials, the
  ledger's lock-contention counters and its per-admission exhaustion
  timeline (``remaining_min`` after every admission).
* **deadline** — a small workload submitted with an already-expired
  deadline: every query must classify as a deadline miss and charge nothing.

Like the perf-smoke benchmark, a committed baseline sits at the JSON path in
CI; before overwriting, the fresh steady-phase throughput is diffed against
it and a ``::warning::`` annotation is printed on a >30% regression.
"""

from __future__ import annotations

import json
import os
import tempfile

from repro.bench.serving import (
    ServingLoadHarness,
    WorkloadConfig,
    generate_schedule,
    scenario_query_factory,
)
from repro.evaluation.runner import register_scenario_camera, scenario_policy_map
from repro.scene.scenarios import build_scenario
from repro.service import QueryService

from benchmarks.conftest import print_table

SERVICE_SEED = 3
WORKLOAD_SEED = 29
NUM_TENANTS = 64
REGRESSION_THRESHOLD = 0.30

#: Steady phase: open loop, unpaced (maximum offered load), ~100 arrivals
#: over two scenario cameras.  No queue bound and ample budget — the two
#: conditions for byte-identical replays (see ServingLoadHarness).
STEADY_CONFIG = WorkloadConfig(
    seed=WORKLOAD_SEED, num_tenants=NUM_TENANTS,
    cameras=("campus", "highway"), mode="open",
    duration_s=12.0, arrival_rate_per_s=8.0,
    tenant_skew=1.0, camera_skew=0.8)

#: Storm phase: same population shape, three times the arrival count, thrown
#: at a deliberately undersized service with a nearly-exhausted budget.
STORM_CONFIG = WorkloadConfig(
    seed=WORKLOAD_SEED + 1, num_tenants=NUM_TENANTS,
    cameras=("campus", "highway"), mode="open",
    duration_s=36.0, arrival_rate_per_s=8.0,
    tenant_skew=1.0, camera_skew=0.8)

DEADLINE_CONFIG = WorkloadConfig(
    seed=WORKLOAD_SEED + 2, num_tenants=8, cameras=("campus",), mode="open",
    duration_s=3.0, arrival_rate_per_s=4.0)


def _scenarios():
    return [build_scenario("campus", scale=0.2, duration_hours=0.2, seed=7),
            build_scenario("highway", scale=0.1, duration_hours=0.2, seed=7)]


def _service(scenarios, *, epsilon_budget: float, **kwargs) -> QueryService:
    cache_dir = tempfile.mkdtemp(prefix="privid-serving-bench-")
    service = QueryService(seed=SERVICE_SEED, engine="thread:4",
                           cache=f"tiered:{cache_dir}", **kwargs)
    for scenario in scenarios:
        register_scenario_camera(
            service, scenario,
            policy_map=scenario_policy_map(scenario, k_segments=1),
            epsilon_budget=epsilon_budget, sample_period=1.0)
    return service


def _replay(scenarios, schedule, *, epsilon_budget: float,
            execute_kwargs=None, time_scale: float = 0.0, **service_kwargs):
    with _service(scenarios, epsilon_budget=epsilon_budget,
                  **service_kwargs) as service:
        harness = ServingLoadHarness(
            service, scenario_query_factory(epsilon=0.05),
            time_scale=time_scale,
            execute_kwargs=execute_kwargs or {"default_epsilon": 0.05})
        return harness.run(schedule)


def _diff_against_baseline(payload: dict, path: str) -> None:
    """Compare fresh steady throughput against a committed baseline."""
    if not os.path.exists(path):
        return
    try:
        with open(path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        base_qps = baseline["steady"]["throughput_qps"]
    except (OSError, ValueError, KeyError):
        return
    fresh_qps = payload["steady"]["throughput_qps"]
    if fresh_qps < base_qps * (1.0 - REGRESSION_THRESHOLD):
        print(f"::warning title=serving-bench regression::steady throughput "
              f"{fresh_qps:.1f} qps is {fresh_qps / base_qps:.2f}x the "
              f"committed baseline {base_qps:.1f} qps "
              f"(>{int(REGRESSION_THRESHOLD * 100)}% slower)")
    else:
        print(f"serving-bench throughput check: {fresh_qps:.1f} qps vs "
              f"committed {base_qps:.1f} qps ({fresh_qps / base_qps:.2f}x)")


def test_serving_load_population():
    scenarios = _scenarios()

    # ---- steady phase, twice: the replay-determinism assertion IS the
    # benchmark's correctness gate.  Same workload seed, fresh same-seed
    # services — schedules and releases must both replay byte-for-byte.
    steady_schedule = generate_schedule(STEADY_CONFIG)
    replay_schedule = generate_schedule(STEADY_CONFIG)
    assert steady_schedule.digest() == replay_schedule.digest(), \
        "workload generation is not deterministic"
    assert len(steady_schedule.events) >= 50
    steady = _replay(scenarios, steady_schedule, epsilon_budget=500.0)
    replay = _replay(scenarios, replay_schedule, epsilon_budget=500.0)
    assert steady.outcomes()["completed"] == len(steady_schedule.events), \
        f"steady phase lost queries: {steady.outcomes()}"
    assert steady.releases_digest() == replay.releases_digest(), \
        "same-seed replay changed released values (noise or raw)"
    assert steady.raw_digest() == replay.raw_digest()

    # ---- storm phase: undersized pool, bounded queue, tight budget, paced
    # just fast enough that arrivals outrun the two slots — admission sheds
    # (timing-dependent, recorded not asserted) mix with budget denials
    # (deterministic once the 0.5-epsilon budget exhausts).
    storm = _replay(scenarios, generate_schedule(STORM_CONFIG),
                    epsilon_budget=0.5, time_scale=0.05,
                    max_concurrent_queries=2, max_queue_depth=2)
    storm_outcomes = storm.outcomes()
    assert sum(storm_outcomes.values()) == len(storm.schedule.events)
    assert storm_outcomes["denied"] > 0, "storm never exhausted the budget"
    assert storm.ledger["denied"] == storm_outcomes["denied"], \
        "ledger denial count disagrees with classified outcomes"

    # ---- deadline phase: every query submitted past its deadline.
    deadline = _replay(scenarios, generate_schedule(DEADLINE_CONFIG),
                       epsilon_budget=500.0,
                       execute_kwargs={"default_epsilon": 0.05,
                                       "timeout": 1e-6})
    deadline_outcomes = deadline.outcomes()
    assert deadline_outcomes["deadline_missed"] \
        == len(deadline.schedule.events)

    # ---- human-readable summary.
    steady_dict = steady.as_dict()
    latency_rows = [{"metric": name, **{k: (round(v, 6)
                                            if isinstance(v, float) else v)
                                        for k, v in summary.items()}}
                    for name, summary in steady_dict["latency"].items()]
    print_table(f"Steady-state latency over {len(steady_schedule.events)} "
                f"queries, {NUM_TENANTS} tenants (seconds)", latency_rows)
    print_table("Outcome counts per phase", [
        {"phase": "steady", **steady_dict["outcomes"]},
        {"phase": "storm", **storm_outcomes},
        {"phase": "deadline", **deadline_outcomes},
    ])
    cache = steady_dict["service"]["cache"]
    print_table("Steady-state chunk-store hit rates by tier", [{
        "overall": round(cache["hit_rate"], 3),
        "memory": round(cache["memory"]["hit_rate"], 3),
        "disk": round(cache["disk"]["hit_rate"], 3),
    }])

    # ---- machine-readable record for the CI artifact.
    payload = {
        "bench": "serving_load",
        "cpu_count": os.cpu_count(),
        "determinism": {
            "runs": 2,
            "schedule_digest": steady_schedule.digest(),
            "releases_digest": steady.releases_digest(),
            "replay_match": True,  # asserted above; recorded for readers
        },
        "steady": {
            **steady_dict,
            "throughput_qps": len(steady_schedule.events) / steady.wall_s,
        },
        "storm": storm.as_dict(),
        "deadline": {"workload": deadline.as_dict()["workload"],
                     "outcomes": deadline_outcomes},
    }
    path = os.environ.get("BENCH_SERVING_JSON", "BENCH_serving.json")
    _diff_against_baseline(payload, path)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


if __name__ == "__main__":
    test_serving_load_population()
