"""Fig. 4: persistence distributions before/after masking.

Paper: masks reduce the maximum persistence by 1.71x (urban), 4.99x (campus)
and 9.65x (highway) while retaining the large majority of private objects.
"""

from __future__ import annotations

import pytest

from repro.analysis.persistence import masked_persistence, persistence_histogram

from benchmarks.conftest import print_table

PAPER_REDUCTIONS = {"campus": 4.99, "highway": 9.65, "urban": 1.71}


@pytest.mark.parametrize("name", ["campus", "highway", "urban"])
def test_fig4_masking_reduces_max_persistence(benchmark, primary_scenarios, name):
    scenario = primary_scenarios[name]

    def run():
        return masked_persistence(scenario.video, scenario.owner_mask, sample_period=2.0)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    _, original_hist = persistence_histogram(report.original_durations)
    _, masked_hist = persistence_histogram(report.masked_durations)
    print_table(f"Fig. 4 ({name})", [{
        "video": name,
        "objects_before": report.objects_before,
        "objects_after": report.objects_after,
        "original_max_s": round(report.original_max, 1),
        "masked_max_s": round(report.masked_max, 1),
        "reduction_x": round(report.reduction_factor, 2),
        "paper_reduction_x": PAPER_REDUCTIONS[name],
        "retention": f"{report.retention_fraction * 100:.1f}%",
    }])
    assert original_hist.sum() > 0 and masked_hist.sum() > 0
    # Shape targets: masking meaningfully reduces the maximum persistence
    # while keeping most objects observable.
    assert report.reduction_factor > 1.3
    assert report.retention_fraction > 0.6
