"""Ablation: how much each utility optimisation (masking, spatial splitting)
reduces the noise of the Case 1 query (design-choice ablation from DESIGN.md).
"""

from __future__ import annotations

from repro.evaluation.queries import case1_counting_query
from repro.utils.timebase import SECONDS_PER_HOUR

from benchmarks.conftest import print_table


def test_ablation_masking_and_regions(benchmark, evaluation_system):
    window = 2.0 * SECONDS_PER_HOUR

    def run():
        rows = []
        configurations = [
            ("no optimisation", None, None),
            ("masking", "owner", None),
        ]
        for label, mask, region_scheme in configurations:
            query = case1_counting_query(
                "campus", category="person", window_seconds=window, chunk_duration=60.0,
                max_rows=5, mask=mask, bucket_seconds=None, epsilon=1.0,
                region_scheme=region_scheme)
            result = evaluation_system.execute(query, charge_budget=False)
            rows.append({
                "configuration": label,
                "sensitivity": result.releases[0].sensitivity,
                "noise_scale": round(result.releases[0].noise_scale, 1),
            })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: effect of masking on Case 1 noise", rows)
    assert rows[1]["noise_scale"] < rows[0]["noise_scale"]
