"""Fig. 6: RMSE of the Case 1 query under a chunk-size x output-range sweep.

Paper: for a fixed output range, larger chunks improve raw accuracy (more
tracking context) but add noise (each row covers more of the window); error
bars grow with both the chunk size and the per-chunk output cap.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation.baselines import ground_truth_hourly_counts
from repro.evaluation.metrics import series_rmse
from repro.evaluation.queries import case1_counting_query
from repro.utils.timebase import SECONDS_PER_HOUR, TimeInterval

from benchmarks.conftest import print_cache_stats, print_table

CHUNK_SIZES = (30.0, 60.0, 120.0)
MAX_ROWS_SWEEP = (5, 10, 20)
WINDOW_HOURS = 2.0


def test_fig6_chunk_and_range_sweep(benchmark, primary_scenarios, evaluation_system):
    scenario = primary_scenarios["campus"]
    window = WINDOW_HOURS * SECONDS_PER_HOUR
    reference = ground_truth_hourly_counts(scenario.video, category="person",
                                           window=TimeInterval(0.0, window))

    def run():
        rows = []
        for chunk_duration in CHUNK_SIZES:
            for max_rows in MAX_ROWS_SWEEP:
                query = case1_counting_query(
                    "campus", category="person", window_seconds=window,
                    chunk_duration=chunk_duration, max_rows=max_rows, mask="owner",
                    bucket_seconds=SECONDS_PER_HOUR, epsilon=1.0)
                base = evaluation_system.execute(query, charge_budget=False)
                rmses = [series_rmse(evaluation_system.resample_noise(base), reference)
                         for _ in range(50)]
                rows.append({
                    "chunk_s": chunk_duration,
                    "max_rows": max_rows,
                    "noise_scale": round(base.releases[0].noise_scale, 1),
                    "rmse_mean": round(float(np.mean(rmses)), 1),
                    "rmse_std": round(float(np.std(rmses)), 1),
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Fig. 6 (campus): RMSE vs chunk size and per-chunk output cap", rows)
    # Each (chunk size, max_rows) config keys its chunks separately, but the
    # session-wide cache serves repeats of any config processed earlier in the
    # session (e.g. the Fig. 7 sweep shares this camera's 60s chunks).
    print_cache_stats(evaluation_system)
    # Shape target: for a fixed chunk size, raising the per-chunk output cap
    # raises the noise and therefore the RMSE.
    by_chunk: dict[float, list[float]] = {}
    for row in rows:
        by_chunk.setdefault(row["chunk_s"], []).append(row["rmse_mean"])
    for chunk_duration, rmses in by_chunk.items():
        assert rmses[0] <= rmses[-1] + 1e-6, f"RMSE should grow with max_rows at c={chunk_duration}"
