"""Tables 4-5 (Appendix A): per-video tracker hyperparameter tuning.

Paper: for each video, sweep the tracker's hyperparameters and pick the
configuration whose persistence distribution best matches the annotated
ground truth.
"""

from __future__ import annotations

import pytest

from repro.cv.detector import SyntheticDetector
from repro.cv.tuning import tune_tracker
from repro.utils.timebase import TimeInterval

from benchmarks.conftest import print_table

GRID = {"max_age": (8, 16, 32), "min_hits": (2, 3, 5), "iou_threshold": (0.1, 0.3)}
SEGMENT_SECONDS = 600.0


@pytest.mark.parametrize("name", ["campus", "highway"])
def test_tables4_5_tracker_tuning(benchmark, primary_scenarios, name):
    scenario = primary_scenarios[name]
    detector = SyntheticDetector(scenario.detector_config, seed=0)
    frames = list(scenario.video.frames(TimeInterval(0.0, SEGMENT_SECONDS), sample_period=1.0))
    detections = [[det for det in detector.detect_frame(frame)
                   if det.category in ("person", "car")] for frame in frames]
    window_objects = scenario.video.objects_overlapping(TimeInterval(0.0, SEGMENT_SECONDS))

    def run():
        return tune_tracker(detections, window_objects, grid=GRID)

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [result.as_row() for result in results[:5]]
    print_table(f"Tables 4/5 best tracker configurations ({name})", rows)
    assert len(results) == 3 * 3 * 2
    assert results[0].distance <= results[-1].distance
