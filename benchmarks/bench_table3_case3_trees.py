"""Table 3 Case 3 (Q7-Q9): fraction of trees with leaves (non-private objects).

Paper: single-frame chunks over a 12-hour window make the average's
sensitivity tiny, so accuracy is 98-99.9%.
"""

from __future__ import annotations

import pytest

from repro.evaluation.baselines import tree_leaf_fraction_truth
from repro.evaluation.queries import case3_tree_query
from repro.evaluation.runner import run_repeated
from repro.utils.timebase import SECONDS_PER_HOUR

from benchmarks.conftest import print_table

PAPER = {"campus": ("15/15", "99.90%"), "highway": ("3/7", "98.24%"), "urban": ("4/6", "99.39%")}


@pytest.mark.parametrize("name", ["campus", "highway", "urban"])
def test_case3_tree_fraction(benchmark, primary_scenarios, evaluation_system, name):
    scenario = primary_scenarios[name]
    # A 1-hour window keeps the chunk count (one chunk per frame) tractable;
    # the paper uses 12 hours, which only shrinks the noise further.
    query = case3_tree_query(name, window_seconds=1.0 * SECONDS_PER_HOUR,
                             frame_period=scenario.video.frame_period, mask="owner")
    truth = tree_leaf_fraction_truth(scenario.video)

    def run():
        return run_repeated(evaluation_system, query, samples=100, reference=truth)

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(f"Table 3 Case 3 ({name})", [{
        "video": name,
        "ground_truth_pct": round(truth, 1),
        "privid_no_noise_pct": round(outcome.raw_series[0], 1),
        "noise_scale": round(outcome.noise_scales[0], 3),
        "accuracy": outcome.accuracy.as_percent(),
        "paper": f"{PAPER[name][0]} leaves, {PAPER[name][1]}",
    }])
    # The paper's 98-99.9% corresponds to a 12-hour window; the 1-hour window
    # used here has 12x fewer chunks and therefore 12x more relative noise.
    assert outcome.accuracy.mean > 0.7
