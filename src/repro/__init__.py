"""Reproduction of "Privid: Practical, Privacy-Preserving Video Analytics Queries".

The public API re-exports the pieces a downstream user needs to stand up a
deployment: the system itself (:class:`PrividSystem`), privacy policies,
the query builder/parser, and the synthetic scene/CV substrates used in
place of real video.
"""

from repro.core import (
    CameraRegistration,
    FrameBudgetLedger,
    LaplaceMechanism,
    MaskPolicyMap,
    PrivacyPolicy,
    PrividSystem,
    QueryResult,
    ReleaseResult,
)
from repro.errors import (
    BudgetExceededError,
    PolicyError,
    PrividError,
    QuerySyntaxError,
    QueryValidationError,
    UnboundSensitivityError,
)
from repro.query import PrividQuery, QueryBuilder, parse_query, validate_query
from repro.utils.timebase import TimeInterval

__version__ = "0.1.0"

__all__ = [
    "PrividSystem",
    "CameraRegistration",
    "PrivacyPolicy",
    "MaskPolicyMap",
    "FrameBudgetLedger",
    "LaplaceMechanism",
    "QueryResult",
    "ReleaseResult",
    "PrividQuery",
    "QueryBuilder",
    "parse_query",
    "validate_query",
    "TimeInterval",
    "PrividError",
    "PolicyError",
    "BudgetExceededError",
    "QuerySyntaxError",
    "QueryValidationError",
    "UnboundSensitivityError",
    "__version__",
]
