"""Counter-based deterministic hashing for the columnar CV substrate.

The synthetic detector derives every pseudo-random decision (missed
detections, localisation jitter, confidence, attribute misreads, false
positives) from a keyed counter-based hash rather than from stateful RNG, so
the draw for a given ``(seed, stream, object, frame)`` is independent of
processing order — chunks can be executed in any order, in parallel, or
twice, and the detector output never changes.  This order-independence is the
determinism contract behind the paper's comparable private/non-private runs.

Earlier revisions paid one SHA-256-over-formatted-string per draw; this
module replaces that with splitmix64 finalisation over uint64 lanes, which
numpy evaluates for an entire chunk of frames in a handful of array ops.  A
scalar (pure-Python int) twin of every primitive is kept bit-identical to the
vectorized version so the legacy per-frame API yields exactly the same draws
as the batched path:

* a *stream key* folds the seed and the lane tokens (stream tag, hashed
  object id, attribute name, ...) into one uint64;
* the draw for counter ``i`` of a stream is ``mix64(key + i * GOLDEN)`` —
  the splitmix64 generator seeded at ``key`` and jumped directly to index
  ``i``;
* the top 53 bits of the mixed lane scale to a float in ``[0, 1)``, which is
  exact in IEEE double precision in both the scalar and the numpy path.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

import numpy as np

_MASK64 = (1 << 64) - 1
#: splitmix64 stream increment (the 64-bit golden-ratio constant).
GOLDEN_GAMMA = 0x9E3779B97F4A7C15
_MIX_MULT_1 = 0xBF58476D1CE4E5B9
_MIX_MULT_2 = 0x94D049BB133111EB
#: 2**-53 — scales the top 53 bits of a mixed lane to a float in [0, 1).
_INV_2_53 = 2.0 ** -53


def mix64(value: int) -> int:
    """splitmix64 finaliser of one uint64 lane (scalar twin of :func:`mix64_array`)."""
    z = value & _MASK64
    z = ((z ^ (z >> 30)) * _MIX_MULT_1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX_MULT_2) & _MASK64
    return z ^ (z >> 31)


def mix64_array(lanes: np.ndarray) -> np.ndarray:
    """splitmix64 finaliser applied lane-wise to a uint64 array."""
    with np.errstate(over="ignore"):
        z = lanes.astype(np.uint64, copy=True)
        z ^= z >> np.uint64(30)
        z *= np.uint64(_MIX_MULT_1)
        z ^= z >> np.uint64(27)
        z *= np.uint64(_MIX_MULT_2)
        z ^= z >> np.uint64(31)
    return z


@lru_cache(maxsize=1 << 16)
def string_token(text: str) -> int:
    """Stable 64-bit lane token for a string (FNV-1a folded through mix64).

    Object ids and stream tags enter the key through this token, so the
    keying is a pure function of the *identifier*, never of Python object
    identity or interning.
    """
    h = 0xCBF29CE484222325
    for byte in text.encode("utf-8"):
        h = ((h ^ byte) * 0x100000001B3) & _MASK64
    return mix64(h)


@lru_cache(maxsize=1 << 16)
def stream_key(seed: int, *tokens: int) -> int:
    """Fold a seed and lane tokens into one stream key.

    Every token passes through a full finalisation round, so streams that
    differ in any single token (tag, object, attribute name, false-positive
    slot) are decorrelated.  Pure function of its arguments; memoized
    because the detector re-derives the same few keys for every chunk.
    """
    key = mix64(seed & _MASK64)
    for token in tokens:
        key = mix64(key ^ (token & _MASK64))
    return key


def unit_draw(key: int, index: int) -> float:
    """Scalar draw in [0, 1) for counter ``index`` of stream ``key``."""
    lane = (key + index * GOLDEN_GAMMA) & _MASK64
    return (mix64(lane) >> 11) * _INV_2_53


def signed_draw(key: int, index: int) -> float:
    """Scalar draw in [-1, 1) for counter ``index`` of stream ``key``."""
    return 2.0 * unit_draw(key, index) - 1.0


def unit_draws(key: int, indices: np.ndarray) -> np.ndarray:
    """Vectorized draws in [0, 1), one per counter in ``indices``.

    Bit-identical to calling :func:`unit_draw` per index: the lane is the
    same uint64 (numpy wraps modulo 2**64 exactly like the masked scalar
    path) and the float scaling is exact.
    """
    with np.errstate(over="ignore"):
        lanes = np.uint64(key) + np.asarray(indices).astype(np.uint64) * np.uint64(GOLDEN_GAMMA)
        mixed = mix64_array(lanes)
    return (mixed >> np.uint64(11)).astype(np.float64) * _INV_2_53


def signed_draws(key: int, indices: np.ndarray) -> np.ndarray:
    """Vectorized draws in [-1, 1), one per counter in ``indices``."""
    return 2.0 * unit_draws(key, indices) - 1.0


def unit_draws_matrix(keys: Sequence[int] | np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Draws in [0, 1) for every (stream key, counter) pair as a (K, N) matrix.

    Row ``k`` equals ``unit_draws(keys[k], indices)`` bit-for-bit; stacking
    the streams lets a caller evaluate every draw stream of a whole chunk in
    a single mix64 pass.
    """
    with np.errstate(over="ignore"):
        key_lanes = np.asarray(keys, dtype=np.uint64)[:, np.newaxis]
        lanes = key_lanes + np.asarray(indices).astype(np.uint64)[np.newaxis, :] \
            * np.uint64(GOLDEN_GAMMA)
        mixed = mix64_array(lanes)
    return (mixed >> np.uint64(11)).astype(np.float64) * _INV_2_53
