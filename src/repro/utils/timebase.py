"""Time primitives used throughout the library.

All times are expressed in seconds relative to the start of a video (or, for
multi-day datasets such as Porto, relative to the start of the observation
period).  Durations are also in seconds.  Frame indices are integers obtained
by multiplying a time by the video frame rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0


def seconds_to_frames(seconds: float, fps: float) -> int:
    """Convert a duration in seconds to a whole number of frames.

    Privid requires chunk durations and strides to correspond to an integer
    number of frames (Appendix D); callers that need that check should use
    :func:`is_integral_frame_count` instead of silently rounding.
    """
    return int(round(seconds * fps))


def frames_to_seconds(frames: int, fps: float) -> float:
    """Convert a frame count to a duration in seconds."""
    return frames / fps


def is_integral_frame_count(seconds: float, fps: float, *, tolerance: float = 1e-9) -> bool:
    """Return True if ``seconds`` corresponds to an integer number of frames."""
    frames = seconds * fps
    return abs(frames - round(frames)) <= tolerance


#: Tolerance (in frames) when mapping float timestamps to frame indices.
#: Chunk boundaries are frame-aligned by construction, but float arithmetic
#: can land just below the exact product (e.g. ``29.999999999 * 30``); the
#: epsilon snaps such values to the intended frame instead of truncating.
FRAME_INDEX_EPSILON = 1e-6


def frame_index_of(timestamp: float, fps: float, *,
                   epsilon: float = FRAME_INDEX_EPSILON) -> int:
    """Frame index containing ``timestamp``, robust to float error.

    A bare ``int(timestamp * fps)`` truncates products that land just below
    the exact frame boundary (e.g. ``0.2999999... * 10``); the epsilon snaps
    such values to the intended frame before flooring.
    """
    return int(math.floor(timestamp * fps + epsilon))


def num_frames_in(duration: float, fps: float, *,
                  epsilon: float = FRAME_INDEX_EPSILON) -> int:
    """Number of whole frames in ``[0, duration)``, robust to float error.

    Consistent with :func:`frame_index_range` over the same window, so a
    video's ``num_frames`` always equals the number of frames its iterators
    yield (``duration=0.3, fps=10`` is 3 frames, not ``int(2.999...) == 2``).
    """
    return frame_index_range(0.0, duration, fps, epsilon=epsilon)[1]


def frame_index_range(start: float, end: float, fps: float, *,
                      epsilon: float = FRAME_INDEX_EPSILON) -> tuple[int, int]:
    """Frame indices covered by the half-open time window ``[start, end)``.

    Returns ``(first, last)`` such that ``range(first, last)`` enumerates
    every frame whose timestamp lies in the window.  A frame belongs to the
    window when ``start <= index / fps < end``, so ``first`` is the ceiling of
    ``start * fps`` and ``last`` the ceiling of ``end * fps`` — each computed
    with an epsilon so float error at a chunk boundary can neither drop the
    boundary frame nor duplicate it into the neighbouring chunk.
    """
    first = math.ceil(start * fps - epsilon)
    last = math.ceil(end * fps - epsilon)
    return first, max(first, last)


def hour_of(timestamp: float) -> int:
    """Hour-of-period helper mirroring the query language ``hour(chunk)``."""
    return int(timestamp // SECONDS_PER_HOUR)


def day_of(timestamp: float) -> int:
    """Day-of-period helper mirroring the query language ``day(chunk)``."""
    return int(timestamp // SECONDS_PER_DAY)


@dataclass(frozen=True)
class TimeInterval:
    """A half-open interval of time ``[start, end)`` in seconds.

    The interval is allowed to be empty (``start == end``) but never
    inverted.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"interval end {self.end} precedes start {self.start}")

    @property
    def duration(self) -> float:
        """Length of the interval in seconds."""
        return self.end - self.start

    def contains(self, timestamp: float) -> bool:
        """Return True if ``timestamp`` lies inside the half-open interval."""
        return self.start <= timestamp < self.end

    def overlaps(self, other: "TimeInterval") -> bool:
        """Return True if the two intervals share at least one instant."""
        return self.start < other.end and other.start < self.end

    def intersection(self, other: "TimeInterval") -> "TimeInterval | None":
        """Return the overlapping interval, or None if the intervals are disjoint."""
        start = max(self.start, other.start)
        end = min(self.end, other.end)
        if start >= end:
            return None
        return TimeInterval(start, end)

    def union_span(self, other: "TimeInterval") -> "TimeInterval":
        """Return the smallest interval covering both inputs."""
        return TimeInterval(min(self.start, other.start), max(self.end, other.end))

    def expand(self, margin: float) -> "TimeInterval":
        """Return the interval widened by ``margin`` seconds on each side.

        The start is clamped at zero because a video has no frames before its
        first frame; Algorithm 1 applies this to build the ``[a - rho, b + rho]``
        admission window.
        """
        return TimeInterval(max(0.0, self.start - margin), self.end + margin)

    def shift(self, offset: float) -> "TimeInterval":
        """Return the interval translated by ``offset`` seconds."""
        return TimeInterval(self.start + offset, self.end + offset)

    def clamp(self, bounds: "TimeInterval") -> "TimeInterval":
        """Return the portion of this interval that lies inside ``bounds``.

        If the two do not overlap, an empty interval anchored at ``bounds.start``
        is returned.
        """
        start = min(max(self.start, bounds.start), bounds.end)
        end = max(min(self.end, bounds.end), bounds.start)
        if end < start:
            end = start
        return TimeInterval(start, end)

    def split(self, chunk_duration: float, stride: float = 0.0) -> Iterator["TimeInterval"]:
        """Yield consecutive sub-intervals of ``chunk_duration`` seconds.

        ``stride`` is the gap between the end of one chunk and the start of
        the next (0 means contiguous chunks, as in the paper's examples).  The
        final chunk is truncated at the interval end.

        Boundaries come from per-index multiplication, not a running float
        accumulator, so exactly :meth:`num_chunks` chunks are yielded: an
        accumulator can land a hair below ``end`` after the final chunk
        (e.g. ten 0.1s steps summing to 0.9999...) and emit a spurious
        sliver chunk that the O(1) count — which sensitivity accounting
        relies on — would never predict.
        """
        if chunk_duration <= 0:
            raise ValueError("chunk_duration must be positive")
        step = chunk_duration + stride
        if step <= 0:
            raise ValueError("chunk_duration + stride must be positive")
        for index in range(self.num_chunks(chunk_duration, stride)):
            position = min(self.start + index * step, self.end)
            yield TimeInterval(position, min(position + chunk_duration, self.end))

    def num_chunks(self, chunk_duration: float, stride: float = 0.0) -> int:
        """Number of chunks produced by :meth:`split` with the same arguments."""
        if chunk_duration <= 0:
            raise ValueError("chunk_duration must be positive")
        step = chunk_duration + stride
        if step <= 0:
            raise ValueError("chunk_duration + stride must be positive")
        if self.duration <= 0:
            return 0
        return int(math.ceil(self.duration / step))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TimeInterval({self.start:g}, {self.end:g})"
