"""Deterministic random-number management.

Reproducing the paper's experiments requires re-running queries hundreds of
times with fresh noise samples while keeping the synthetic scenes themselves
fixed.  To keep those concerns separate every component draws from its own
named stream derived from a single root seed.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np


def _seed_from_name(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(root_seed: int, name: str) -> np.random.Generator:
    """Return a NumPy generator for the stream ``name`` under ``root_seed``."""
    return np.random.default_rng(_seed_from_name(root_seed, name))


class RandomSource:
    """A hierarchical source of independent random streams.

    A :class:`RandomSource` is constructed from a root seed; calling
    :meth:`stream` returns a generator that is deterministic in
    ``(root_seed, name)`` and independent of every other stream.  Child
    sources can be derived for sub-components so that, for example, the scene
    simulator and the noise mechanism never share a stream even when built
    from the same root seed.
    """

    def __init__(self, seed: int = 0, *, path: str = "") -> None:
        self.seed = int(seed)
        self.path = path

    def stream(self, name: str) -> np.random.Generator:
        """Return an independent generator for ``name``."""
        return derive_rng(self.seed, f"{self.path}/{name}")

    def child(self, name: str) -> "RandomSource":
        """Return a child source whose streams are namespaced under ``name``."""
        return RandomSource(self.seed, path=f"{self.path}/{name}")

    def spawn_many(self, names: Iterable[str]) -> dict[str, np.random.Generator]:
        """Return a mapping of stream name to generator for each name given."""
        return {name: self.stream(name) for name in names}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomSource(seed={self.seed}, path={self.path!r})"
