"""Shared utilities: time bases, random-number management, statistics."""

from repro.utils.hashing import (
    stream_key,
    string_token,
    unit_draw,
    unit_draws,
)
from repro.utils.timebase import TimeInterval, frames_to_seconds, seconds_to_frames
from repro.utils.rng import RandomSource, derive_rng
from repro.utils.stats import (
    accuracy,
    mean_absolute_error,
    relative_error,
    root_mean_square_error,
    summarize,
)

__all__ = [
    "stream_key",
    "string_token",
    "unit_draw",
    "unit_draws",
    "TimeInterval",
    "frames_to_seconds",
    "seconds_to_frames",
    "RandomSource",
    "derive_rng",
    "accuracy",
    "mean_absolute_error",
    "relative_error",
    "root_mean_square_error",
    "summarize",
]
