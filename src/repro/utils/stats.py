"""Small statistics helpers used by the evaluation harness.

The paper reports query *accuracy* as ``1 - |privid - original| / original``
(expressed as a percentage) and sweeps report root-mean-square error against
the non-private baseline.  These helpers centralise those definitions so the
benchmarks and tests agree on them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


def relative_error(measured: float, reference: float) -> float:
    """Absolute error of ``measured`` relative to ``reference``.

    When the reference is zero the error is 0 if the measurement is also
    zero and infinity otherwise; this matches how the paper treats queries
    whose true answer is zero (they do not occur in the evaluation).
    """
    if reference == 0:
        return 0.0 if measured == 0 else math.inf
    return abs(measured - reference) / abs(reference)


def accuracy(measured: float, reference: float) -> float:
    """Accuracy in [0, 1] relative to a reference value (clamped below at 0)."""
    return max(0.0, 1.0 - relative_error(measured, reference))


def mean_absolute_error(measured: Sequence[float], reference: Sequence[float]) -> float:
    """Mean absolute error between two equal-length series."""
    measured_arr = np.asarray(measured, dtype=float)
    reference_arr = np.asarray(reference, dtype=float)
    if measured_arr.shape != reference_arr.shape:
        raise ValueError("series must have the same length")
    if measured_arr.size == 0:
        return 0.0
    return float(np.mean(np.abs(measured_arr - reference_arr)))


def root_mean_square_error(measured: Sequence[float], reference: Sequence[float]) -> float:
    """Root-mean-square error between two equal-length series."""
    measured_arr = np.asarray(measured, dtype=float)
    reference_arr = np.asarray(reference, dtype=float)
    if measured_arr.shape != reference_arr.shape:
        raise ValueError("series must have the same length")
    if measured_arr.size == 0:
        return 0.0
    return float(np.sqrt(np.mean((measured_arr - reference_arr) ** 2)))


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a sample: mean, standard deviation, extremes."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    def as_dict(self) -> dict[str, float]:
        """Return the summary as a plain dictionary (for report printing)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Summarise a sample of values; empty input produces an all-zero summary."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return Summary(count=0, mean=0.0, std=0.0, minimum=0.0, maximum=0.0)
    return Summary(
        count=int(arr.size),
        mean=float(np.mean(arr)),
        std=float(np.std(arr)),
        minimum=float(np.min(arr)),
        maximum=float(np.max(arr)),
    )
