"""Tracker hyperparameter tuning (Appendix A, Tables 4 and 5).

The paper tunes DeepSORT / SORT per video by sweeping a grid of
hyperparameters and picking the configuration whose persistence distribution
most closely matches a manually annotated ground-truth distribution.  This
module reproduces that procedure over the synthetic tracker: it sweeps
``TrackerConfig`` grids and scores each configuration by the distance between
its persistence distribution and the ground-truth distribution.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.cv.detector import Detection
from repro.cv.duration import ground_truth_distribution, persistence_distribution
from repro.cv.tracker import TrackerConfig, track_detection_stream
from repro.scene.objects import SceneObject


@dataclass(frozen=True)
class TuningResult:
    """Score of one hyperparameter configuration."""

    config: TrackerConfig
    distance: float
    num_tracks: int
    estimated_max: float

    def as_row(self) -> dict[str, float | int]:
        """Flatten the result into a printable row (for the Tables 4/5 bench)."""
        return {
            "max_age": self.config.max_age,
            "min_hits": self.config.min_hits,
            "iou_threshold": self.config.iou_threshold,
            "distance": self.distance,
            "num_tracks": self.num_tracks,
            "estimated_max": self.estimated_max,
        }


def distribution_distance(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Distance between two persistence distributions.

    Uses the 1-Wasserstein (earth mover's) distance between empirical
    distributions, computed directly from sorted quantiles; it is robust to
    the two samples having different sizes and captures both location and
    spread differences, which is what the paper's manual comparison is after.
    """
    if len(sample_a) == 0 and len(sample_b) == 0:
        return 0.0
    if len(sample_a) == 0 or len(sample_b) == 0:
        nonempty = sample_a if sample_a else sample_b
        return float(np.mean(np.abs(nonempty)))
    quantiles = np.linspace(0.0, 1.0, 101)
    qa = np.quantile(np.asarray(sample_a, dtype=float), quantiles)
    qb = np.quantile(np.asarray(sample_b, dtype=float), quantiles)
    return float(np.mean(np.abs(qa - qb)))


def default_grid() -> dict[str, Sequence[float | int]]:
    """Hyperparameter grid mirroring the shape of Tables 4 and 5."""
    return {
        "max_age": (8, 16, 32, 64, 96),
        "min_hits": (2, 3, 5, 7, 9),
        "iou_threshold": (0.1, 0.3, 0.5, 0.7),
    }


def iterate_grid(grid: Mapping[str, Sequence[float | int]]) -> Iterable[TrackerConfig]:
    """Yield a TrackerConfig for every combination in the grid."""
    keys = sorted(grid)
    for values in itertools.product(*(grid[key] for key in keys)):
        params = dict(zip(keys, values))
        yield TrackerConfig(
            max_age=int(params.get("max_age", 30)),
            min_hits=int(params.get("min_hits", 3)),
            iou_threshold=float(params.get("iou_threshold", 0.3)),
        )


def tune_tracker(detections_by_frame: Sequence[Sequence[Detection]],
                 objects: Sequence[SceneObject], *,
                 grid: Mapping[str, Sequence[float | int]] | None = None,
                 categories: Iterable[str] | None = None) -> list[TuningResult]:
    """Sweep the grid and return results sorted from best (smallest distance) to worst."""
    grid = grid if grid is not None else default_grid()
    reference = ground_truth_distribution(objects, categories=categories)
    results: list[TuningResult] = []
    for config in iterate_grid(grid):
        tracks = track_detection_stream(detections_by_frame, config)
        estimated = persistence_distribution(tracks)
        results.append(TuningResult(
            config=config,
            distance=distribution_distance(estimated, reference),
            num_tracks=len(tracks),
            estimated_max=max(estimated, default=0.0),
        ))
    results.sort(key=lambda result: result.distance)
    return results


def best_config(results: Sequence[TuningResult]) -> TrackerConfig:
    """Configuration with the smallest distribution distance."""
    if not results:
        raise ValueError("no tuning results to choose from")
    return results[0].config
