"""Persistence (duration) estimation from tracks.

Section 5.2 argues that, despite detector misses, detection + tracking can
produce a *conservative* estimate of the maximum time any individual is
visible, which is all the video owner needs to parameterise a
(rho, K, epsilon) policy.  These helpers compute persistence distributions
from tracks and ground truth and the conservative maximum estimate used by
policy estimation (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cv.tracker import Track
from repro.scene.objects import PRIVATE_CATEGORIES, SceneObject


@dataclass(frozen=True)
class DurationEstimate:
    """CV-estimated versus ground-truth maximum persistence for one video."""

    ground_truth_max: float
    estimated_max: float
    miss_fraction: float
    num_tracks: int
    num_ground_truth_objects: int

    @property
    def is_conservative(self) -> bool:
        """True if the CV estimate is at least the ground-truth maximum."""
        return self.estimated_max >= self.ground_truth_max

    @property
    def overestimate_factor(self) -> float:
        """Ratio of estimate to ground truth (1.0 means exact)."""
        if self.ground_truth_max <= 0:
            return 1.0
        return self.estimated_max / self.ground_truth_max


def persistence_distribution(tracks: Iterable[Track]) -> list[float]:
    """Observed persistence (seconds) of each track."""
    return [track.duration for track in tracks]


def ground_truth_distribution(objects: Iterable[SceneObject], *,
                              categories: Iterable[str] | None = None) -> list[float]:
    """Ground-truth appearance durations (seconds) of private objects.

    Each appearance contributes one sample, matching the paper's definition
    of persistence as the length of a single visibility segment.
    """
    allowed = frozenset(categories) if categories is not None else PRIVATE_CATEGORIES
    durations: list[float] = []
    for scene_object in objects:
        if scene_object.category not in allowed:
            continue
        durations.extend(appearance.duration for appearance in scene_object.appearances)
    return durations


def estimate_durations(tracks: Sequence[Track], *, grace_period: float = 0.0) -> list[float]:
    """Per-track persistence estimates with an optional conservative grace period.

    ``grace_period`` accounts for the fact that a track only spans the frames
    in which the object was *detected*: the object may have been visible (but
    missed) for up to the tracker's gap-bridging window before the first and
    after the last detection.  Adding that slack keeps the estimate
    conservative, which is what policy estimation needs.
    """
    return [track.duration + grace_period for track in tracks]


def estimate_max_duration(tracks: Sequence[Track], *, grace_period: float = 0.0) -> float:
    """Conservative estimate of the maximum persistence across all tracks."""
    durations = estimate_durations(tracks, grace_period=grace_period)
    return max(durations, default=0.0)


def conservative_grace_period(max_age_frames: int, fps: float, *, sides: int = 2) -> float:
    """Grace period implied by the tracker's ``max_age`` gap-bridging window.

    The object may have been missed for up to ``max_age`` frames on each side
    of the track, so the conservative slack is ``sides * max_age / fps``
    seconds.
    """
    if fps <= 0:
        raise ValueError("fps must be positive")
    return sides * max_age_frames / fps


def compare_to_ground_truth(tracks: Sequence[Track], objects: Sequence[SceneObject], *,
                            miss_fraction: float, grace_period: float = 0.0,
                            categories: Iterable[str] | None = None) -> DurationEstimate:
    """Build the Table 1 comparison between CV estimates and ground truth."""
    allowed = frozenset(categories) if categories is not None else PRIVATE_CATEGORIES
    ground_truth = ground_truth_distribution(objects, categories=allowed)
    relevant_objects = [obj for obj in objects if obj.category in allowed]
    return DurationEstimate(
        ground_truth_max=max(ground_truth, default=0.0),
        estimated_max=estimate_max_duration(tracks, grace_period=grace_period),
        miss_fraction=miss_fraction,
        num_tracks=len(tracks),
        num_ground_truth_objects=len(relevant_objects),
    )
