"""Synthetic computer-vision substrate: imperfect detection and tracking.

The paper's implementation uses Faster-RCNN (Detectron2) for object detection
and DeepSORT / SORT for tracking.  Neither pixels nor GPUs are available in
this reproduction, so the substrate instead degrades the simulator's perfect
ground truth the way a real detector would (missed detections, localisation
noise, spurious detections) and re-links the degraded detections with a
greedy IoU tracker exposing the same hyperparameters the paper tunes
(Appendix A).
"""

from repro.cv.detector import Detection, DetectionBatch, DetectorConfig, SyntheticDetector
from repro.cv.tracker import IoUTracker, Track, TrackerConfig, TrackView, track_frames
from repro.cv.duration import (
    DurationEstimate,
    estimate_durations,
    estimate_max_duration,
    persistence_distribution,
)
from repro.cv.tuning import TuningResult, tune_tracker

__all__ = [
    "Detection",
    "DetectionBatch",
    "DetectorConfig",
    "SyntheticDetector",
    "IoUTracker",
    "Track",
    "TrackView",
    "TrackerConfig",
    "track_frames",
    "DurationEstimate",
    "estimate_durations",
    "estimate_max_duration",
    "persistence_distribution",
    "TuningResult",
    "tune_tracker",
]
