"""Greedy IoU multi-object tracker (stand-in for SORT / DeepSORT).

The tracker links per-frame detections into tracks by greedily matching each
detection to the existing track whose last box has the highest IoU above a
threshold.  It exposes the hyperparameters the paper tunes in Appendix A:

* ``max_age`` — number of consecutive frames a track survives without a match
  before it is terminated (gap bridging);
* ``min_hits`` — matches required before a track is *confirmed* (reported);
* ``iou_threshold`` — minimum IoU for a detection/track association.

Like the real trackers, the combination of gap bridging and greedy
association can merge distinct objects that pass through the same area into
one long track, which is precisely why CV-estimated maximum durations are
*conservative over-estimates* of the ground truth (Table 1).

Matching is computed against per-step candidate arrays: each step snapshots
the active tracks' (possibly motion-predicted) reference boxes once, then
either runs an allocation-free scalar loop (typical frames carry a handful of
detections) or computes the full detection x track IoU matrix with numpy when
the pair count is large.  Both paths apply the same greedy policy — highest
confidence first, ties broken towards the later candidate — and produce
identical associations.

Two tracker cores share that policy:

* the scalar :meth:`IoUTracker.step` consumes one frame's ``Detection`` list
  at a time and keeps classic ``Track`` objects (the reference twin);
* the batch :meth:`IoUTracker.step_batch` advances a whole chunk's
  :class:`~repro.cv.detector.DetectionBatch` with row-indexed columnar track
  state — track/category ids in preallocated numpy arrays, the matching-hot
  box/velocity scalars and miss counters in parallel row lists with a
  bounded velocity window per row — and detection data read from the batch
  columns, materialising Python objects only at API boundaries
  (:class:`TrackView` / :meth:`IoUTracker.finalize`).

The two cores apply the identical matching order, arithmetic and tie-breaks,
and are asserted bit-identical by the parity tests.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.cv.detector import Detection, DetectionBatch
from repro.video.geometry import BoundingBox

#: Steps whose detections x candidates pair count reaches this size compute
#: the IoU matrix with numpy; smaller steps use the scalar loop.
VECTOR_MATCH_MIN_PAIRS = 64


@dataclass(frozen=True)
class TrackerConfig:
    """Hyperparameters of the greedy IoU tracker.

    ``use_motion_prediction`` enables a constant-velocity extrapolation of
    each track's box while it is unmatched, mirroring the Kalman prediction
    step of SORT/DeepSORT; without it, fast-moving objects with detection
    gaps fragment into many short tracks.
    """

    max_age: int = 30
    min_hits: int = 3
    iou_threshold: float = 0.3
    per_category: bool = True
    use_motion_prediction: bool = True

    def __post_init__(self) -> None:
        if self.max_age < 0:
            raise ValueError("max_age must be non-negative")
        if self.min_hits < 1:
            raise ValueError("min_hits must be at least 1")
        if not 0.0 <= self.iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be within [0, 1]")


@dataclass(slots=True)
class Track:
    """A sequence of detections the tracker believes belong to one object.

    Slotted: tracks are materialised per chunk at the batch-core API
    boundary, so the per-instance footprint matters.
    """

    track_id: int
    category: str
    observations: list[Detection] = field(default_factory=list)
    misses: int = 0
    #: Matching cache maintained by :meth:`_rebuild_motion_cache`; keyed on
    #: the observation count, so only count-changing edits (the tracker's
    #: appends) invalidate it — same-length in-place replacement of
    #: observations mid-tracking is unsupported.
    _motion_cache: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def hits(self) -> int:
        """Number of matched detections."""
        return len(self.observations)

    @property
    def first_timestamp(self) -> float:
        """Timestamp of the first matched detection."""
        return self.observations[0].timestamp

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the most recent matched detection."""
        return self.observations[-1].timestamp

    @property
    def duration(self) -> float:
        """Observed persistence of the track in seconds."""
        if not self.observations:
            return 0.0
        return self.last_timestamp - self.first_timestamp

    @property
    def first_box(self) -> BoundingBox:
        """Bounding box of the first matched detection."""
        return self.observations[0].box

    @property
    def last_box(self) -> BoundingBox:
        """Bounding box of the most recent matched detection."""
        return self.observations[-1].box

    #: Velocity is estimated over (up to) this many recent observations.
    #: A longer baseline averages out localisation jitter the way SORT's
    #: Kalman filter does — a two-point estimate amplifies per-box jitter
    #: into large extrapolation errors across long detection gaps.
    VELOCITY_WINDOW = 5

    def predicted_box(self, frames_ahead: int) -> BoundingBox:
        """Constant-velocity extrapolation of the track's box.

        The per-frame velocity is estimated across the last few matched
        detections (normalised by the frame span between them) and projected
        ``frames_ahead`` frames past the last detection — the same role the
        Kalman prediction step plays in SORT.
        """
        if len(self.observations) < 2 or frames_ahead <= 0:
            return self.last_box
        baseline = self.observations[-min(len(self.observations), self.VELOCITY_WINDOW)]
        last = self.observations[-1]
        frame_gap = max(1, last.frame_index - baseline.frame_index)
        vx = (last.box.x - baseline.box.x) / frame_gap
        vy = (last.box.y - baseline.box.y) / frame_gap
        return last.box.translate(vx * frames_ahead, vy * frames_ahead)

    def _reference_bounds(self, frame_index: int, use_motion: bool
                          ) -> tuple[float, float, float, float, float]:
        """Reference box for matching as ``(x1, y1, x2, y2, area)`` floats.

        Equivalent to ``predicted_box(...)`` (same arithmetic, same results)
        but works from the cached motion state so the hot path avoids
        materialising a :class:`BoundingBox` per candidate per step.
        """
        cache = self._motion_cache
        if cache is None or cache[0] != len(self.observations):
            cache = self._rebuild_motion_cache()
        _, x, y, width, height, area, last_frame, vx, vy = cache
        if use_motion and vx is not None:
            frames_ahead = frame_index - last_frame
            if frames_ahead > 0:
                x = x + vx * frames_ahead
                y = y + vy * frames_ahead
        return x, y, x + width, y + height, area

    def _rebuild_motion_cache(self) -> tuple:
        """Recompute the matching cache from the observation list.

        The cache holds ``(num_observations, x, y, width, height, area,
        last_frame_index, vx, vy)``; ``vx``/``vy`` are None until the track
        has two observations.  It is keyed on the observation count, so
        appends (and other length-changing edits) are picked up
        transparently; same-length in-place replacement is not.
        """
        observations = self.observations
        last = observations[-1]
        box = last.box
        vx = vy = None
        if len(observations) >= 2:
            baseline = observations[-min(len(observations), self.VELOCITY_WINDOW)]
            frame_gap = max(1, last.frame_index - baseline.frame_index)
            vx = (box.x - baseline.box.x) / frame_gap
            vy = (box.y - baseline.box.y) / frame_gap
        cache = (len(observations), box.x, box.y, box.width, box.height,
                 box.width * box.height, last.frame_index, vx, vy)
        self._motion_cache = cache
        return cache

    def attribute_values(self, key: str) -> list[Any]:
        """All observed values of an attribute across the track."""
        values = []
        for detection in self.observations:
            if key in detection.attributes:
                values.append(detection.attributes[key])
        return values

    def majority_attribute(self, key: str, default: Any = None) -> Any:
        """Most frequently observed value of an attribute (ties broken arbitrarily)."""
        values = self.attribute_values(key)
        if not values:
            return default
        return Counter(values).most_common(1)[0][0]

    def is_confirmed(self, min_hits: int) -> bool:
        """True once the track has accumulated at least ``min_hits`` detections."""
        return self.hits >= min_hits


class _BatchTrackerCore:
    """Columnar twin of the scalar tracker loop.

    Track state is row-indexed and columnar: track/category ids live in
    preallocated, capacity-doubling numpy arrays, while the matching-hot
    per-row state — last box, its area, last frame index, the smoothed
    velocity, and the miss counter — lives in parallel row lists with the
    velocity window as a bounded ring per row (hit counts are the lengths
    of the per-row detection-id lists).  Python-scalar rows beat numpy
    element indexing by ~10x for the sequential greedy loop (typical frames
    carry 1-3 candidates); wide frames still vectorize, computing the
    detections x candidates IoU matrix from the same per-frame reference
    tuples the scalar core builds.

    Detections are read straight from
    :class:`~repro.cv.detector.DetectionBatch` columns; per-frame matching
    applies exactly the scalar core's policy (confidence-descending stable
    order, greedy best-IoU-at-least-threshold with ties to the later
    candidate, per-category matching, constant-velocity prediction while
    unmatched) so associations — and therefore tracks — are bit-identical.
    """

    #: Row-state slots: x, y, width, height, area, last frame index,
    #: velocity x (None until two observations), velocity y.
    _X, _Y, _W, _H, _AREA, _FRAME, _VX, _VY = range(8)

    def __init__(self, config: TrackerConfig, next_id: int = 0) -> None:
        self.config = config
        self.next_id = next_id
        self.track_id: list[int] = []
        self.category_id: list[int] = []
        #: Matching-hot per-row scalars (see the slot constants above).
        self.row_state: list[list[Any]] = []
        #: Per-row consecutive-miss counters (reset on every match).
        self.misses: list[int] = []
        #: Per-row velocity window: the last ``Track.VELOCITY_WINDOW``
        #: observations as (x, y, frame_index) tuples, oldest first.
        self.rings: list[deque[tuple[float, float, int]]] = []
        #: Per-track detection ids (offsets into the consumed batches);
        #: a track's hit count is the length of its list.
        self.det_indices: list[list[int]] = []
        self.active: list[int] = []
        #: Category ids parallel to ``active`` (avoids per-frame rebuilds).
        self.active_categories: list[int] = []
        self.finished: list[int] = []
        self.num_rows = 0
        self.categories: list[str] = []
        self._category_ids: dict[str, int] = {}
        self.batches: list[DetectionBatch] = []
        self.offsets: list[int] = []
        self._total_detections = 0

    # ------------------------------------------------------------ bookkeeping

    def _core_category(self, label: str) -> int:
        identifier = self._category_ids.get(label)
        if identifier is None:
            identifier = len(self.categories)
            self._category_ids[label] = identifier
            self.categories.append(label)
        return identifier

    def hit_count(self, row: int) -> int:
        """Number of matched detections of one track row."""
        return len(self.det_indices[row])

    def resolve(self, detection_id: int) -> tuple[DetectionBatch, int]:
        """Map a core-global detection id back to its (batch, local index)."""
        if len(self.batches) == 1:
            return self.batches[0], detection_id
        position = bisect_right(self.offsets, detection_id) - 1
        return self.batches[position], detection_id - self.offsets[position]

    # ---------------------------------------------------------------- updates

    def _new_track(self, detection_id: int, category: int, x: float, y: float,
                   width: float, height: float, frame_index: int) -> int:
        row = self.num_rows
        self.num_rows += 1
        self.det_indices.append([detection_id])
        self.row_state.append([x, y, width, height, width * height,
                               frame_index, None, 0.0])
        self.rings.append(deque([(x, y, frame_index)],
                                maxlen=Track.VELOCITY_WINDOW))
        self.misses.append(0)
        self.track_id.append(self.next_id)
        self.next_id += 1
        self.category_id.append(category)
        return row

    def _expire(self) -> None:
        """Move tracks whose misses exceeded max_age to the finished list.

        Same sweep as the scalar core: the active list is filtered in order,
        so finished tracks are appended in active-list order.
        """
        max_age = self.config.max_age
        misses = self.misses
        still_active: list[int] = []
        still_categories: list[int] = []
        for row, category in zip(self.active, self.active_categories):
            if misses[row] > max_age:
                self.finished.append(row)
            else:
                still_active.append(row)
                still_categories.append(category)
        self.active = still_active
        self.active_categories = still_categories

    def _miss_step(self) -> None:
        """Advance one frame with no matched detections (all candidates miss)."""
        active = self.active
        if not active:
            return
        max_age = self.config.max_age
        misses = self.misses
        expired = False
        for row in active:
            count = misses[row] + 1
            misses[row] = count
            if count > max_age:
                expired = True
        if expired:
            self._expire()

    # --------------------------------------------------------------- matching

    def step_batch(self, batch: DetectionBatch) -> None:
        """Advance the tracker over every frame of one detection batch."""
        self.batches.append(batch)
        self.offsets.append(self._total_detections)
        offset = self._total_detections
        self._total_detections += len(batch)
        num_frames = batch.num_frames
        if num_frames == 0:
            return
        total = len(batch)
        config = self.config
        threshold = config.iou_threshold
        per_category = config.per_category
        use_motion = config.use_motion_prediction
        max_age = config.max_age
        if total:
            positions = batch.frame_positions
            # Frame-major, confidence-descending stable order — the batched
            # equivalent of the scalar per-step sort.  lexsort is stable, so
            # fully-tied entries keep storage order, which *is* the scalar
            # within-frame emission order (DetectionBatch storage contract).
            order = np.lexsort((-batch.confidences, positions))
            # boundaries[f] = number of detections in frames before f — the
            # per-frame slice bounds of the ordered arrays.
            boundaries = np.zeros(num_frames + 1, dtype=np.int64)
            np.cumsum(np.bincount(positions, minlength=num_frames),
                      out=boundaries[1:])
            boundaries_list = boundaries.tolist()
            boxes = batch.boxes[order]
            boxes_list = boxes.tolist()
            frame_index_list = batch.frame_indices[order].tolist()
            batch_to_core = [self._core_category(label) for label in batch.categories]
            if len(batch_to_core) == 1:
                category_list = batch_to_core * total
            else:
                category_list = [batch_to_core[identifier]
                                 for identifier in batch.category_ids[order].tolist()]
            order_list = order.tolist()
            detection_ids = order_list if offset == 0 \
                else [offset + index for index in order_list]
        else:
            boundaries_list = [0] * (num_frames + 1)
        row_state = self.row_state
        rings = self.rings
        det_lists = self.det_indices
        misses = self.misses
        start = 0
        for frame in range(num_frames):
            end = boundaries_list[frame + 1]
            if start == end:
                self._miss_step()
                continue
            frame_index = frame_index_list[start]
            active = self.active
            num_candidates = len(active)
            if num_candidates == 0:
                # Fast path: no candidates — every detection opens a track.
                for position in range(start, end):
                    x, y, width, height = boxes_list[position]
                    active.append(self._new_track(
                        detection_ids[position], category_list[position],
                        x, y, width, height, frame_index))
                    self.active_categories.append(category_list[position])
                start = end
                continue
            if end == start + 1 and num_candidates < VECTOR_MATCH_MIN_PAIRS:
                # Fast path: one detection this frame — references fuse into
                # the candidate loop (no reuse possible), no matched flags or
                # new-track lists are needed, and the greedy policy reduces
                # to a plain best-IoU scan with the same arithmetic and
                # later-candidate tie-break as the general loop below.
                position = start
                detection_category = category_list[position]
                det_x1, det_y1, det_width, det_height = boxes_list[position]
                det_x2 = det_x1 + det_width
                det_y2 = det_y1 + det_height
                det_area = det_width * det_height
                active_categories = self.active_categories
                best = -1
                best_iou = threshold
                for index in range(num_candidates):
                    if per_category \
                            and active_categories[index] != detection_category:
                        continue
                    state = row_state[active[index]]
                    x = state[0]
                    y = state[1]
                    vx = state[6]
                    if use_motion and vx is not None:
                        frames_ahead = frame_index - state[5]
                        if frames_ahead > 0:
                            x = x + vx * frames_ahead
                            y = y + state[7] * frames_ahead
                    ref_x2 = x + state[2]
                    ref_y2 = y + state[3]
                    left = det_x1 if det_x1 > x else x
                    right = det_x2 if det_x2 < ref_x2 else ref_x2
                    top = det_y1 if det_y1 > y else y
                    bottom = det_y2 if det_y2 < ref_y2 else ref_y2
                    if right > left and bottom > top:
                        intersection = (right - left) * (bottom - top)
                        union = det_area + state[4] - intersection
                        iou = intersection / union if union > 0 else 0.0
                    else:
                        iou = 0.0
                    if iou >= best_iou:
                        best_iou = iou
                        best = index
                expired = False
                if best >= 0:
                    row = active[best]
                    ring = rings[row]
                    ring.append((det_x1, det_y1, frame_index))
                    state = row_state[row]
                    if len(ring) >= 2:
                        baseline_x, baseline_y, baseline_frame = ring[0]
                        frame_gap = frame_index - baseline_frame
                        if frame_gap < 1:
                            frame_gap = 1
                        state[6] = (det_x1 - baseline_x) / frame_gap
                        state[7] = (det_y1 - baseline_y) / frame_gap
                    state[0] = det_x1
                    state[1] = det_y1
                    state[2] = det_width
                    state[3] = det_height
                    state[4] = det_area
                    state[5] = frame_index
                    misses[row] = 0
                    det_lists[row].append(detection_ids[position])
                    if num_candidates > 1:
                        for index in range(num_candidates):
                            if index != best:
                                other = active[index]
                                count = misses[other] + 1
                                misses[other] = count
                                if count > max_age:
                                    expired = True
                else:
                    new_row = self._new_track(
                        detection_ids[position], detection_category,
                        det_x1, det_y1, det_width, det_height, frame_index)
                    for index in range(num_candidates):
                        other = active[index]
                        count = misses[other] + 1
                        misses[other] = count
                        if count > max_age:
                            expired = True
                    active.append(new_row)
                    active_categories.append(detection_category)
                if expired:
                    self._expire()
                start = end
                continue
            matched = [False] * num_candidates
            new_rows: list[int] = []
            new_categories: list[int] = []
            iou_matrix = None
            references: list[tuple[float, float, float, float, float]] = []
            candidate_categories = self.active_categories if per_category else None
            if num_candidates:
                # Reference bounds are computed scalar-wise exactly like the
                # scalar core's _reference_bounds (same arithmetic, same
                # motion-prediction condition) — the wide path below then
                # vectorizes only the IoU matrix over them.
                for row in active:
                    state = row_state[row]
                    x = state[0]
                    y = state[1]
                    vx = state[6]
                    if use_motion and vx is not None:
                        frames_ahead = frame_index - state[5]
                        if frames_ahead > 0:
                            x = x + vx * frames_ahead
                            y = y + state[7] * frames_ahead
                    references.append((x, y, x + state[2], y + state[3], state[4]))
                if (end - start) * num_candidates >= VECTOR_MATCH_MIN_PAIRS:
                    det_x1 = boxes[start:end, 0:1]
                    det_y1 = boxes[start:end, 1:2]
                    det_x2 = det_x1 + boxes[start:end, 2:3]
                    det_y2 = det_y1 + boxes[start:end, 3:4]
                    det_area = boxes[start:end, 2:3] * boxes[start:end, 3:4]
                    ref = np.array(references, dtype=np.float64)
                    left = np.maximum(det_x1, ref[:, 0])
                    right = np.minimum(det_x2, ref[:, 2])
                    top = np.maximum(det_y1, ref[:, 1])
                    bottom = np.minimum(det_y2, ref[:, 3])
                    width = right - left
                    height = bottom - top
                    intersection = np.where((width > 0) & (height > 0),
                                            width * height, 0.0)
                    union = det_area + ref[:, 4] - intersection
                    with np.errstate(divide="ignore", invalid="ignore"):
                        iou_matrix = np.where(union > 0, intersection / union, 0.0)
            for position in range(start, end):
                best = -1
                best_iou = threshold
                detection_category = category_list[position]
                det_x1, det_y1, det_width, det_height = boxes_list[position]
                det_area = det_width * det_height
                if iou_matrix is not None:
                    row_ious = iou_matrix[position - start]
                    for index in range(num_candidates):
                        if matched[index]:
                            continue
                        if candidate_categories is not None \
                                and candidate_categories[index] != detection_category:
                            continue
                        iou = row_ious[index]
                        if iou >= best_iou:
                            best_iou = iou
                            best = index
                elif num_candidates:
                    det_x2 = det_x1 + det_width
                    det_y2 = det_y1 + det_height
                    for index in range(num_candidates):
                        if matched[index]:
                            continue
                        if candidate_categories is not None \
                                and candidate_categories[index] != detection_category:
                            continue
                        ref_x1, ref_y1, ref_x2, ref_y2, ref_area = references[index]
                        left = det_x1 if det_x1 > ref_x1 else ref_x1
                        right = det_x2 if det_x2 < ref_x2 else ref_x2
                        top = det_y1 if det_y1 > ref_y1 else ref_y1
                        bottom = det_y2 if det_y2 < ref_y2 else ref_y2
                        if right > left and bottom > top:
                            intersection = (right - left) * (bottom - top)
                            union = det_area + ref_area - intersection
                            iou = intersection / union if union > 0 else 0.0
                        else:
                            iou = 0.0
                        if iou >= best_iou:
                            best_iou = iou
                            best = index
                if best >= 0:
                    # Inlined observe: the single hottest code path — record
                    # the matched box, advance the velocity window (baseline
                    # = oldest ringed observation, frame gap clamped to >= 1,
                    # same IEEE ops as Track._rebuild_motion_cache), reset
                    # the miss counter.
                    row = active[best]
                    matched[best] = True
                    ring = rings[row]
                    ring.append((det_x1, det_y1, frame_index))
                    state = row_state[row]
                    if len(ring) >= 2:
                        baseline_x, baseline_y, baseline_frame = ring[0]
                        frame_gap = frame_index - baseline_frame
                        if frame_gap < 1:
                            frame_gap = 1
                        state[6] = (det_x1 - baseline_x) / frame_gap
                        state[7] = (det_y1 - baseline_y) / frame_gap
                    state[0] = det_x1
                    state[1] = det_y1
                    state[2] = det_width
                    state[3] = det_height
                    state[4] = det_area
                    state[5] = frame_index
                    misses[row] = 0
                    det_lists[row].append(detection_ids[position])
                else:
                    new_rows.append(self._new_track(
                        detection_ids[position], detection_category,
                        det_x1, det_y1, det_width, det_height,
                        frame_index))
                    new_categories.append(detection_category)
            expired = False
            for index in range(num_candidates):
                if not matched[index]:
                    row = active[index]
                    count = misses[row] + 1
                    misses[row] = count
                    if count > max_age:
                        expired = True
            if new_rows:
                self.active.extend(new_rows)
                self.active_categories.extend(new_categories)
            if expired:
                self._expire()
            start = end

    # -------------------------------------------------------------- finishing

    def confirmed_rows(self) -> list[int]:
        """Rows of every confirmed track, in finished-then-active order."""
        min_hits = self.config.min_hits
        det_indices = self.det_indices
        return [row for row in self.finished + self.active
                if len(det_indices[row]) >= min_hits]



class TrackView:
    """Columnar stand-in for a confirmed :class:`Track` (the batch boundary).

    Exposes the track surface the executables consume — endpoints, boxes,
    hit counts, majority attributes — straight from the batch columns, so a
    chunk's row emission materialises at most two :class:`BoundingBox`
    objects per track.  :meth:`to_track` is the full materialisation adapter
    (used by :meth:`IoUTracker.finalize` and the parity tests).
    """

    __slots__ = ("_core", "_row")

    def __init__(self, core: _BatchTrackerCore, row: int) -> None:
        self._core = core
        self._row = row

    @property
    def track_id(self) -> int:
        return self._core.track_id[self._row]

    @property
    def category(self) -> str:
        return self._core.categories[self._core.category_id[self._row]]

    @property
    def hits(self) -> int:
        """Number of matched detections."""
        return self._core.hit_count(self._row)

    @property
    def misses(self) -> int:
        return self._core.misses[self._row]

    def is_confirmed(self, min_hits: int) -> bool:
        """True once the track has accumulated at least ``min_hits`` detections."""
        return self.hits >= min_hits

    def _boundary(self, position: int) -> tuple[DetectionBatch, int]:
        detection_id = self._core.det_indices[self._row][position]
        return self._core.resolve(detection_id)

    @property
    def first_timestamp(self) -> float:
        """Timestamp of the first matched detection."""
        batch, index = self._boundary(0)
        return float(batch.timestamps[index])

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the most recent matched detection."""
        batch, index = self._boundary(-1)
        return float(batch.timestamps[index])

    @property
    def duration(self) -> float:
        """Observed persistence of the track in seconds."""
        return self.last_timestamp - self.first_timestamp

    @property
    def first_box(self) -> BoundingBox:
        """Bounding box of the first matched detection."""
        batch, index = self._boundary(0)
        x, y, width, height = batch.boxes[index].tolist()
        return BoundingBox(x, y, width, height)

    @property
    def last_box(self) -> BoundingBox:
        """Bounding box of the most recent matched detection."""
        batch, index = self._boundary(-1)
        x, y, width, height = batch.boxes[index].tolist()
        return BoundingBox(x, y, width, height)

    def attribute_values(self, key: str) -> list[Any]:
        """All observed values of an attribute across the track."""
        values: list[Any] = []
        for detection_id in self._core.det_indices[self._row]:
            batch, index = self._core.resolve(detection_id)
            column = batch.attributes.get(key)
            if column is not None and column[0][index]:
                values.append(column[1][index])
        return values

    def majority_attribute(self, key: str, default: Any = None) -> Any:
        """Most frequently observed value of an attribute (ties broken arbitrarily)."""
        values = self.attribute_values(key)
        if not values:
            return default
        return Counter(values).most_common(1)[0][0]

    @property
    def observations(self) -> list[Detection]:
        """The track's detections, materialised from the batch columns.

        Full materialisation — row emission should prefer the columnar
        accessors above; this exists for the ``Track`` API surface.
        """
        core = self._core
        observations: list[Detection] = []
        for detection_id in core.det_indices[self._row]:
            batch, index = core.resolve(detection_id)
            observations.append(batch.detection_at(index))
        return observations

    def to_track(self) -> Track:
        """Materialise the classic :class:`Track` (observations included)."""
        return Track(track_id=self.track_id, category=self.category,
                     observations=self.observations, misses=self.misses)


class IoUTracker:
    """Online greedy IoU tracker over a stream of per-frame detections.

    A tracker instance runs in one of two modes: scalar (:meth:`step`, one
    frame's ``Detection`` list at a time) or batch (:meth:`step_batch`, a
    whole chunk's :class:`~repro.cv.detector.DetectionBatch`).  The modes
    produce bit-identical tracks but cannot be mixed on one instance.
    """

    def __init__(self, config: TrackerConfig | None = None) -> None:
        self.config = config or TrackerConfig()
        self._active: list[Track] = []
        self._finished: list[Track] = []
        self._next_id = 0
        self._core: _BatchTrackerCore | None = None

    @staticmethod
    def _iou_matrix(ordered: list[Detection],
                    references: list[tuple[float, float, float, float, float]]
                    ) -> np.ndarray:
        """Detections x candidates IoU matrix (vectorized wide-step path)."""
        det = np.array([[d.box.x, d.box.y, d.box.width, d.box.height] for d in ordered],
                       dtype=np.float64)
        ref = np.array(references, dtype=np.float64)
        det_x1 = det[:, 0:1]
        det_y1 = det[:, 1:2]
        det_x2 = det_x1 + det[:, 2:3]
        det_y2 = det_y1 + det[:, 3:4]
        det_area = det[:, 2:3] * det[:, 3:4]
        left = np.maximum(det_x1, ref[:, 0])
        right = np.minimum(det_x2, ref[:, 2])
        top = np.maximum(det_y1, ref[:, 1])
        bottom = np.minimum(det_y2, ref[:, 3])
        width = right - left
        height = bottom - top
        intersection = np.where((width > 0) & (height > 0), width * height, 0.0)
        union = det_area + ref[:, 4] - intersection
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(union > 0, intersection / union, 0.0)

    def step(self, detections: Sequence[Detection]) -> None:
        """Consume the detections of one frame (frames must arrive in time order)."""
        if self._core is not None:
            raise RuntimeError("tracker already advanced in batch mode; "
                               "scalar step() cannot be mixed with step_batch()")
        config = self.config
        candidates = self._active
        num_candidates = len(candidates)
        matched = [False] * num_candidates
        if detections:
            # A step normally carries one frame's detections, so each
            # candidate's (motion-predicted) reference box is computed
            # exactly once; mixed-frame steps (allowed by the signature)
            # fall back to per-detection prediction below.
            frame_index = detections[0].frame_index
            mixed_frames = any(det.frame_index != frame_index for det in detections)
            use_motion = config.use_motion_prediction
            references = [track._reference_bounds(frame_index, use_motion)
                          for track in candidates]
            categories = [track.category for track in candidates] \
                if config.per_category else None
            ordered = sorted(detections, key=lambda det: -det.confidence) \
                if len(detections) > 1 else list(detections)
            iou_matrix = None
            if num_candidates and not mixed_frames \
                    and len(ordered) * num_candidates >= VECTOR_MATCH_MIN_PAIRS:
                iou_matrix = self._iou_matrix(ordered, references)
            threshold = config.iou_threshold
            new_tracks: list[Track] = []
            for det_index, detection in enumerate(ordered):
                best = -1
                best_iou = threshold
                if iou_matrix is not None:
                    row = iou_matrix[det_index]
                    for index in range(num_candidates):
                        if matched[index]:
                            continue
                        if categories is not None and categories[index] != detection.category:
                            continue
                        iou = row[index]
                        if iou >= best_iou:
                            best_iou = iou
                            best = index
                else:
                    box = detection.box
                    det_x1 = box.x
                    det_y1 = box.y
                    det_x2 = det_x1 + box.width
                    det_y2 = det_y1 + box.height
                    det_area = box.width * box.height
                    for index in range(num_candidates):
                        if matched[index]:
                            continue
                        if categories is not None and categories[index] != detection.category:
                            continue
                        if mixed_frames and detection.frame_index != frame_index:
                            reference = candidates[index]._reference_bounds(
                                detection.frame_index, use_motion)
                        else:
                            reference = references[index]
                        ref_x1, ref_y1, ref_x2, ref_y2, ref_area = reference
                        left = det_x1 if det_x1 > ref_x1 else ref_x1
                        right = det_x2 if det_x2 < ref_x2 else ref_x2
                        top = det_y1 if det_y1 > ref_y1 else ref_y1
                        bottom = det_y2 if det_y2 < ref_y2 else ref_y2
                        if right > left and bottom > top:
                            intersection = (right - left) * (bottom - top)
                            union = det_area + ref_area - intersection
                            iou = intersection / union if union > 0 else 0.0
                        else:
                            iou = 0.0
                        if iou >= best_iou:
                            best_iou = iou
                            best = index
                if best >= 0:
                    track = candidates[best]
                    track.observations.append(detection)
                    track.misses = 0
                    matched[best] = True
                else:
                    new_tracks.append(Track(track_id=self._next_id,
                                            category=detection.category,
                                            observations=[detection]))
                    self._next_id += 1
            if new_tracks:
                self._active.extend(new_tracks)
        max_age = config.max_age
        expired = False
        for index in range(num_candidates):
            if not matched[index]:
                track = candidates[index]
                track.misses += 1
                if track.misses > max_age:
                    expired = True
        if expired:
            still_active: list[Track] = []
            for track in self._active:
                if track.misses > max_age:
                    self._finished.append(track)
                else:
                    still_active.append(track)
            self._active = still_active

    def step_batch(self, batch: DetectionBatch) -> None:
        """Consume a whole chunk's detections at once (the columnar core).

        Bit-identical to calling :meth:`step` with each frame's detection
        list of ``batch.per_frame_detections()`` in order — including frames
        with no detections, which age unmatched tracks exactly as empty
        scalar steps do.
        """
        if self._active or self._finished:
            raise RuntimeError("tracker already advanced in scalar mode; "
                               "step_batch() cannot be mixed with step()")
        if self._core is None:
            self._core = _BatchTrackerCore(self.config, next_id=self._next_id)
        self._core.step_batch(batch)

    def finalize_views(self) -> list[TrackView]:
        """Flush the batch core and return every confirmed track as a view.

        The cheap API boundary of the columnar pipeline: row emission reads
        track endpoints and attribute majorities straight from the batch
        columns instead of materialised ``Detection`` lists.  Only valid in
        batch mode (after :meth:`step_batch`); an unused tracker returns [].
        """
        core = self._core
        if core is None:
            if self._active or self._finished:
                raise RuntimeError("finalize_views() requires batch mode; "
                                   "use finalize() after scalar step()")
            return []
        self._core = None
        self._next_id = core.next_id
        return [TrackView(core, row) for row in core.confirmed_rows()]

    def finalize(self) -> list[Track]:
        """Flush remaining active tracks and return every *confirmed* track."""
        if self._core is not None:
            return [view.to_track() for view in self.finalize_views()]
        all_tracks = self._finished + self._active
        self._finished = []
        self._active = []
        return [track for track in all_tracks if track.is_confirmed(self.config.min_hits)]


def track_frames(frames_with_detections: Iterable[tuple[Any, Sequence[Detection]]],
                 config: TrackerConfig | None = None) -> list[Track]:
    """Run the tracker over ``(frame, detections)`` pairs and return confirmed tracks."""
    tracker = IoUTracker(config)
    for _frame, detections in frames_with_detections:
        tracker.step(detections)
    return tracker.finalize()


def track_detection_stream(detections_by_frame: Iterable[Sequence[Detection]],
                           config: TrackerConfig | None = None) -> list[Track]:
    """Run the tracker over a bare stream of per-frame detection lists."""
    tracker = IoUTracker(config)
    for detections in detections_by_frame:
        tracker.step(detections)
    return tracker.finalize()
