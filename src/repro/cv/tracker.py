"""Greedy IoU multi-object tracker (stand-in for SORT / DeepSORT).

The tracker links per-frame detections into tracks by greedily matching each
detection to the existing track whose last box has the highest IoU above a
threshold.  It exposes the hyperparameters the paper tunes in Appendix A:

* ``max_age`` — number of consecutive frames a track survives without a match
  before it is terminated (gap bridging);
* ``min_hits`` — matches required before a track is *confirmed* (reported);
* ``iou_threshold`` — minimum IoU for a detection/track association.

Like the real trackers, the combination of gap bridging and greedy
association can merge distinct objects that pass through the same area into
one long track, which is precisely why CV-estimated maximum durations are
*conservative over-estimates* of the ground truth (Table 1).

Matching is computed against per-step candidate arrays: each step snapshots
the active tracks' (possibly motion-predicted) reference boxes once, then
either runs an allocation-free scalar loop (typical frames carry a handful of
detections) or computes the full detection x track IoU matrix with numpy when
the pair count is large.  Both paths apply the same greedy policy — highest
confidence first, ties broken towards the later candidate — and produce
identical associations.

Two tracker cores share that policy:

* the scalar :meth:`IoUTracker.step` consumes one frame's ``Detection`` list
  at a time and keeps classic ``Track`` objects (the reference twin);
* the batch :meth:`IoUTracker.step_batch` advances a whole chunk's
  :class:`~repro.cv.detector.DetectionBatch` with row-indexed columnar track
  state — track/category ids in preallocated numpy arrays, the matching-hot
  box/velocity scalars and miss counters in parallel row lists with a
  bounded velocity window per row — and detection data read from the batch
  columns, materialising Python objects only at API boundaries
  (:class:`TrackView` / :meth:`IoUTracker.finalize`).

The two cores apply the identical matching order, arithmetic and tie-breaks,
and are asserted bit-identical by the parity tests.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.cv.detector import Detection, DetectionBatch
from repro.video.geometry import BoundingBox

#: Steps whose detections x candidates pair count reaches this size compute
#: the IoU matrix with numpy; smaller steps use the scalar loop.
VECTOR_MATCH_MIN_PAIRS = 64


@dataclass(frozen=True)
class TrackerConfig:
    """Hyperparameters of the greedy IoU tracker.

    ``use_motion_prediction`` enables a constant-velocity extrapolation of
    each track's box while it is unmatched, mirroring the Kalman prediction
    step of SORT/DeepSORT; without it, fast-moving objects with detection
    gaps fragment into many short tracks.
    """

    max_age: int = 30
    min_hits: int = 3
    iou_threshold: float = 0.3
    per_category: bool = True
    use_motion_prediction: bool = True

    def __post_init__(self) -> None:
        if self.max_age < 0:
            raise ValueError("max_age must be non-negative")
        if self.min_hits < 1:
            raise ValueError("min_hits must be at least 1")
        if not 0.0 <= self.iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be within [0, 1]")


@dataclass(slots=True)
class Track:
    """A sequence of detections the tracker believes belong to one object.

    Slotted: tracks are materialised per chunk at the batch-core API
    boundary, so the per-instance footprint matters.
    """

    track_id: int
    category: str
    observations: list[Detection] = field(default_factory=list)
    misses: int = 0
    #: Matching cache maintained by :meth:`_rebuild_motion_cache`; keyed on
    #: the observation count, so only count-changing edits (the tracker's
    #: appends) invalidate it — same-length in-place replacement of
    #: observations mid-tracking is unsupported.
    _motion_cache: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def hits(self) -> int:
        """Number of matched detections."""
        return len(self.observations)

    @property
    def first_timestamp(self) -> float:
        """Timestamp of the first matched detection."""
        return self.observations[0].timestamp

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the most recent matched detection."""
        return self.observations[-1].timestamp

    @property
    def duration(self) -> float:
        """Observed persistence of the track in seconds."""
        if not self.observations:
            return 0.0
        return self.last_timestamp - self.first_timestamp

    @property
    def first_box(self) -> BoundingBox:
        """Bounding box of the first matched detection."""
        return self.observations[0].box

    @property
    def last_box(self) -> BoundingBox:
        """Bounding box of the most recent matched detection."""
        return self.observations[-1].box

    #: Velocity is estimated over (up to) this many recent observations.
    #: A longer baseline averages out localisation jitter the way SORT's
    #: Kalman filter does — a two-point estimate amplifies per-box jitter
    #: into large extrapolation errors across long detection gaps.
    VELOCITY_WINDOW = 5

    def predicted_box(self, frames_ahead: int) -> BoundingBox:
        """Constant-velocity extrapolation of the track's box.

        The per-frame velocity is estimated across the last few matched
        detections (normalised by the frame span between them) and projected
        ``frames_ahead`` frames past the last detection — the same role the
        Kalman prediction step plays in SORT.
        """
        if len(self.observations) < 2 or frames_ahead <= 0:
            return self.last_box
        baseline = self.observations[-min(len(self.observations), self.VELOCITY_WINDOW)]
        last = self.observations[-1]
        frame_gap = max(1, last.frame_index - baseline.frame_index)
        vx = (last.box.x - baseline.box.x) / frame_gap
        vy = (last.box.y - baseline.box.y) / frame_gap
        return last.box.translate(vx * frames_ahead, vy * frames_ahead)

    def _reference_bounds(self, frame_index: int, use_motion: bool
                          ) -> tuple[float, float, float, float, float]:
        """Reference box for matching as ``(x1, y1, x2, y2, area)`` floats.

        Equivalent to ``predicted_box(...)`` (same arithmetic, same results)
        but works from the cached motion state so the hot path avoids
        materialising a :class:`BoundingBox` per candidate per step.
        """
        cache = self._motion_cache
        if cache is None or cache[0] != len(self.observations):
            cache = self._rebuild_motion_cache()
        _, x, y, width, height, area, last_frame, vx, vy = cache
        if use_motion and vx is not None:
            frames_ahead = frame_index - last_frame
            if frames_ahead > 0:
                x = x + vx * frames_ahead
                y = y + vy * frames_ahead
        return x, y, x + width, y + height, area

    def _rebuild_motion_cache(self) -> tuple:
        """Recompute the matching cache from the observation list.

        The cache holds ``(num_observations, x, y, width, height, area,
        last_frame_index, vx, vy)``; ``vx``/``vy`` are None until the track
        has two observations.  It is keyed on the observation count, so
        appends (and other length-changing edits) are picked up
        transparently; same-length in-place replacement is not.
        """
        observations = self.observations
        last = observations[-1]
        box = last.box
        vx = vy = None
        if len(observations) >= 2:
            baseline = observations[-min(len(observations), self.VELOCITY_WINDOW)]
            frame_gap = max(1, last.frame_index - baseline.frame_index)
            vx = (box.x - baseline.box.x) / frame_gap
            vy = (box.y - baseline.box.y) / frame_gap
        cache = (len(observations), box.x, box.y, box.width, box.height,
                 box.width * box.height, last.frame_index, vx, vy)
        self._motion_cache = cache
        return cache

    def attribute_values(self, key: str) -> list[Any]:
        """All observed values of an attribute across the track."""
        values = []
        for detection in self.observations:
            if key in detection.attributes:
                values.append(detection.attributes[key])
        return values

    def majority_attribute(self, key: str, default: Any = None) -> Any:
        """Most frequently observed value of an attribute (ties broken arbitrarily)."""
        values = self.attribute_values(key)
        if not values:
            return default
        return Counter(values).most_common(1)[0][0]

    def is_confirmed(self, min_hits: int) -> bool:
        """True once the track has accumulated at least ``min_hits`` detections."""
        return self.hits >= min_hits


#: Shared zero-capacity column placeholders: every core starts with these
#: (no per-instance allocation) and swaps in real arrays on first _grow.
_EMPTY_STATE_COL = np.empty((0, 8), dtype=np.float64)
_EMPTY_RING_COL = np.empty((0, 5, 3), dtype=np.float64)
_EMPTY_INT_COL = np.empty(0, dtype=np.int64)


class _BatchTrackerCore:
    """Columnar twin of the scalar tracker loop.

    Track state is row-indexed and columnar: track/category ids live in
    preallocated, capacity-doubling numpy arrays, while the matching-hot
    per-row state — last box, its area, last frame index, the smoothed
    velocity, and the miss counter — lives in parallel row lists with the
    velocity window as a bounded ring per row (hit counts are the lengths
    of the per-row detection-id lists).  Python-scalar rows beat numpy
    element indexing by ~10x for the sequential greedy loop (typical frames
    carry 1-3 candidates); wide frames still vectorize, computing the
    detections x candidates IoU matrix from the same per-frame reference
    tuples the scalar core builds.

    Detections are read straight from
    :class:`~repro.cv.detector.DetectionBatch` columns; per-frame matching
    applies exactly the scalar core's policy (confidence-descending stable
    order, greedy best-IoU-at-least-threshold with ties to the later
    candidate, per-category matching, constant-velocity prediction while
    unmatched) so associations — and therefore tracks — are bit-identical.
    """

    #: Row-state slots: x, y, width, height, area, last frame index,
    #: velocity x (None until two observations), velocity y.
    _X, _Y, _W, _H, _AREA, _FRAME, _VX, _VY = range(8)

    def __init__(self, config: TrackerConfig, next_id: int = 0) -> None:
        self.config = config
        self.next_id = next_id
        self.track_id: list[int] = []
        self.category_id: list[int] = []
        #: Persistent track-state columns (see the slot constants above):
        #: one row per track ever created, capacity grown geometrically.
        #: ``state_col`` holds the matching-hot scalars, ``ring_col`` /
        #: ``ring_fill`` the velocity window (last VELOCITY_WINDOW
        #: observations as (x, y, frame) rows, oldest first), ``miss_col``
        #: the consecutive-miss counters (reset on every match).  The
        #: columns live across :meth:`step_batch` calls; the miss column is
        #: synced eagerly at every batch boundary (emission reads it), the
        #: box/ring columns are write-behind — the active window is staged
        #: in the slot-parallel scratch below while matching, and
        #: :meth:`_flush_columns` materialises it on demand.
        self._capacity = 0
        self.state_col = _EMPTY_STATE_COL
        self.ring_col = _EMPTY_RING_COL
        self.ring_fill = _EMPTY_INT_COL
        self.miss_col = _EMPTY_INT_COL
        #: Scan scratch, parallel to ``active``: CPython subscripting is
        #: ~10x cheaper on small lists/tuples than on numpy scalars, so the
        #: matcher works slot-indexed over the active window and the
        #: columns stay the durable cross-batch store.
        self.slot_state: list[tuple] = []
        self.slot_rings: list[deque[tuple[float, float, int]]] = []
        self.slot_miss: list[int] = []
        #: Slot-parallel aliases of ``det_indices`` rows (same list
        #: objects) so matches append without an active-row lookup.
        self.slot_dets: list[list[int]] = []
        #: Rows finished since the last column flush (row, state, ring).
        self._finished_dirty: list[tuple] = []
        self._scratch_valid = True
        #: Per-track detection ids (offsets into the consumed batches);
        #: a track's hit count is the length of its list.
        self.det_indices: list[list[int]] = []
        self.active: list[int] = []
        #: Category ids parallel to ``active`` (avoids per-frame rebuilds).
        self.active_categories: list[int] = []
        self.finished: list[int] = []
        self.num_rows = 0
        self.categories: list[str] = []
        self._category_ids: dict[str, int] = {}
        self.batches: list[DetectionBatch] = []
        self.offsets: list[int] = []
        self._total_detections = 0

    # ------------------------------------------------------------ bookkeeping

    def _core_category(self, label: str) -> int:
        identifier = self._category_ids.get(label)
        if identifier is None:
            identifier = len(self.categories)
            self._category_ids[label] = identifier
            self.categories.append(label)
        return identifier

    def hit_count(self, row: int) -> int:
        """Number of matched detections of one track row."""
        return len(self.det_indices[row])

    def resolve(self, detection_id: int) -> tuple[DetectionBatch, int]:
        """Map a core-global detection id back to its (batch, local index)."""
        if len(self.batches) == 1:
            return self.batches[0], detection_id
        position = bisect_right(self.offsets, detection_id) - 1
        return self.batches[position], detection_id - self.offsets[position]

    # ---------------------------------------------------------------- updates

    def _new_track(self, detection_id: int, category: int, x: float, y: float,
                   width: float, height: float, frame_index: int) -> int:
        row = self.num_rows
        self.num_rows += 1
        if row >= self._capacity:
            self._grow(row + 1)
        detections = [detection_id]
        self.det_indices.append(detections)
        self.slot_dets.append(detections)
        self.slot_state.append((x, y, width, height, width * height,
                                frame_index, 0.0, 0.0))
        self.slot_rings.append(deque([(x, y, frame_index)],
                                     maxlen=Track.VELOCITY_WINDOW))
        self.slot_miss.append(0)
        self.track_id.append(self.next_id)
        self.next_id += 1
        self.category_id.append(category)
        return row

    def _grow(self, needed: int) -> None:
        """Grow the persistent columns geometrically to hold ``needed`` rows."""
        capacity = self._capacity or 16
        while capacity < needed:
            capacity *= 2
        state = np.zeros((capacity, 8), dtype=np.float64)
        ring = np.zeros((capacity, Track.VELOCITY_WINDOW, 3),
                        dtype=np.float64)
        fill = np.zeros(capacity, dtype=np.int64)
        miss = np.zeros(capacity, dtype=np.int64)
        used = self.num_rows - 1 if self.num_rows else 0
        if used:
            state[:used] = self.state_col[:used]
            ring[:used] = self.ring_col[:used]
            fill[:used] = self.ring_fill[:used]
            miss[:used] = self.miss_col[:used]
        self.state_col = state
        self.ring_col = ring
        self.ring_fill = fill
        self.miss_col = miss
        self._capacity = capacity

    def _flush_columns(self) -> None:
        """Materialise the staged active window into the persistent columns.

        Finished rows queue in ``_finished_dirty`` when they expire (so the
        expiry sweeps stay append-cheap) and drain here; active rows copy
        straight from the slot scratch.  After this call the columns alone
        carry the complete tracker state — :meth:`drop_scratch` relies on
        that to rebuild the scratch from the columns.
        """
        state_col = self.state_col
        ring_col = self.ring_col
        ring_fill = self.ring_fill
        for row, state, ring in self._finished_dirty:
            state_col[row] = state
            count = len(ring)
            ring_col[row, :count] = ring
            ring_fill[row] = count
        self._finished_dirty.clear()
        rows = self.active
        for slot, row in enumerate(rows):
            state_col[row] = self.slot_state[slot]
            ring = self.slot_rings[slot]
            count = len(ring)
            ring_col[row, :count] = ring
            ring_fill[row] = count
        if rows:
            self.miss_col[rows] = self.slot_miss

    def drop_scratch(self) -> None:
        """Flush and discard the slot scratch (test hook / memory release).

        The next :meth:`step_batch` restages the active window from the
        persistent columns; continuing after a drop must be bit-identical,
        which is exactly what the array-state tests assert.
        """
        self._flush_columns()
        self.slot_state = []
        self.slot_rings = []
        self.slot_miss = []
        self.slot_dets = []
        self._scratch_valid = False

    def _load_scratch(self) -> None:
        """Restage the active window from the persistent columns."""
        state_col = self.state_col
        ring_col = self.ring_col
        ring_fill = self.ring_fill
        window = Track.VELOCITY_WINDOW
        self.slot_state = [tuple(state_col[row].tolist())
                           for row in self.active]
        self.slot_rings = [
            deque([tuple(entry) for entry in
                   ring_col[row, :int(ring_fill[row])].tolist()],
                  maxlen=window)
            for row in self.active]
        self.slot_miss = [int(self.miss_col[row]) for row in self.active]
        self.slot_dets = [self.det_indices[row] for row in self.active]
        self._scratch_valid = True

    def _expire(self) -> None:
        """Move tracks whose misses exceeded max_age to the finished list.

        Same sweep as the scalar core: the active list is filtered in order,
        so finished tracks are appended in active-list order.
        """
        max_age = self.config.max_age
        slot_miss = self.slot_miss
        slot_state = self.slot_state
        slot_rings = self.slot_rings
        slot_dets = self.slot_dets
        miss_col = self.miss_col
        dirty = self._finished_dirty
        still_active: list[int] = []
        still_categories: list[int] = []
        still_state: list[tuple] = []
        still_rings: list = []
        still_miss: list[int] = []
        still_dets: list[list[int]] = []
        for slot, row in enumerate(self.active):
            count = slot_miss[slot]
            if count > max_age:
                self.finished.append(row)
                miss_col[row] = count
                dirty.append((row, slot_state[slot], slot_rings[slot]))
            else:
                still_active.append(row)
                still_categories.append(self.active_categories[slot])
                still_state.append(slot_state[slot])
                still_rings.append(slot_rings[slot])
                still_miss.append(count)
                still_dets.append(slot_dets[slot])
        self.active[:] = still_active
        self.active_categories[:] = still_categories
        slot_state[:] = still_state
        slot_rings[:] = still_rings
        slot_miss[:] = still_miss
        slot_dets[:] = still_dets

    def _miss_step(self) -> None:
        """Advance one frame with no matched detections (all candidates miss)."""
        self._age_gap(1)

    def _age_gap(self, gap: int) -> None:
        """Advance ``gap`` consecutive empty frames in one batched pass.

        Equivalent to ``gap`` scalar miss steps: every active track ages by
        ``gap`` misses, and tracks that cross ``max_age`` part-way through
        are finished in per-frame expiry order (crossing frame first, active
        order within a frame) with their counters frozen at the crossing
        value — exactly what ``gap`` sequential sweeps produce.
        """
        slot_miss = self.slot_miss
        if not slot_miss or gap <= 0:
            return
        max_age = self.config.max_age
        expired = False
        for slot, count in enumerate(slot_miss):
            count += gap
            slot_miss[slot] = count
            if count > max_age:
                expired = True
        if expired:
            self._expire_gap(gap, max_age)

    def _expire_gap(self, gap: int, max_age: int) -> None:
        """Expire after a multi-frame gap, preserving per-frame finish order.

        A track with ``m`` misses before the gap crosses ``max_age`` at gap
        offset ``max_age + 1 - m``; sequential empty steps finish tracks
        ordered by that offset (ties in active-list order) and stop aging a
        track at its expiry frame, so a crossing track's final miss count is
        exactly ``max_age + 1`` rather than ``m + gap``.
        """
        slot_miss = self.slot_miss
        slot_state = self.slot_state
        slot_rings = self.slot_rings
        slot_dets = self.slot_dets
        miss_col = self.miss_col
        dirty = self._finished_dirty
        limit = max_age + 1
        expiring: list[tuple[int, int, int]] = []
        still_active: list[int] = []
        still_categories: list[int] = []
        still_state: list[tuple] = []
        still_rings: list = []
        still_miss: list[int] = []
        still_dets: list[list[int]] = []
        for slot, row in enumerate(self.active):
            count = slot_miss[slot]
            if count > max_age:
                miss_col[row] = limit
                dirty.append((row, slot_state[slot], slot_rings[slot]))
                expiring.append((limit - (count - gap), slot, row))
            else:
                still_active.append(row)
                still_categories.append(self.active_categories[slot])
                still_state.append(slot_state[slot])
                still_rings.append(slot_rings[slot])
                still_miss.append(count)
                still_dets.append(slot_dets[slot])
        expiring.sort()
        self.finished.extend(row for _, _, row in expiring)
        self.active[:] = still_active
        self.active_categories[:] = still_categories
        slot_state[:] = still_state
        slot_rings[:] = still_rings
        slot_miss[:] = still_miss
        slot_dets[:] = still_dets

    # --------------------------------------------------------------- matching

    def step_batch(self, batch: DetectionBatch) -> None:
        """Advance the tracker over every frame of one detection batch."""
        self.batches.append(batch)
        self.offsets.append(self._total_detections)
        offset = self._total_detections
        self._total_detections += len(batch)
        num_frames = batch.num_frames
        if num_frames == 0:
            return
        total = len(batch)
        config = self.config
        threshold = config.iou_threshold
        use_motion = config.use_motion_prediction
        max_age = config.max_age
        if not total:
            # The whole batch is empty frames: one batched aging pass.
            self._age_gap(num_frames)
            if self.active:
                self.miss_col[self.active] = self.slot_miss
            return
        positions = batch.frame_positions
        batch_to_core = [self._core_category(label) for label in batch.categories]
        single_category = len(batch_to_core) == 1
        # The scan needs frame-major, confidence-descending stable order —
        # the batched equivalent of the scalar per-step sort.  One Python
        # pass over the positions finds the visited-frame boundaries (the
        # loop below skips empty frames; the gaps between them age in
        # batched passes) and detects whether storage is already
        # frame-major — then the columns materialize either directly or
        # through one stable position argsort.  Within-frame storage order
        # is the scalar emission order by the DetectionBatch contract, so
        # confidence order is restored afterwards, stably, only inside the
        # few frames that carry more than one detection.
        positions_list = positions.tolist()
        frames_list: list[int] = []
        ends_list: list[int] = []
        previous_frame = -1
        frame_major = True
        for index, frame in enumerate(positions_list):
            if frame != previous_frame:
                if frame < previous_frame:
                    frame_major = False
                    break
                frames_list.append(frame)
                if index:
                    ends_list.append(index)
                previous_frame = frame
        if frame_major:
            ends_list.append(total)
            order_list = None
            boxes_list = batch.boxes.tolist()
            frame_index_list = batch.frame_indices.tolist()
            detection_ids = list(range(offset, offset + total))
            if single_category:
                category_list = batch_to_core * total
            else:
                category_list = [batch_to_core[identifier]
                                 for identifier in batch.category_ids.tolist()]
        else:
            # Entry-major storage: a stable argsort by frame position is the
            # whole frame-major reorder (position ties keep storage order,
            # which is the scalar within-frame emission order).
            order_list = np.argsort(positions, kind="stable").tolist()
            frames_list = []
            ends_list = []
            previous_frame = -1
            for index, position in enumerate(order_list):
                frame = positions_list[position]
                if frame != previous_frame:
                    frames_list.append(frame)
                    if index:
                        ends_list.append(index)
                    previous_frame = frame
            ends_list.append(total)
            storage_boxes = batch.boxes.tolist()
            boxes_list = [storage_boxes[index] for index in order_list]
            storage_frame_indices = batch.frame_indices.tolist()
            frame_index_list = [storage_frame_indices[index]
                                for index in order_list]
            detection_ids = order_list if offset == 0 \
                else [offset + index for index in order_list]
            if single_category:
                category_list = batch_to_core * total
            else:
                storage_ids = batch.category_ids.tolist()
                category_list = [batch_to_core[storage_ids[index]]
                                 for index in order_list]
        if len(ends_list) != total:
            # At least one frame carries several detections: restore
            # confidence-descending order inside those frames (stable —
            # swap/permute only on a strict upset, ties stay put).
            storage_confidences = batch.confidences.tolist()
            if order_list is None:
                confidence_list = storage_confidences
            else:
                confidence_list = [storage_confidences[index]
                                   for index in order_list]
            first = 0
            for last in ends_list:
                span = last - first
                if span == 2:
                    second = first + 1
                    if confidence_list[first] < confidence_list[second]:
                        boxes_list[first], boxes_list[second] = \
                            boxes_list[second], boxes_list[first]
                        detection_ids[first], detection_ids[second] = \
                            detection_ids[second], detection_ids[first]
                        if not single_category:
                            category_list[first], category_list[second] = \
                                category_list[second], category_list[first]
                elif span > 2:
                    permuted = sorted(range(first, last),
                                      key=lambda i: -confidence_list[i])
                    boxes_list[first:last] = [boxes_list[i] for i in permuted]
                    detection_ids[first:last] = [detection_ids[i]
                                                 for i in permuted]
                    if not single_category:
                        category_list[first:last] = [category_list[i]
                                                     for i in permuted]
                first = last
        # When everything the core has ever seen shares one category, the
        # per-category guards are always-pass; hoist them out of the scan
        # loops.  The registry is complete for this batch at this point, so
        # the flag is loop-invariant.
        check_categories = config.per_category and len(self.categories) > 1
        # A zero-overlap candidate can never win a scan whose bar starts at
        # a positive threshold, so the scalar paths below reject disjoint
        # boxes on a 2-4 comparison axis test before any IoU arithmetic.
        # With threshold 0.0 a zero-IoU candidate *can* win (>= keeps the
        # last one), so those steps take the unpruned general path.
        fast_scan = threshold > 0.0
        # The unrolled small-frame paths below additionally assume category
        # guards are no-ops (single category seen, or per_category off).
        unrolled = fast_scan and not check_categories
        if not self._scratch_valid:
            self._load_scratch()
        slot_state = self.slot_state
        slot_rings = self.slot_rings
        slot_miss = self.slot_miss
        slot_dets = self.slot_dets
        start = 0
        prev_frame = -1
        active = self.active
        for frame, end in zip(frames_list, ends_list):
            gap = frame - prev_frame - 1
            if gap and active:
                # Inlined _age_gap: batched aging for the empty frames
                # between the previous handled frame and this one.
                expired = False
                for slot, count in enumerate(slot_miss):
                    count += gap
                    slot_miss[slot] = count
                    if count > max_age:
                        expired = True
                if expired:
                    self._expire_gap(gap, max_age)
            prev_frame = frame
            frame_index = frame_index_list[start]
            num_candidates = len(active)
            if unrolled:
                # Fully unrolled paths for the dominant small frame shapes
                # (one or two detections against one or two candidates):
                # candidate state unpacks into locals exactly once per
                # frame, aging fuses into the prep, and the greedy
                # selection reduces to explicit comparisons with the same
                # >=-later-wins tie-break as the scan loops.
                if num_candidates == 2:
                    if end == start + 1:
                        position = start
                        det_x1, det_y1, det_width, det_height = \
                            boxes_list[position]
                        det_x2 = det_x1 + det_width
                        det_y2 = det_y1 + det_height
                        det_area = det_width * det_height
                        x, y, width, height, area, last_frame, vx, vy = \
                            slot_state[0]
                        if use_motion:
                            frames_ahead = frame_index - last_frame
                            x = x + vx * frames_ahead
                            y = y + vy * frames_ahead
                        iou_a = 0.0
                        ref_x2 = x + width
                        ref_y2 = y + height
                        if det_x1 < ref_x2 and x < det_x2 \
                                and det_y1 < ref_y2 and y < det_y2:
                            left = det_x1 if det_x1 > x else x
                            right = det_x2 if det_x2 < ref_x2 else ref_x2
                            top = det_y1 if det_y1 > y else y
                            bottom = det_y2 if det_y2 < ref_y2 else ref_y2
                            intersection = (right - left) * (bottom - top)
                            union = det_area + area - intersection
                            if union > 0:
                                iou_a = intersection / union
                        x, y, width, height, area, last_frame, vx, vy = \
                            slot_state[1]
                        if use_motion:
                            frames_ahead = frame_index - last_frame
                            x = x + vx * frames_ahead
                            y = y + vy * frames_ahead
                        iou_b = 0.0
                        ref_x2 = x + width
                        ref_y2 = y + height
                        if det_x1 < ref_x2 and x < det_x2 \
                                and det_y1 < ref_y2 and y < det_y2:
                            left = det_x1 if det_x1 > x else x
                            right = det_x2 if det_x2 < ref_x2 else ref_x2
                            top = det_y1 if det_y1 > y else y
                            bottom = det_y2 if det_y2 < ref_y2 else ref_y2
                            intersection = (right - left) * (bottom - top)
                            union = det_area + area - intersection
                            if union > 0:
                                iou_b = intersection / union
                        if iou_b >= threshold and iou_b >= iou_a:
                            slot = 1
                            other = 0
                        elif iou_a >= threshold:
                            slot = 0
                            other = 1
                        else:
                            count = slot_miss[0] + 1
                            slot_miss[0] = count
                            expired = count > max_age
                            count = slot_miss[1] + 1
                            slot_miss[1] = count
                            active.append(self._new_track(
                                detection_ids[position],
                                category_list[position],
                                det_x1, det_y1, det_width, det_height,
                                frame_index))
                            self.active_categories.append(
                                category_list[position])
                            if expired or count > max_age:
                                self._expire()
                            start = end
                            continue
                        count = slot_miss[other] + 1
                        slot_miss[other] = count
                        ring = slot_rings[slot]
                        ring.append((det_x1, det_y1, frame_index))
                        baseline_x, baseline_y, baseline_frame = ring[0]
                        frame_gap = frame_index - baseline_frame
                        if frame_gap < 1:
                            frame_gap = 1
                        slot_state[slot] = (
                            det_x1, det_y1, det_width, det_height, det_area,
                            frame_index,
                            (det_x1 - baseline_x) / frame_gap,
                            (det_y1 - baseline_y) / frame_gap)
                        slot_miss[slot] = 0
                        slot_dets[slot].append(detection_ids[position])
                        if count > max_age:
                            self._expire()
                        start = end
                        continue
                    if end == start + 2:
                        position0 = start
                        position1 = start + 1
                        a_x1, a_y1, a_w, a_h = boxes_list[position0]
                        a_x2 = a_x1 + a_w
                        a_y2 = a_y1 + a_h
                        a_area = a_w * a_h
                        b_x1, b_y1, b_w, b_h = boxes_list[position1]
                        b_x2 = b_x1 + b_w
                        b_y2 = b_y1 + b_h
                        b_area = b_w * b_h
                        x0, y0, width, height, ar0, last_frame, vx, vy = \
                            slot_state[0]
                        if use_motion:
                            frames_ahead = frame_index - last_frame
                            x0 = x0 + vx * frames_ahead
                            y0 = y0 + vy * frames_ahead
                        rx0 = x0 + width
                        ry0 = y0 + height
                        x1, y1, width, height, ar1, last_frame, vx, vy = \
                            slot_state[1]
                        if use_motion:
                            frames_ahead = frame_index - last_frame
                            x1 = x1 + vx * frames_ahead
                            y1 = y1 + vy * frames_ahead
                        rx1 = x1 + width
                        ry1 = y1 + height
                        iou_a0 = 0.0
                        if a_x1 < rx0 and x0 < a_x2 \
                                and a_y1 < ry0 and y0 < a_y2:
                            left = a_x1 if a_x1 > x0 else x0
                            right = a_x2 if a_x2 < rx0 else rx0
                            top = a_y1 if a_y1 > y0 else y0
                            bottom = a_y2 if a_y2 < ry0 else ry0
                            intersection = (right - left) * (bottom - top)
                            union = a_area + ar0 - intersection
                            if union > 0:
                                iou_a0 = intersection / union
                        iou_a1 = 0.0
                        if a_x1 < rx1 and x1 < a_x2 \
                                and a_y1 < ry1 and y1 < a_y2:
                            left = a_x1 if a_x1 > x1 else x1
                            right = a_x2 if a_x2 < rx1 else rx1
                            top = a_y1 if a_y1 > y1 else y1
                            bottom = a_y2 if a_y2 < ry1 else ry1
                            intersection = (right - left) * (bottom - top)
                            union = a_area + ar1 - intersection
                            if union > 0:
                                iou_a1 = intersection / union
                        if iou_a1 >= threshold and iou_a1 >= iou_a0:
                            best_a = 1
                        elif iou_a0 >= threshold:
                            best_a = 0
                        else:
                            best_a = -1
                        # Detection B scans the candidates A did not take.
                        best_b = -1
                        if best_a != 0:
                            iou_b0 = 0.0
                            if b_x1 < rx0 and x0 < b_x2 \
                                    and b_y1 < ry0 and y0 < b_y2:
                                left = b_x1 if b_x1 > x0 else x0
                                right = b_x2 if b_x2 < rx0 else rx0
                                top = b_y1 if b_y1 > y0 else y0
                                bottom = b_y2 if b_y2 < ry0 else ry0
                                intersection = (right - left) * (bottom - top)
                                union = b_area + ar0 - intersection
                                if union > 0:
                                    iou_b0 = intersection / union
                        if best_a != 1:
                            iou_b1 = 0.0
                            if b_x1 < rx1 and x1 < b_x2 \
                                    and b_y1 < ry1 and y1 < b_y2:
                                left = b_x1 if b_x1 > x1 else x1
                                right = b_x2 if b_x2 < rx1 else rx1
                                top = b_y1 if b_y1 > y1 else y1
                                bottom = b_y2 if b_y2 < ry1 else ry1
                                intersection = (right - left) * (bottom - top)
                                union = b_area + ar1 - intersection
                                if union > 0:
                                    iou_b1 = intersection / union
                            if best_a == 0:
                                if iou_b1 >= threshold:
                                    best_b = 1
                            elif iou_b1 >= threshold and iou_b1 >= iou_b0:
                                best_b = 1
                            elif iou_b0 >= threshold:
                                best_b = 0
                        elif iou_b0 >= threshold:
                            best_b = 0
                        if best_a >= 0:
                            ring = slot_rings[best_a]
                            ring.append((a_x1, a_y1, frame_index))
                            baseline_x, baseline_y, baseline_frame = ring[0]
                            frame_gap = frame_index - baseline_frame
                            if frame_gap < 1:
                                frame_gap = 1
                            slot_state[best_a] = (
                                a_x1, a_y1, a_w, a_h, a_area, frame_index,
                                (a_x1 - baseline_x) / frame_gap,
                                (a_y1 - baseline_y) / frame_gap)
                            slot_miss[best_a] = 0
                            slot_dets[best_a].append(
                                detection_ids[position0])
                        if best_b >= 0:
                            ring = slot_rings[best_b]
                            ring.append((b_x1, b_y1, frame_index))
                            baseline_x, baseline_y, baseline_frame = ring[0]
                            frame_gap = frame_index - baseline_frame
                            if frame_gap < 1:
                                frame_gap = 1
                            slot_state[best_b] = (
                                b_x1, b_y1, b_w, b_h, b_area, frame_index,
                                (b_x1 - baseline_x) / frame_gap,
                                (b_y1 - baseline_y) / frame_gap)
                            slot_miss[best_b] = 0
                            slot_dets[best_b].append(
                                detection_ids[position1])
                        if best_a < 0:
                            active.append(self._new_track(
                                detection_ids[position0],
                                category_list[position0],
                                a_x1, a_y1, a_w, a_h, frame_index))
                            self.active_categories.append(
                                category_list[position0])
                        if best_b < 0:
                            active.append(self._new_track(
                                detection_ids[position1],
                                category_list[position1],
                                b_x1, b_y1, b_w, b_h, frame_index))
                            self.active_categories.append(
                                category_list[position1])
                        expired = False
                        if best_a != 0 and best_b != 0:
                            count = slot_miss[0] + 1
                            slot_miss[0] = count
                            if count > max_age:
                                expired = True
                        if best_a != 1 and best_b != 1:
                            count = slot_miss[1] + 1
                            slot_miss[1] = count
                            if count > max_age:
                                expired = True
                        if expired:
                            self._expire()
                        start = end
                        continue
                elif num_candidates == 1 and end == start + 1:
                    position = start
                    det_x1, det_y1, det_width, det_height = \
                        boxes_list[position]
                    det_x2 = det_x1 + det_width
                    det_y2 = det_y1 + det_height
                    det_area = det_width * det_height
                    x, y, width, height, area, last_frame, vx, vy = \
                        slot_state[0]
                    if use_motion:
                        frames_ahead = frame_index - last_frame
                        x = x + vx * frames_ahead
                        y = y + vy * frames_ahead
                    ref_x2 = x + width
                    ref_y2 = y + height
                    matched = False
                    if det_x1 < ref_x2 and x < det_x2 \
                            and det_y1 < ref_y2 and y < det_y2:
                        left = det_x1 if det_x1 > x else x
                        right = det_x2 if det_x2 < ref_x2 else ref_x2
                        top = det_y1 if det_y1 > y else y
                        bottom = det_y2 if det_y2 < ref_y2 else ref_y2
                        intersection = (right - left) * (bottom - top)
                        union = det_area + area - intersection
                        if union > 0 and intersection / union >= threshold:
                            matched = True
                    if matched:
                        ring = slot_rings[0]
                        ring.append((det_x1, det_y1, frame_index))
                        baseline_x, baseline_y, baseline_frame = ring[0]
                        frame_gap = frame_index - baseline_frame
                        if frame_gap < 1:
                            frame_gap = 1
                        slot_state[0] = (
                            det_x1, det_y1, det_width, det_height, det_area,
                            frame_index,
                            (det_x1 - baseline_x) / frame_gap,
                            (det_y1 - baseline_y) / frame_gap)
                        slot_miss[0] = 0
                        slot_dets[0].append(detection_ids[position])
                    else:
                        count = slot_miss[0] + 1
                        slot_miss[0] = count
                        active.append(self._new_track(
                            detection_ids[position], category_list[position],
                            det_x1, det_y1, det_width, det_height,
                            frame_index))
                        self.active_categories.append(category_list[position])
                        if count > max_age:
                            self._expire()
                    start = end
                    continue
            if fast_scan and 0 < num_candidates < VECTOR_MATCH_MIN_PAIRS:
                if end == start + 1:
                    # Fast path: one detection this frame — no matched flags
                    # or new-track lists, references fuse into the candidate
                    # loop, and candidate aging fuses into the same loop
                    # (every candidate ages, then the winner's counter is
                    # reset by the match — the same bookkeeping the general
                    # path does in a second pass).
                    position = start
                    detection_category = category_list[position]
                    det_x1, det_y1, det_width, det_height = boxes_list[position]
                    det_x2 = det_x1 + det_width
                    det_y2 = det_y1 + det_height
                    det_area = det_width * det_height
                    active_categories = self.active_categories
                    best = -1
                    best_iou = threshold
                    expired = False
                    for index, state in enumerate(slot_state):
                        count = slot_miss[index] + 1
                        slot_miss[index] = count
                        if count > max_age:
                            expired = True
                        if check_categories \
                                and active_categories[index] != detection_category:
                            continue
                        x, y, width, height, area, last_frame, vx, vy = state
                        if use_motion:
                            frames_ahead = frame_index - last_frame
                            x = x + vx * frames_ahead
                            y = y + vy * frames_ahead
                        ref_x2 = x + width
                        if det_x1 >= ref_x2 or x >= det_x2:
                            continue
                        ref_y2 = y + height
                        if det_y1 >= ref_y2 or y >= det_y2:
                            continue
                        left = det_x1 if det_x1 > x else x
                        right = det_x2 if det_x2 < ref_x2 else ref_x2
                        top = det_y1 if det_y1 > y else y
                        bottom = det_y2 if det_y2 < ref_y2 else ref_y2
                        intersection = (right - left) * (bottom - top)
                        union = det_area + area - intersection
                        iou = intersection / union if union > 0 else 0.0
                        if iou >= best_iou:
                            best_iou = iou
                            best = index
                    if best >= 0:
                        # Inlined observe: record the matched box, advance
                        # the velocity window (baseline = oldest ringed
                        # observation after the append, frame gap clamped to
                        # >= 1, same IEEE ops as the scalar twin), reset the
                        # miss counter.  The ring holds at least the opening
                        # observation, so it has >= 2 entries here.
                        ring = slot_rings[best]
                        ring.append((det_x1, det_y1, frame_index))
                        baseline_x, baseline_y, baseline_frame = ring[0]
                        frame_gap = frame_index - baseline_frame
                        if frame_gap < 1:
                            frame_gap = 1
                        slot_state[best] = (
                            det_x1, det_y1, det_width, det_height, det_area,
                            frame_index,
                            (det_x1 - baseline_x) / frame_gap,
                            (det_y1 - baseline_y) / frame_gap)
                        slot_miss[best] = 0
                        slot_dets[best].append(detection_ids[position])
                    else:
                        active.append(self._new_track(
                            detection_ids[position], detection_category,
                            det_x1, det_y1, det_width, det_height, frame_index))
                        active_categories.append(detection_category)
                    if expired:
                        self._expire()
                    start = end
                    continue
                if end == start + 2 and num_candidates * 2 < VECTOR_MATCH_MIN_PAIRS:
                    # Fast path: two detections — both greedy scans read the
                    # pre-frame candidate state directly (the general path
                    # snapshots it into `references`; deferring both match
                    # updates until after both scans is equivalent and skips
                    # the snapshot, matched flags and new-track lists).  The
                    # higher-confidence detection scans first and excludes
                    # its winner from the second scan — the greedy order.
                    # Candidate aging fuses into the first scan; winners'
                    # counters are reset by their matches below.
                    position0 = start
                    position1 = start + 1
                    active_categories = self.active_categories
                    cat0 = category_list[position0]
                    a_x1, a_y1, a_w, a_h = boxes_list[position0]
                    a_x2 = a_x1 + a_w
                    a_y2 = a_y1 + a_h
                    a_area = a_w * a_h
                    best0 = -1
                    best_iou = threshold
                    expired = False
                    for index, state in enumerate(slot_state):
                        count = slot_miss[index] + 1
                        slot_miss[index] = count
                        if count > max_age:
                            expired = True
                        if check_categories \
                                and active_categories[index] != cat0:
                            continue
                        x, y, width, height, area, last_frame, vx, vy = state
                        if use_motion:
                            frames_ahead = frame_index - last_frame
                            x = x + vx * frames_ahead
                            y = y + vy * frames_ahead
                        ref_x2 = x + width
                        if a_x1 >= ref_x2 or x >= a_x2:
                            continue
                        ref_y2 = y + height
                        if a_y1 >= ref_y2 or y >= a_y2:
                            continue
                        left = a_x1 if a_x1 > x else x
                        right = a_x2 if a_x2 < ref_x2 else ref_x2
                        top = a_y1 if a_y1 > y else y
                        bottom = a_y2 if a_y2 < ref_y2 else ref_y2
                        intersection = (right - left) * (bottom - top)
                        union = a_area + area - intersection
                        iou = intersection / union if union > 0 else 0.0
                        if iou >= best_iou:
                            best_iou = iou
                            best0 = index
                    cat1 = category_list[position1]
                    b_x1, b_y1, b_w, b_h = boxes_list[position1]
                    b_x2 = b_x1 + b_w
                    b_y2 = b_y1 + b_h
                    b_area = b_w * b_h
                    best1 = -1
                    best_iou = threshold
                    for index, state in enumerate(slot_state):
                        if index == best0:
                            continue
                        if check_categories \
                                and active_categories[index] != cat1:
                            continue
                        x, y, width, height, area, last_frame, vx, vy = state
                        if use_motion:
                            frames_ahead = frame_index - last_frame
                            x = x + vx * frames_ahead
                            y = y + vy * frames_ahead
                        ref_x2 = x + width
                        if b_x1 >= ref_x2 or x >= b_x2:
                            continue
                        ref_y2 = y + height
                        if b_y1 >= ref_y2 or y >= b_y2:
                            continue
                        left = b_x1 if b_x1 > x else x
                        right = b_x2 if b_x2 < ref_x2 else ref_x2
                        top = b_y1 if b_y1 > y else y
                        bottom = b_y2 if b_y2 < ref_y2 else ref_y2
                        intersection = (right - left) * (bottom - top)
                        union = b_area + area - intersection
                        iou = intersection / union if union > 0 else 0.0
                        if iou >= best_iou:
                            best_iou = iou
                            best1 = index
                    if best0 >= 0:
                        ring = slot_rings[best0]
                        ring.append((a_x1, a_y1, frame_index))
                        baseline_x, baseline_y, baseline_frame = ring[0]
                        frame_gap = frame_index - baseline_frame
                        if frame_gap < 1:
                            frame_gap = 1
                        slot_state[best0] = (
                            a_x1, a_y1, a_w, a_h, a_area, frame_index,
                            (a_x1 - baseline_x) / frame_gap,
                            (a_y1 - baseline_y) / frame_gap)
                        slot_miss[best0] = 0
                        slot_dets[best0].append(
                            detection_ids[position0])
                    if best1 >= 0:
                        ring = slot_rings[best1]
                        ring.append((b_x1, b_y1, frame_index))
                        baseline_x, baseline_y, baseline_frame = ring[0]
                        frame_gap = frame_index - baseline_frame
                        if frame_gap < 1:
                            frame_gap = 1
                        slot_state[best1] = (
                            b_x1, b_y1, b_w, b_h, b_area, frame_index,
                            (b_x1 - baseline_x) / frame_gap,
                            (b_y1 - baseline_y) / frame_gap)
                        slot_miss[best1] = 0
                        slot_dets[best1].append(
                            detection_ids[position1])
                    if best0 < 0:
                        active.append(self._new_track(
                            detection_ids[position0], cat0,
                            a_x1, a_y1, a_w, a_h, frame_index))
                        active_categories.append(cat0)
                    if best1 < 0:
                        active.append(self._new_track(
                            detection_ids[position1], cat1,
                            b_x1, b_y1, b_w, b_h, frame_index))
                        active_categories.append(cat1)
                    if expired:
                        self._expire()
                    start = end
                    continue
            if num_candidates == 0:
                # Fast path: no candidates — every detection opens a track.
                active_categories = self.active_categories
                for position in range(start, end):
                    x, y, width, height = boxes_list[position]
                    active.append(self._new_track(
                        detection_ids[position], category_list[position],
                        x, y, width, height, frame_index))
                    active_categories.append(category_list[position])
                start = end
                continue
            matched = [False] * num_candidates
            new_rows: list[int] = []
            new_categories: list[int] = []
            iou_matrix = None
            references: list[tuple[float, float, float, float, float]] = []
            candidate_categories = self.active_categories if check_categories \
                else None
            # Reference bounds are computed scalar-wise exactly like the
            # scalar core's _reference_bounds (same arithmetic, same
            # motion-prediction condition) — the wide path below then
            # vectorizes only the IoU matrix over them.
            for state in slot_state:
                x, y, width, height, area, last_frame, vx, vy = state
                if use_motion:
                    frames_ahead = frame_index - last_frame
                    x = x + vx * frames_ahead
                    y = y + vy * frames_ahead
                references.append((x, y, x + width, y + height, area))
            if (end - start) * num_candidates >= VECTOR_MATCH_MIN_PAIRS:
                # boxes_list round-tripped through float64 tolist(), so this
                # rebuild is value-identical to slicing the source array.
                frame_boxes = np.asarray(boxes_list[start:end], dtype=np.float64)
                det_x1 = frame_boxes[:, 0:1]
                det_y1 = frame_boxes[:, 1:2]
                det_x2 = det_x1 + frame_boxes[:, 2:3]
                det_y2 = det_y1 + frame_boxes[:, 3:4]
                det_area = frame_boxes[:, 2:3] * frame_boxes[:, 3:4]
                ref = np.array(references, dtype=np.float64)
                left = np.maximum(det_x1, ref[:, 0])
                right = np.minimum(det_x2, ref[:, 2])
                top = np.maximum(det_y1, ref[:, 1])
                bottom = np.minimum(det_y2, ref[:, 3])
                width = right - left
                height = bottom - top
                intersection = np.where((width > 0) & (height > 0),
                                        width * height, 0.0)
                union = det_area + ref[:, 4] - intersection
                with np.errstate(divide="ignore", invalid="ignore"):
                    iou_matrix = np.where(union > 0, intersection / union, 0.0)
            for position in range(start, end):
                best = -1
                best_iou = threshold
                detection_category = category_list[position]
                det_x1, det_y1, det_width, det_height = boxes_list[position]
                det_area = det_width * det_height
                if iou_matrix is not None:
                    row_ious = iou_matrix[position - start]
                    for index in range(num_candidates):
                        if matched[index]:
                            continue
                        if candidate_categories is not None \
                                and candidate_categories[index] != detection_category:
                            continue
                        iou = row_ious[index]
                        if iou >= best_iou:
                            best_iou = iou
                            best = index
                else:
                    det_x2 = det_x1 + det_width
                    det_y2 = det_y1 + det_height
                    for index in range(num_candidates):
                        if matched[index]:
                            continue
                        if candidate_categories is not None \
                                and candidate_categories[index] != detection_category:
                            continue
                        ref_x1, ref_y1, ref_x2, ref_y2, ref_area = references[index]
                        left = det_x1 if det_x1 > ref_x1 else ref_x1
                        right = det_x2 if det_x2 < ref_x2 else ref_x2
                        top = det_y1 if det_y1 > ref_y1 else ref_y1
                        bottom = det_y2 if det_y2 < ref_y2 else ref_y2
                        if right > left and bottom > top:
                            intersection = (right - left) * (bottom - top)
                            union = det_area + ref_area - intersection
                            iou = intersection / union if union > 0 else 0.0
                        else:
                            iou = 0.0
                        if iou >= best_iou:
                            best_iou = iou
                            best = index
                if best >= 0:
                    # Inlined observe: the single hottest code path — record
                    # the matched box, advance the velocity window (baseline
                    # = oldest ringed observation, frame gap clamped to >= 1,
                    # same IEEE ops as Track._rebuild_motion_cache), reset
                    # the miss counter.
                    matched[best] = True
                    ring = slot_rings[best]
                    ring.append((det_x1, det_y1, frame_index))
                    baseline_x, baseline_y, baseline_frame = ring[0]
                    frame_gap = frame_index - baseline_frame
                    if frame_gap < 1:
                        frame_gap = 1
                    slot_state[best] = (
                        det_x1, det_y1, det_width, det_height, det_area,
                        frame_index,
                        (det_x1 - baseline_x) / frame_gap,
                        (det_y1 - baseline_y) / frame_gap)
                    slot_miss[best] = 0
                    slot_dets[best].append(detection_ids[position])
                else:
                    new_rows.append(self._new_track(
                        detection_ids[position], detection_category,
                        det_x1, det_y1, det_width, det_height,
                        frame_index))
                    new_categories.append(detection_category)
            expired = False
            for index in range(num_candidates):
                if not matched[index]:
                    count = slot_miss[index] + 1
                    slot_miss[index] = count
                    if count > max_age:
                        expired = True
            if new_rows:
                self.active.extend(new_rows)
                self.active_categories.extend(new_categories)
            if expired:
                self._expire()
            start = end
        tail = num_frames - 1 - frames_list[-1]
        if tail:
            self._age_gap(tail)
        # Boundary sync: emission reads miss counters straight from the
        # persistent column, so it must be current whenever step_batch
        # returns.  Box/ring columns stay write-behind (_flush_columns).
        if active:
            self.miss_col[active] = slot_miss

    # -------------------------------------------------------------- finishing

    def confirmed_rows(self) -> list[int]:
        """Rows of every confirmed track, in finished-then-active order."""
        min_hits = self.config.min_hits
        det_indices = self.det_indices
        return [row for row in self.finished + self.active
                if len(det_indices[row]) >= min_hits]



class TrackView:
    """Columnar stand-in for a confirmed :class:`Track` (the batch boundary).

    Exposes the track surface the executables consume — endpoints, boxes,
    hit counts, majority attributes — straight from the batch columns, so a
    chunk's row emission materialises at most two :class:`BoundingBox`
    objects per track.  :meth:`to_track` is the full materialisation adapter
    (used by :meth:`IoUTracker.finalize` and the parity tests).
    """

    __slots__ = ("_core", "_row")

    def __init__(self, core: _BatchTrackerCore, row: int) -> None:
        self._core = core
        self._row = row

    @property
    def track_id(self) -> int:
        return self._core.track_id[self._row]

    @property
    def category(self) -> str:
        return self._core.categories[self._core.category_id[self._row]]

    @property
    def hits(self) -> int:
        """Number of matched detections."""
        return self._core.hit_count(self._row)

    @property
    def misses(self) -> int:
        return int(self._core.miss_col[self._row])

    def is_confirmed(self, min_hits: int) -> bool:
        """True once the track has accumulated at least ``min_hits`` detections."""
        return self.hits >= min_hits

    def _boundary(self, position: int) -> tuple[DetectionBatch, int]:
        detection_id = self._core.det_indices[self._row][position]
        return self._core.resolve(detection_id)

    @property
    def first_timestamp(self) -> float:
        """Timestamp of the first matched detection."""
        batch, index = self._boundary(0)
        return float(batch.timestamps[index])

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the most recent matched detection."""
        batch, index = self._boundary(-1)
        return float(batch.timestamps[index])

    @property
    def duration(self) -> float:
        """Observed persistence of the track in seconds."""
        return self.last_timestamp - self.first_timestamp

    @property
    def first_box(self) -> BoundingBox:
        """Bounding box of the first matched detection."""
        batch, index = self._boundary(0)
        x, y, width, height = batch.boxes[index].tolist()
        return BoundingBox(x, y, width, height)

    @property
    def last_box(self) -> BoundingBox:
        """Bounding box of the most recent matched detection."""
        batch, index = self._boundary(-1)
        x, y, width, height = batch.boxes[index].tolist()
        return BoundingBox(x, y, width, height)

    def attribute_values(self, key: str) -> list[Any]:
        """All observed values of an attribute across the track."""
        values: list[Any] = []
        for detection_id in self._core.det_indices[self._row]:
            batch, index = self._core.resolve(detection_id)
            column = batch.attributes.get(key)
            if column is not None and column[0][index]:
                values.append(column[1][index])
        return values

    def majority_attribute(self, key: str, default: Any = None) -> Any:
        """Most frequently observed value of an attribute (ties broken arbitrarily)."""
        values = self.attribute_values(key)
        if not values:
            return default
        return Counter(values).most_common(1)[0][0]

    @property
    def observations(self) -> list[Detection]:
        """The track's detections, materialised from the batch columns.

        Full materialisation — row emission should prefer the columnar
        accessors above; this exists for the ``Track`` API surface.
        """
        core = self._core
        observations: list[Detection] = []
        for detection_id in core.det_indices[self._row]:
            batch, index = core.resolve(detection_id)
            observations.append(batch.detection_at(index))
        return observations

    def to_track(self) -> Track:
        """Materialise the classic :class:`Track` (observations included)."""
        return Track(track_id=self.track_id, category=self.category,
                     observations=self.observations, misses=self.misses)


class IoUTracker:
    """Online greedy IoU tracker over a stream of per-frame detections.

    A tracker instance runs in one of two modes: scalar (:meth:`step`, one
    frame's ``Detection`` list at a time) or batch (:meth:`step_batch`, a
    whole chunk's :class:`~repro.cv.detector.DetectionBatch`).  The modes
    produce bit-identical tracks but cannot be mixed on one instance.
    """

    def __init__(self, config: TrackerConfig | None = None) -> None:
        self.config = config or TrackerConfig()
        self._active: list[Track] = []
        self._finished: list[Track] = []
        self._next_id = 0
        self._core: _BatchTrackerCore | None = None

    @staticmethod
    def _iou_matrix(ordered: list[Detection],
                    references: list[tuple[float, float, float, float, float]]
                    ) -> np.ndarray:
        """Detections x candidates IoU matrix (vectorized wide-step path)."""
        det = np.array([[d.box.x, d.box.y, d.box.width, d.box.height] for d in ordered],
                       dtype=np.float64)
        ref = np.array(references, dtype=np.float64)
        det_x1 = det[:, 0:1]
        det_y1 = det[:, 1:2]
        det_x2 = det_x1 + det[:, 2:3]
        det_y2 = det_y1 + det[:, 3:4]
        det_area = det[:, 2:3] * det[:, 3:4]
        left = np.maximum(det_x1, ref[:, 0])
        right = np.minimum(det_x2, ref[:, 2])
        top = np.maximum(det_y1, ref[:, 1])
        bottom = np.minimum(det_y2, ref[:, 3])
        width = right - left
        height = bottom - top
        intersection = np.where((width > 0) & (height > 0), width * height, 0.0)
        union = det_area + ref[:, 4] - intersection
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(union > 0, intersection / union, 0.0)

    def step(self, detections: Sequence[Detection]) -> None:
        """Consume the detections of one frame (frames must arrive in time order)."""
        if self._core is not None:
            raise RuntimeError("tracker already advanced in batch mode; "
                               "scalar step() cannot be mixed with step_batch()")
        config = self.config
        candidates = self._active
        num_candidates = len(candidates)
        matched = [False] * num_candidates
        if detections:
            # A step normally carries one frame's detections, so each
            # candidate's (motion-predicted) reference box is computed
            # exactly once; mixed-frame steps (allowed by the signature)
            # fall back to per-detection prediction below.
            frame_index = detections[0].frame_index
            mixed_frames = any(det.frame_index != frame_index for det in detections)
            use_motion = config.use_motion_prediction
            references = [track._reference_bounds(frame_index, use_motion)
                          for track in candidates]
            categories = [track.category for track in candidates] \
                if config.per_category else None
            ordered = sorted(detections, key=lambda det: -det.confidence) \
                if len(detections) > 1 else list(detections)
            iou_matrix = None
            if num_candidates and not mixed_frames \
                    and len(ordered) * num_candidates >= VECTOR_MATCH_MIN_PAIRS:
                iou_matrix = self._iou_matrix(ordered, references)
            threshold = config.iou_threshold
            new_tracks: list[Track] = []
            for det_index, detection in enumerate(ordered):
                best = -1
                best_iou = threshold
                if iou_matrix is not None:
                    row = iou_matrix[det_index]
                    for index in range(num_candidates):
                        if matched[index]:
                            continue
                        if categories is not None and categories[index] != detection.category:
                            continue
                        iou = row[index]
                        if iou >= best_iou:
                            best_iou = iou
                            best = index
                else:
                    box = detection.box
                    det_x1 = box.x
                    det_y1 = box.y
                    det_x2 = det_x1 + box.width
                    det_y2 = det_y1 + box.height
                    det_area = box.width * box.height
                    for index in range(num_candidates):
                        if matched[index]:
                            continue
                        if categories is not None and categories[index] != detection.category:
                            continue
                        if mixed_frames and detection.frame_index != frame_index:
                            reference = candidates[index]._reference_bounds(
                                detection.frame_index, use_motion)
                        else:
                            reference = references[index]
                        ref_x1, ref_y1, ref_x2, ref_y2, ref_area = reference
                        left = det_x1 if det_x1 > ref_x1 else ref_x1
                        right = det_x2 if det_x2 < ref_x2 else ref_x2
                        top = det_y1 if det_y1 > ref_y1 else ref_y1
                        bottom = det_y2 if det_y2 < ref_y2 else ref_y2
                        if right > left and bottom > top:
                            intersection = (right - left) * (bottom - top)
                            union = det_area + ref_area - intersection
                            iou = intersection / union if union > 0 else 0.0
                        else:
                            iou = 0.0
                        if iou >= best_iou:
                            best_iou = iou
                            best = index
                if best >= 0:
                    track = candidates[best]
                    track.observations.append(detection)
                    track.misses = 0
                    matched[best] = True
                else:
                    new_tracks.append(Track(track_id=self._next_id,
                                            category=detection.category,
                                            observations=[detection]))
                    self._next_id += 1
            if new_tracks:
                self._active.extend(new_tracks)
        max_age = config.max_age
        expired = False
        for index in range(num_candidates):
            if not matched[index]:
                track = candidates[index]
                track.misses += 1
                if track.misses > max_age:
                    expired = True
        if expired:
            still_active: list[Track] = []
            for track in self._active:
                if track.misses > max_age:
                    self._finished.append(track)
                else:
                    still_active.append(track)
            self._active = still_active

    def step_batch(self, batch: DetectionBatch) -> None:
        """Consume a whole chunk's detections at once (the columnar core).

        Bit-identical to calling :meth:`step` with each frame's detection
        list of ``batch.per_frame_detections()`` in order — including frames
        with no detections, which age unmatched tracks exactly as empty
        scalar steps do.
        """
        if self._active or self._finished:
            raise RuntimeError("tracker already advanced in scalar mode; "
                               "step_batch() cannot be mixed with step()")
        if self._core is None:
            self._core = _BatchTrackerCore(self.config, next_id=self._next_id)
        self._core.step_batch(batch)

    def finalize_views(self) -> list[TrackView]:
        """Flush the batch core and return every confirmed track as a view.

        The cheap API boundary of the columnar pipeline: row emission reads
        track endpoints and attribute majorities straight from the batch
        columns instead of materialised ``Detection`` lists.  Only valid in
        batch mode (after :meth:`step_batch`); an unused tracker returns [].
        """
        core = self._core
        if core is None:
            if self._active or self._finished:
                raise RuntimeError("finalize_views() requires batch mode; "
                                   "use finalize() after scalar step()")
            return []
        self._core = None
        self._next_id = core.next_id
        return [TrackView(core, row) for row in core.confirmed_rows()]

    def finalize(self) -> list[Track]:
        """Flush remaining active tracks and return every *confirmed* track."""
        if self._core is not None:
            return [view.to_track() for view in self.finalize_views()]
        all_tracks = self._finished + self._active
        self._finished = []
        self._active = []
        return [track for track in all_tracks if track.is_confirmed(self.config.min_hits)]


def track_frames(frames_with_detections: Iterable[tuple[Any, Sequence[Detection]]],
                 config: TrackerConfig | None = None) -> list[Track]:
    """Run the tracker over ``(frame, detections)`` pairs and return confirmed tracks."""
    tracker = IoUTracker(config)
    for _frame, detections in frames_with_detections:
        tracker.step(detections)
    return tracker.finalize()


def track_detection_stream(detections_by_frame: Iterable[Sequence[Detection]],
                           config: TrackerConfig | None = None) -> list[Track]:
    """Run the tracker over a bare stream of per-frame detection lists."""
    tracker = IoUTracker(config)
    for detections in detections_by_frame:
        tracker.step(detections)
    return tracker.finalize()
