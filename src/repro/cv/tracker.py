"""Greedy IoU multi-object tracker (stand-in for SORT / DeepSORT).

The tracker links per-frame detections into tracks by greedily matching each
detection to the existing track whose last box has the highest IoU above a
threshold.  It exposes the hyperparameters the paper tunes in Appendix A:

* ``max_age`` — number of consecutive frames a track survives without a match
  before it is terminated (gap bridging);
* ``min_hits`` — matches required before a track is *confirmed* (reported);
* ``iou_threshold`` — minimum IoU for a detection/track association.

Like the real trackers, the combination of gap bridging and greedy
association can merge distinct objects that pass through the same area into
one long track, which is precisely why CV-estimated maximum durations are
*conservative over-estimates* of the ground truth (Table 1).

Matching is computed against per-step candidate arrays: each step snapshots
the active tracks' (possibly motion-predicted) reference boxes once, then
either runs an allocation-free scalar loop (typical frames carry a handful of
detections) or computes the full detection x track IoU matrix with numpy when
the pair count is large.  Both paths apply the same greedy policy — highest
confidence first, ties broken towards the later candidate — and produce
identical associations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from repro.cv.detector import Detection
from repro.video.geometry import BoundingBox

#: Steps whose detections x candidates pair count reaches this size compute
#: the IoU matrix with numpy; smaller steps use the scalar loop.
VECTOR_MATCH_MIN_PAIRS = 64


@dataclass(frozen=True)
class TrackerConfig:
    """Hyperparameters of the greedy IoU tracker.

    ``use_motion_prediction`` enables a constant-velocity extrapolation of
    each track's box while it is unmatched, mirroring the Kalman prediction
    step of SORT/DeepSORT; without it, fast-moving objects with detection
    gaps fragment into many short tracks.
    """

    max_age: int = 30
    min_hits: int = 3
    iou_threshold: float = 0.3
    per_category: bool = True
    use_motion_prediction: bool = True

    def __post_init__(self) -> None:
        if self.max_age < 0:
            raise ValueError("max_age must be non-negative")
        if self.min_hits < 1:
            raise ValueError("min_hits must be at least 1")
        if not 0.0 <= self.iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be within [0, 1]")


@dataclass
class Track:
    """A sequence of detections the tracker believes belong to one object."""

    track_id: int
    category: str
    observations: list[Detection] = field(default_factory=list)
    misses: int = 0
    #: Matching cache maintained by :meth:`_rebuild_motion_cache`; keyed on
    #: the observation count, so only count-changing edits (the tracker's
    #: appends) invalidate it — same-length in-place replacement of
    #: observations mid-tracking is unsupported.
    _motion_cache: tuple | None = field(default=None, repr=False, compare=False)

    @property
    def hits(self) -> int:
        """Number of matched detections."""
        return len(self.observations)

    @property
    def first_timestamp(self) -> float:
        """Timestamp of the first matched detection."""
        return self.observations[0].timestamp

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the most recent matched detection."""
        return self.observations[-1].timestamp

    @property
    def duration(self) -> float:
        """Observed persistence of the track in seconds."""
        if not self.observations:
            return 0.0
        return self.last_timestamp - self.first_timestamp

    @property
    def last_box(self) -> BoundingBox:
        """Bounding box of the most recent matched detection."""
        return self.observations[-1].box

    #: Velocity is estimated over (up to) this many recent observations.
    #: A longer baseline averages out localisation jitter the way SORT's
    #: Kalman filter does — a two-point estimate amplifies per-box jitter
    #: into large extrapolation errors across long detection gaps.
    VELOCITY_WINDOW = 5

    def predicted_box(self, frames_ahead: int) -> BoundingBox:
        """Constant-velocity extrapolation of the track's box.

        The per-frame velocity is estimated across the last few matched
        detections (normalised by the frame span between them) and projected
        ``frames_ahead`` frames past the last detection — the same role the
        Kalman prediction step plays in SORT.
        """
        if len(self.observations) < 2 or frames_ahead <= 0:
            return self.last_box
        baseline = self.observations[-min(len(self.observations), self.VELOCITY_WINDOW)]
        last = self.observations[-1]
        frame_gap = max(1, last.frame_index - baseline.frame_index)
        vx = (last.box.x - baseline.box.x) / frame_gap
        vy = (last.box.y - baseline.box.y) / frame_gap
        return last.box.translate(vx * frames_ahead, vy * frames_ahead)

    def _reference_bounds(self, frame_index: int, use_motion: bool
                          ) -> tuple[float, float, float, float, float]:
        """Reference box for matching as ``(x1, y1, x2, y2, area)`` floats.

        Equivalent to ``predicted_box(...)`` (same arithmetic, same results)
        but works from the cached motion state so the hot path avoids
        materialising a :class:`BoundingBox` per candidate per step.
        """
        cache = self._motion_cache
        if cache is None or cache[0] != len(self.observations):
            cache = self._rebuild_motion_cache()
        _, x, y, width, height, area, last_frame, vx, vy = cache
        if use_motion and vx is not None:
            frames_ahead = frame_index - last_frame
            if frames_ahead > 0:
                x = x + vx * frames_ahead
                y = y + vy * frames_ahead
        return x, y, x + width, y + height, area

    def _rebuild_motion_cache(self) -> tuple:
        """Recompute the matching cache from the observation list.

        The cache holds ``(num_observations, x, y, width, height, area,
        last_frame_index, vx, vy)``; ``vx``/``vy`` are None until the track
        has two observations.  It is keyed on the observation count, so
        appends (and other length-changing edits) are picked up
        transparently; same-length in-place replacement is not.
        """
        observations = self.observations
        last = observations[-1]
        box = last.box
        vx = vy = None
        if len(observations) >= 2:
            baseline = observations[-min(len(observations), self.VELOCITY_WINDOW)]
            frame_gap = max(1, last.frame_index - baseline.frame_index)
            vx = (box.x - baseline.box.x) / frame_gap
            vy = (box.y - baseline.box.y) / frame_gap
        cache = (len(observations), box.x, box.y, box.width, box.height,
                 box.width * box.height, last.frame_index, vx, vy)
        self._motion_cache = cache
        return cache

    def attribute_values(self, key: str) -> list[Any]:
        """All observed values of an attribute across the track."""
        values = []
        for detection in self.observations:
            if key in detection.attributes:
                values.append(detection.attributes[key])
        return values

    def majority_attribute(self, key: str, default: Any = None) -> Any:
        """Most frequently observed value of an attribute (ties broken arbitrarily)."""
        values = self.attribute_values(key)
        if not values:
            return default
        return Counter(values).most_common(1)[0][0]

    def is_confirmed(self, min_hits: int) -> bool:
        """True once the track has accumulated at least ``min_hits`` detections."""
        return self.hits >= min_hits


class IoUTracker:
    """Online greedy IoU tracker over a stream of per-frame detections."""

    def __init__(self, config: TrackerConfig | None = None) -> None:
        self.config = config or TrackerConfig()
        self._active: list[Track] = []
        self._finished: list[Track] = []
        self._next_id = 0

    @staticmethod
    def _iou_matrix(ordered: list[Detection],
                    references: list[tuple[float, float, float, float, float]]
                    ) -> np.ndarray:
        """Detections x candidates IoU matrix (vectorized wide-step path)."""
        det = np.array([[d.box.x, d.box.y, d.box.width, d.box.height] for d in ordered],
                       dtype=np.float64)
        ref = np.array(references, dtype=np.float64)
        det_x1 = det[:, 0:1]
        det_y1 = det[:, 1:2]
        det_x2 = det_x1 + det[:, 2:3]
        det_y2 = det_y1 + det[:, 3:4]
        det_area = det[:, 2:3] * det[:, 3:4]
        left = np.maximum(det_x1, ref[:, 0])
        right = np.minimum(det_x2, ref[:, 2])
        top = np.maximum(det_y1, ref[:, 1])
        bottom = np.minimum(det_y2, ref[:, 3])
        width = right - left
        height = bottom - top
        intersection = np.where((width > 0) & (height > 0), width * height, 0.0)
        union = det_area + ref[:, 4] - intersection
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(union > 0, intersection / union, 0.0)

    def step(self, detections: Sequence[Detection]) -> None:
        """Consume the detections of one frame (frames must arrive in time order)."""
        config = self.config
        candidates = self._active
        num_candidates = len(candidates)
        matched = [False] * num_candidates
        if detections:
            # A step normally carries one frame's detections, so each
            # candidate's (motion-predicted) reference box is computed
            # exactly once; mixed-frame steps (allowed by the signature)
            # fall back to per-detection prediction below.
            frame_index = detections[0].frame_index
            mixed_frames = any(det.frame_index != frame_index for det in detections)
            use_motion = config.use_motion_prediction
            references = [track._reference_bounds(frame_index, use_motion)
                          for track in candidates]
            categories = [track.category for track in candidates] \
                if config.per_category else None
            ordered = sorted(detections, key=lambda det: -det.confidence) \
                if len(detections) > 1 else list(detections)
            iou_matrix = None
            if num_candidates and not mixed_frames \
                    and len(ordered) * num_candidates >= VECTOR_MATCH_MIN_PAIRS:
                iou_matrix = self._iou_matrix(ordered, references)
            threshold = config.iou_threshold
            new_tracks: list[Track] = []
            for det_index, detection in enumerate(ordered):
                best = -1
                best_iou = threshold
                if iou_matrix is not None:
                    row = iou_matrix[det_index]
                    for index in range(num_candidates):
                        if matched[index]:
                            continue
                        if categories is not None and categories[index] != detection.category:
                            continue
                        iou = row[index]
                        if iou >= best_iou:
                            best_iou = iou
                            best = index
                else:
                    box = detection.box
                    det_x1 = box.x
                    det_y1 = box.y
                    det_x2 = det_x1 + box.width
                    det_y2 = det_y1 + box.height
                    det_area = box.width * box.height
                    for index in range(num_candidates):
                        if matched[index]:
                            continue
                        if categories is not None and categories[index] != detection.category:
                            continue
                        if mixed_frames and detection.frame_index != frame_index:
                            reference = candidates[index]._reference_bounds(
                                detection.frame_index, use_motion)
                        else:
                            reference = references[index]
                        ref_x1, ref_y1, ref_x2, ref_y2, ref_area = reference
                        left = det_x1 if det_x1 > ref_x1 else ref_x1
                        right = det_x2 if det_x2 < ref_x2 else ref_x2
                        top = det_y1 if det_y1 > ref_y1 else ref_y1
                        bottom = det_y2 if det_y2 < ref_y2 else ref_y2
                        if right > left and bottom > top:
                            intersection = (right - left) * (bottom - top)
                            union = det_area + ref_area - intersection
                            iou = intersection / union if union > 0 else 0.0
                        else:
                            iou = 0.0
                        if iou >= best_iou:
                            best_iou = iou
                            best = index
                if best >= 0:
                    track = candidates[best]
                    track.observations.append(detection)
                    track.misses = 0
                    matched[best] = True
                else:
                    new_tracks.append(Track(track_id=self._next_id,
                                            category=detection.category,
                                            observations=[detection]))
                    self._next_id += 1
            if new_tracks:
                self._active.extend(new_tracks)
        max_age = config.max_age
        expired = False
        for index in range(num_candidates):
            if not matched[index]:
                track = candidates[index]
                track.misses += 1
                if track.misses > max_age:
                    expired = True
        if expired:
            still_active: list[Track] = []
            for track in self._active:
                if track.misses > max_age:
                    self._finished.append(track)
                else:
                    still_active.append(track)
            self._active = still_active

    def finalize(self) -> list[Track]:
        """Flush remaining active tracks and return every *confirmed* track."""
        all_tracks = self._finished + self._active
        self._finished = []
        self._active = []
        return [track for track in all_tracks if track.is_confirmed(self.config.min_hits)]


def track_frames(frames_with_detections: Iterable[tuple[Any, Sequence[Detection]]],
                 config: TrackerConfig | None = None) -> list[Track]:
    """Run the tracker over ``(frame, detections)`` pairs and return confirmed tracks."""
    tracker = IoUTracker(config)
    for _frame, detections in frames_with_detections:
        tracker.step(detections)
    return tracker.finalize()


def track_detection_stream(detections_by_frame: Iterable[Sequence[Detection]],
                           config: TrackerConfig | None = None) -> list[Track]:
    """Run the tracker over a bare stream of per-frame detection lists."""
    tracker = IoUTracker(config)
    for detections in detections_by_frame:
        tracker.step(detections)
    return tracker.finalize()
