"""Greedy IoU multi-object tracker (stand-in for SORT / DeepSORT).

The tracker links per-frame detections into tracks by greedily matching each
detection to the existing track whose last box has the highest IoU above a
threshold.  It exposes the hyperparameters the paper tunes in Appendix A:

* ``max_age`` — number of consecutive frames a track survives without a match
  before it is terminated (gap bridging);
* ``min_hits`` — matches required before a track is *confirmed* (reported);
* ``iou_threshold`` — minimum IoU for a detection/track association.

Like the real trackers, the combination of gap bridging and greedy
association can merge distinct objects that pass through the same area into
one long track, which is precisely why CV-estimated maximum durations are
*conservative over-estimates* of the ground truth (Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from repro.cv.detector import Detection
from repro.video.geometry import BoundingBox


@dataclass(frozen=True)
class TrackerConfig:
    """Hyperparameters of the greedy IoU tracker.

    ``use_motion_prediction`` enables a constant-velocity extrapolation of
    each track's box while it is unmatched, mirroring the Kalman prediction
    step of SORT/DeepSORT; without it, fast-moving objects with detection
    gaps fragment into many short tracks.
    """

    max_age: int = 30
    min_hits: int = 3
    iou_threshold: float = 0.3
    per_category: bool = True
    use_motion_prediction: bool = True

    def __post_init__(self) -> None:
        if self.max_age < 0:
            raise ValueError("max_age must be non-negative")
        if self.min_hits < 1:
            raise ValueError("min_hits must be at least 1")
        if not 0.0 <= self.iou_threshold <= 1.0:
            raise ValueError("iou_threshold must be within [0, 1]")


@dataclass
class Track:
    """A sequence of detections the tracker believes belong to one object."""

    track_id: int
    category: str
    observations: list[Detection] = field(default_factory=list)
    misses: int = 0

    @property
    def hits(self) -> int:
        """Number of matched detections."""
        return len(self.observations)

    @property
    def first_timestamp(self) -> float:
        """Timestamp of the first matched detection."""
        return self.observations[0].timestamp

    @property
    def last_timestamp(self) -> float:
        """Timestamp of the most recent matched detection."""
        return self.observations[-1].timestamp

    @property
    def duration(self) -> float:
        """Observed persistence of the track in seconds."""
        if not self.observations:
            return 0.0
        return self.last_timestamp - self.first_timestamp

    @property
    def last_box(self) -> BoundingBox:
        """Bounding box of the most recent matched detection."""
        return self.observations[-1].box

    def predicted_box(self, frames_ahead: int) -> BoundingBox:
        """Constant-velocity extrapolation of the track's box.

        The per-frame velocity is estimated from the last two matched
        detections (normalised by the frame gap between them) and projected
        ``frames_ahead`` frames past the last detection — the same role the
        Kalman prediction step plays in SORT.
        """
        if len(self.observations) < 2 or frames_ahead <= 0:
            return self.last_box
        previous = self.observations[-2]
        last = self.observations[-1]
        frame_gap = max(1, last.frame_index - previous.frame_index)
        vx = (last.box.x - previous.box.x) / frame_gap
        vy = (last.box.y - previous.box.y) / frame_gap
        return last.box.translate(vx * frames_ahead, vy * frames_ahead)

    def attribute_values(self, key: str) -> list[Any]:
        """All observed values of an attribute across the track."""
        values = []
        for detection in self.observations:
            if key in detection.attributes:
                values.append(detection.attributes[key])
        return values

    def majority_attribute(self, key: str, default: Any = None) -> Any:
        """Most frequently observed value of an attribute (ties broken arbitrarily)."""
        values = self.attribute_values(key)
        if not values:
            return default
        counts: dict[Any, int] = {}
        for value in values:
            counts[value] = counts.get(value, 0) + 1
        return max(counts, key=counts.get)

    def is_confirmed(self, min_hits: int) -> bool:
        """True once the track has accumulated at least ``min_hits`` detections."""
        return self.hits >= min_hits


class IoUTracker:
    """Online greedy IoU tracker over a stream of per-frame detections."""

    def __init__(self, config: TrackerConfig | None = None) -> None:
        self.config = config or TrackerConfig()
        self._active: list[Track] = []
        self._finished: list[Track] = []
        self._next_id = 0

    def _match(self, detection: Detection, candidates: list[Track]) -> Track | None:
        """Best matching active track for a detection, if any clears the threshold."""
        best_track: Track | None = None
        best_iou = self.config.iou_threshold
        for track in candidates:
            if self.config.per_category and track.category != detection.category:
                continue
            if self.config.use_motion_prediction:
                frames_ahead = detection.frame_index - track.observations[-1].frame_index
                reference = track.predicted_box(frames_ahead)
            else:
                reference = track.last_box
            iou = reference.iou(detection.box)
            if iou >= best_iou:
                best_iou = iou
                best_track = track
        return best_track

    def step(self, detections: Sequence[Detection]) -> None:
        """Consume the detections of one frame (frames must arrive in time order)."""
        unmatched_tracks = list(self._active)
        ordered = sorted(detections, key=lambda det: -det.confidence)
        for detection in ordered:
            match = self._match(detection, unmatched_tracks)
            if match is not None:
                match.observations.append(detection)
                match.misses = 0
                unmatched_tracks.remove(match)
            else:
                track = Track(track_id=self._next_id, category=detection.category,
                              observations=[detection])
                self._next_id += 1
                self._active.append(track)
        for track in unmatched_tracks:
            track.misses += 1
        still_active: list[Track] = []
        for track in self._active:
            if track.misses > self.config.max_age:
                self._finished.append(track)
            else:
                still_active.append(track)
        self._active = still_active

    def finalize(self) -> list[Track]:
        """Flush remaining active tracks and return every *confirmed* track."""
        all_tracks = self._finished + self._active
        self._finished = []
        self._active = []
        return [track for track in all_tracks if track.is_confirmed(self.config.min_hits)]


def track_frames(frames_with_detections: Iterable[tuple[Any, Sequence[Detection]]],
                 config: TrackerConfig | None = None) -> list[Track]:
    """Run the tracker over ``(frame, detections)`` pairs and return confirmed tracks."""
    tracker = IoUTracker(config)
    for _frame, detections in frames_with_detections:
        tracker.step(detections)
    return tracker.finalize()


def track_detection_stream(detections_by_frame: Iterable[Sequence[Detection]],
                           config: TrackerConfig | None = None) -> list[Track]:
    """Run the tracker over a bare stream of per-frame detection lists."""
    tracker = IoUTracker(config)
    for detections in detections_by_frame:
        tracker.step(detections)
    return tracker.finalize()
