"""Synthetic object detector.

The detector consumes ground-truth frames from the scene simulator and
produces per-frame detections with the failure modes of a real CNN detector:

* **missed detections** — each visible object is dropped in a frame with a
  configurable probability (per category or global), reproducing the miss
  rates reported in Table 1 (29% for campus, 5% for highway, 76% for urban);
* **localisation noise** — detected boxes are jittered;
* **false positives** — spurious detections appear at a configurable rate;
* **attribute read errors** — attributes such as colour or licence plate are
  occasionally misread or unavailable.

All randomness is *derived deterministically* from ``(seed, stream, object_id,
frame_index)`` via the counter-based splitmix64 scheme of
:mod:`repro.utils.hashing`, so the same frame always produces the same
detections, regardless of how many times (or in which order) chunks are
processed.  This keeps the non-private baseline and the Privid execution of a
query comparable apart from chunking effects, exactly as in the paper's
evaluation.

The preferred entry point is :meth:`SyntheticDetector.detect_batch`, which
detects a whole :class:`~repro.video.video.FrameBatch` (typically one chunk)
with vectorized draws and returns a columnar :class:`DetectionBatch` — frame
index/timestamp/box/confidence arrays plus per-key attribute columns — so the
post-detection dataflow (tracker, row emission) can stay array-native.
:class:`Detection` objects are only materialised at API boundaries through
the batch's lazy adapters; the per-frame :meth:`detect_frame` path computes
the same draws scalar-by-scalar and therefore yields bit-identical
detections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

from repro.utils.hashing import (
    signed_draw,
    stream_key,
    string_token,
    unit_draw,
    unit_draws,
    unit_draws_matrix,
)
from repro.video.geometry import BoundingBox
from repro.video.video import FrameTruth, VisibleObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.video.video import FrameBatch

#: Lane tokens naming the detector's independent draw streams.
_TAG_MISS = string_token("miss")
_TAG_JITTER_X = string_token("jx")
_TAG_JITTER_Y = string_token("jy")
_TAG_CONFIDENCE = string_token("conf")
_TAG_ATTRIBUTE = string_token("attr")
_TAG_FP_COUNT = string_token("fp-count")
_TAG_FP_X = string_token("fp-x")
_TAG_FP_Y = string_token("fp-y")


@dataclass(frozen=True, slots=True)
class Detection:
    """One detector output in one frame.

    Detections carry no stable identity across frames — linking them into
    tracks is the tracker's job — but they do carry the attribute readings
    (colour, plate, ...) a downstream executable may use.  Slotted: the
    columnar pipeline only materialises Detections at adapter boundaries,
    but those boundaries can still cover thousands of detections per chunk.
    """

    timestamp: float
    frame_index: int
    category: str
    box: BoundingBox
    confidence: float
    attributes: Mapping[str, Any] = field(default_factory=dict)

    _FIELDS = ("timestamp", "frame_index", "category", "box", "confidence",
               "attributes")

    def __getstate__(self) -> tuple[Any, ...]:
        # Explicit state hooks: default slot-state pickling restores via
        # setattr, which a frozen dataclass forbids on Python 3.10.
        return tuple(getattr(self, name) for name in self._FIELDS)

    def __setstate__(self, state: tuple[Any, ...]) -> None:
        for name, value in zip(self._FIELDS, state):
            object.__setattr__(self, name, value)


@dataclass
class DetectionBatch:
    """Columnar detections for one frame batch (typically one chunk).

    Detections are stored as parallel arrays in *segment-major* order: each
    object's detections are contiguous (frames ascending), objects in batch
    order, false-positive slots after them.  Because any object contributes
    at most one detection per frame, ascending storage order *within a
    frame* equals the scalar path's per-frame emission order — consumers
    that need frame-major order (the tracker, the per-frame adapters) sort
    stably by ``frame_positions`` and inherit the correct within-frame
    order from the storage-order tie-break.  ``attributes`` maps each
    attribute key ever observed in the batch to a ``(present, values)``
    column pair: ``present`` marks the detections carrying the key and
    ``values`` holds the observed value (unspecified where absent).
    """

    num_frames: int
    frame_positions: np.ndarray
    frame_indices: np.ndarray
    timestamps: np.ndarray
    boxes: np.ndarray
    confidences: np.ndarray
    category_ids: np.ndarray
    categories: tuple[str, ...]
    attributes: dict[str, tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.frame_positions.size)

    @property
    def num_detections(self) -> int:
        """Total detections across the batch."""
        return int(self.frame_positions.size)

    def category_of(self, index: int) -> str:
        """Category label of one detection."""
        return self.categories[int(self.category_ids[index])]

    def attributes_of(self, index: int) -> dict[str, Any]:
        """Attribute mapping of one detection (materialised from the columns)."""
        observed: dict[str, Any] = {}
        for key, (present, values) in self.attributes.items():
            if present[index]:
                observed[key] = values[index]
        return observed

    def detection_at(self, index: int) -> Detection:
        """Materialise one :class:`Detection` from the columns."""
        x, y, width, height = self.boxes[index].tolist()
        return Detection(
            timestamp=float(self.timestamps[index]),
            frame_index=int(self.frame_indices[index]),
            category=self.category_of(index),
            box=BoundingBox(x, y, width, height),
            confidence=float(self.confidences[index]),
            attributes=self.attributes_of(index),
        )

    def first_index_per_frame(self) -> tuple[np.ndarray, np.ndarray]:
        """``(frame_positions, detection_index)`` of each frame's first detection.

        Within a frame, ascending storage index equals scalar emission
        order, so the first occurrence of each frame position (which
        ``np.unique`` reports relative to the original array) is that
        frame's first detection.
        """
        positions, first = np.unique(self.frame_positions, return_index=True)
        return positions, first

    def per_frame_detections(self) -> list[list[Detection]]:
        """Materialise the legacy per-frame ``Detection`` lists (lazy adapter).

        Element-for-element identical to what the scalar
        :meth:`SyntheticDetector.detect_frame` loop produces over the same
        frames — the parity contract the columnar pipeline is tested against.
        """
        per_frame: list[list[Detection]] = [[] for _ in range(self.num_frames)]
        if not self.frame_positions.size:
            return per_frame
        positions_list = self.frame_positions.tolist()
        frames_list = self.frame_indices.tolist()
        timestamps_list = self.timestamps.tolist()
        boxes_list = self.boxes.tolist()
        confidences_list = self.confidences.tolist()
        category_ids = self.category_ids.tolist()
        categories = self.categories
        attribute_columns = [(key, present, values)
                             for key, (present, values) in self.attributes.items()]
        for index, position in enumerate(positions_list):
            attributes: dict[str, Any] = {}
            for key, present, values in attribute_columns:
                if present[index]:
                    attributes[key] = values[index]
            x, y, width, height = boxes_list[index]
            per_frame[position].append(Detection(
                timestamp=timestamps_list[index],
                frame_index=frames_list[index],
                category=categories[category_ids[index]],
                box=BoundingBox(x, y, width, height),
                confidence=confidences_list[index],
                attributes=attributes,
            ))
        return per_frame


@dataclass(frozen=True)
class DetectorConfig:
    """Failure-mode parameters of the synthetic detector."""

    miss_rate: float = 0.1
    category_miss_rates: Mapping[str, float] = field(default_factory=dict)
    false_positives_per_frame: float = 0.0
    position_jitter: float = 2.0
    attribute_error_rate: float = 0.02
    min_confidence: float = 0.5
    detectable_categories: frozenset[str] = frozenset(
        {"person", "car", "taxi", "bike", "tree", "traffic_light"})

    def miss_rate_for(self, category: str) -> float:
        """Effective miss probability for a category."""
        return float(self.category_miss_rates.get(category, self.miss_rate))


class SyntheticDetector:
    """Stateless, deterministic stand-in for a CNN object detector."""

    def __init__(self, config: DetectorConfig | None = None, *, seed: int = 0) -> None:
        self.config = config or DetectorConfig()
        self.seed = int(seed)

    def _key(self, tag: int, object_id: str, *extra: int) -> int:
        """Stream key for one (tag, object) draw stream."""
        return stream_key(self.seed, tag, string_token(object_id), *extra)

    def _detects(self, visible_object: VisibleObject, frame_index: int) -> bool:
        """Decide (deterministically) whether the object is detected in this frame."""
        miss_rate = self.config.miss_rate_for(visible_object.category)
        draw = unit_draw(self._key(_TAG_MISS, visible_object.object_id), frame_index)
        return draw >= miss_rate

    def _jittered_box(self, visible_object: VisibleObject, frame_index: int) -> BoundingBox:
        """Apply deterministic localisation noise to the ground-truth box."""
        jitter = self.config.position_jitter
        if jitter <= 0:
            return visible_object.box
        dx = jitter * signed_draw(self._key(_TAG_JITTER_X, visible_object.object_id),
                                  frame_index)
        dy = jitter * signed_draw(self._key(_TAG_JITTER_Y, visible_object.object_id),
                                  frame_index)
        return visible_object.box.translate(dx, dy)

    def _observed_attributes(self, visible_object: VisibleObject, frame_index: int,
                             timestamp: float) -> dict[str, Any]:
        """Read the object's attributes, occasionally failing per attribute."""
        observed: dict[str, Any] = {}
        error_rate = self.config.attribute_error_rate
        for key, value in visible_object.scene_object.attributes_at(timestamp).items():
            draw = unit_draw(self._key(_TAG_ATTRIBUTE, visible_object.object_id,
                                       string_token(key)), frame_index)
            if draw >= error_rate:
                observed[key] = value
        return observed

    def _confidence(self, visible_object: VisibleObject, frame_index: int) -> float:
        """Deterministic pseudo-confidence in [min_confidence, 1]."""
        spread = 1.0 - self.config.min_confidence
        return self.config.min_confidence + spread * unit_draw(
            self._key(_TAG_CONFIDENCE, visible_object.object_id), frame_index)

    def _false_positives(self, frame: FrameTruth, frame_width: float,
                         frame_height: float) -> list[Detection]:
        """Generate spurious detections for a frame (deterministic count and placement)."""
        rate = self.config.false_positives_per_frame
        if rate <= 0:
            return []
        count = int(rate) + (1 if unit_draw(stream_key(self.seed, _TAG_FP_COUNT),
                                            frame.frame_index) < rate % 1 else 0)
        detections: list[Detection] = []
        for slot in range(count):
            x = frame_width * unit_draw(stream_key(self.seed, _TAG_FP_X, slot),
                                        frame.frame_index)
            y = frame_height * unit_draw(stream_key(self.seed, _TAG_FP_Y, slot),
                                         frame.frame_index)
            detections.append(Detection(
                timestamp=frame.timestamp,
                frame_index=frame.frame_index,
                category="person",
                box=BoundingBox(x, y, 20.0, 40.0),
                confidence=self.config.min_confidence,
                attributes={"false_positive": True},
            ))
        return detections

    def detect_frame(self, frame: FrameTruth, *, frame_width: float = 1280.0,
                     frame_height: float = 720.0) -> list[Detection]:
        """Detect objects in a single ground-truth frame (legacy scalar path)."""
        detections: list[Detection] = []
        for visible_object in frame.visible:
            if visible_object.category not in self.config.detectable_categories:
                continue
            if not self._detects(visible_object, frame.frame_index):
                continue
            detections.append(Detection(
                timestamp=frame.timestamp,
                frame_index=frame.frame_index,
                category=visible_object.category,
                box=self._jittered_box(visible_object, frame.frame_index),
                confidence=self._confidence(visible_object, frame.frame_index),
                attributes=self._observed_attributes(visible_object, frame.frame_index,
                                                     frame.timestamp),
            ))
        detections.extend(self._false_positives(frame, frame_width, frame_height))
        return detections

    def detect_batch(self, batch: "FrameBatch", *, frame_width: float = 1280.0,
                     frame_height: float = 720.0,
                     categories: Iterable[str] | None = None) -> DetectionBatch:
        """Detect a whole frame batch at once as a columnar :class:`DetectionBatch`.

        All miss/jitter/confidence/attribute draws for every object are
        computed as vectorized splitmix64 lanes over the frame indices, and
        the detected (object, frame) pairs of the whole chunk drop out of a
        single ``nonzero`` over the stacked miss matrix — no per-detection
        Python work at all.  The per-(seed, object, frame) keying — and
        therefore every draw — is bit-identical to :meth:`detect_frame` over
        the same frames (the batch's
        :meth:`DetectionBatch.per_frame_detections` adapter restores the
        legacy per-frame lists exactly).  ``categories`` optionally restricts
        the output (and skips the work) to the given object classes,
        mirroring the post-hoc filter the executables used to apply.
        """
        config = self.config
        wanted = frozenset(categories) if categories is not None else None
        num_frames = len(batch)
        category_registry: dict[str, int] = {}
        blocks: list[_Block] = []
        if num_frames:
            jitter = config.position_jitter
            spread = 1.0 - config.min_confidence
            error_rate = config.attribute_error_rate
            # First pass: collect every draw stream of the chunk — four per
            # object (miss, jitter x/y, confidence) plus one per attribute —
            # so all of them evaluate in a single stacked mix64 pass over the
            # frame lanes.
            entries: list[tuple[Any, str, int, list[str]]] = []
            stream_keys: list[int] = []
            for entry in batch.objects:
                scene_object = entry.scene_object
                category = scene_object.category
                if category not in config.detectable_categories:
                    continue
                if wanted is not None and category not in wanted:
                    continue
                # No visibility pre-check: FrameBatch entries carry at least
                # one visible frame by construction (_batch_object returns
                # None otherwise and the chunk filters drop emptied entries),
                # and an all-hidden entry would simply contribute no rows.
                object_token = string_token(scene_object.object_id)
                attribute_keys = scene_object.attribute_keys()
                entries.append((entry, category, len(stream_keys), attribute_keys))
                stream_keys.append(stream_key(self.seed, _TAG_MISS, object_token))
                stream_keys.append(stream_key(self.seed, _TAG_JITTER_X, object_token))
                stream_keys.append(stream_key(self.seed, _TAG_JITTER_Y, object_token))
                stream_keys.append(stream_key(self.seed, _TAG_CONFIDENCE, object_token))
                stream_keys.extend(stream_key(self.seed, _TAG_ATTRIBUTE, object_token,
                                              string_token(key)) for key in attribute_keys)
            if entries:
                draws = unit_draws_matrix(stream_keys, batch.frame_indices)
                num_entries = len(entries)
                # One stacked pass over every entry: detected (object, frame)
                # pairs fall out of a single nonzero, in entry-major order —
                # each object appears at most once per frame, so ascending
                # storage order within a frame equals the scalar emission
                # order by construction.
                first_rows = np.fromiter((first_row for _, _, first_row, _ in entries),
                                         dtype=np.int64, count=num_entries)
                miss_rates = np.fromiter(
                    (config.miss_rate_for(category) for _, category, _, _ in entries),
                    dtype=np.float64, count=num_entries)
                if num_entries == 1:
                    visible_matrix = entries[0][0].visible[np.newaxis]
                    boxes_stack = entries[0][0].boxes[np.newaxis]
                else:
                    # Manual fill beats np.stack's generic dispatch for the
                    # handful of entries a chunk carries.
                    visible_matrix = np.empty((num_entries, num_frames), dtype=bool)
                    boxes_stack = np.empty((num_entries, num_frames, 4),
                                           dtype=np.float64)
                    for position, (entry, _, _, _) in enumerate(entries):
                        visible_matrix[position] = entry.visible
                        boxes_stack[position] = entry.boxes
                detected = (draws[first_rows] >= miss_rates[:, np.newaxis]) & visible_matrix
                entry_ids, positions = np.nonzero(detected)
                if positions.size:
                    flat_boxes = boxes_stack[entry_ids, positions]
                    xs = flat_boxes[:, 0]
                    ys = flat_boxes[:, 1]
                    det_rows = first_rows[entry_ids]
                    if jitter > 0:
                        xs = xs + jitter * (2.0 * draws[det_rows + 1, positions] - 1.0)
                        ys = ys + jitter * (2.0 * draws[det_rows + 2, positions] - 1.0)
                    confidences = config.min_confidence \
                        + spread * draws[det_rows + 3, positions]
                    boxes = np.empty((positions.size, 4), dtype=np.float64)
                    boxes[:, 0] = xs
                    boxes[:, 1] = ys
                    boxes[:, 2] = flat_boxes[:, 2]
                    boxes[:, 3] = flat_boxes[:, 3]
                    entry_categories = np.fromiter(
                        (category_registry.setdefault(category, len(category_registry))
                         for _, category, _, _ in entries),
                        dtype=np.int64, count=num_entries)
                    attributes: list[tuple[str, Any, Any, np.ndarray, np.ndarray]] = []
                    if any(attribute_keys for _, _, _, attribute_keys in entries):
                        counts = np.bincount(entry_ids, minlength=num_entries)
                        starts = np.zeros(num_entries + 1, dtype=np.int64)
                        np.cumsum(counts, out=starts[1:])
                        for index, (entry, _, first_row, attribute_keys) in enumerate(entries):
                            if not attribute_keys or starts[index] == starts[index + 1]:
                                continue
                            entry_slice = slice(int(starts[index]), int(starts[index + 1]))
                            entry_positions = positions[entry_slice]
                            series = entry.scene_object.attribute_series(
                                batch.timestamps[entry_positions])
                            local = np.arange(entry_slice.start, entry_slice.stop,
                                              dtype=np.int64)
                            for offset, (key, constant, values) in enumerate(series):
                                kept = draws[first_row + 4 + offset,
                                             entry_positions] >= error_rate
                                attributes.append((key, constant, values,
                                                   local[kept], np.nonzero(kept)[0]))
                    blocks.append(_Block(
                        positions=positions,
                        boxes=boxes,
                        confidences=confidences,
                        category_ids=entry_categories[entry_ids],
                        attributes=attributes,
                    ))
            blocks.extend(self._false_positive_blocks(batch, frame_width, frame_height,
                                                      wanted=wanted,
                                                      category_registry=category_registry))
        return _assemble_batch(batch, num_frames, blocks,
                               tuple(category_registry))

    def _false_positive_blocks(self, batch: "FrameBatch", frame_width: float,
                               frame_height: float, *,
                               wanted: frozenset[str] | None,
                               category_registry: dict[str, int]) -> list["_Block"]:
        """Vectorized false-positive column blocks, one per placement slot."""
        rate = self.config.false_positives_per_frame
        if rate <= 0:
            return []
        if wanted is not None and "person" not in wanted:
            return []
        base = int(rate)
        fraction = rate % 1
        frames = batch.frame_indices
        counts = np.full(frames.size, base, dtype=np.int64)
        if fraction > 0:
            counts = counts + (unit_draws(stream_key(self.seed, _TAG_FP_COUNT),
                                          frames) < fraction)
        max_count = int(counts.max(initial=0))
        blocks: list[_Block] = []
        for slot in range(max_count):
            selected = np.nonzero(counts > slot)[0]
            if selected.size == 0:
                break
            slot_frames = frames[selected]
            boxes = np.empty((selected.size, 4), dtype=np.float64)
            boxes[:, 0] = frame_width * unit_draws(
                stream_key(self.seed, _TAG_FP_X, slot), slot_frames)
            boxes[:, 1] = frame_height * unit_draws(
                stream_key(self.seed, _TAG_FP_Y, slot), slot_frames)
            boxes[:, 2] = 20.0
            boxes[:, 3] = 40.0
            person = category_registry.setdefault("person", len(category_registry))
            all_rows = np.arange(selected.size, dtype=np.int64)
            blocks.append(_Block(
                positions=selected,
                boxes=boxes,
                confidences=np.full(selected.size, self.config.min_confidence),
                category_ids=np.full(selected.size, person, dtype=np.int64),
                attributes=[("false_positive", True, None, all_rows, all_rows)],
            ))
        return blocks


    def detect_frames(self, frames: Sequence[FrameTruth] | Any, *, frame_width: float = 1280.0,
                      frame_height: float = 720.0) -> list[tuple[FrameTruth, list[Detection]]]:
        """Detect objects in a sequence of frames, preserving order."""
        return [(frame, self.detect_frame(frame, frame_width=frame_width,
                                          frame_height=frame_height))
                for frame in frames]

    def expected_miss_fraction(self, frames: Sequence[FrameTruth]) -> float:
        """Empirical fraction of ground-truth object-frames the detector missed.

        Used by the Table 1 benchmark to report the "% objects CV missed"
        column alongside the duration estimates.
        """
        total = 0
        missed = 0
        for frame in frames:
            for visible_object in frame.visible:
                if visible_object.category not in self.config.detectable_categories:
                    continue
                total += 1
                if not self._detects(visible_object, frame.frame_index):
                    missed += 1
        if total == 0:
            return 0.0
        return missed / total


@dataclass
class _Block:
    """Columnar detections of one assembly block, in storage order.

    One block covers all ground-truth objects of a chunk (entry-major), and
    one more per false-positive placement slot.  ``attributes`` holds
    ``(key, constant, values, local_rows, value_rows)`` tuples: the
    attribute applies to the block-relative ``local_rows``, with the value
    being ``constant`` when ``values`` is None and ``values[value_rows[i]]``
    otherwise.
    """

    positions: np.ndarray
    boxes: np.ndarray
    confidences: np.ndarray
    category_ids: np.ndarray
    attributes: list[tuple[str, Any, Any, np.ndarray, np.ndarray]]


def _assign_attribute(values: np.ndarray, indices: np.ndarray, value: Any) -> None:
    """Broadcast one attribute value into an object column without unrolling.

    Sequence-valued attributes must be assigned element by element — numpy
    would otherwise try to scatter the sequence across the indices.
    """
    if isinstance(value, (list, tuple, set, dict, np.ndarray)):
        for index in indices.tolist():
            values[index] = value
    else:
        values[indices] = value


def _assemble_batch(batch: "FrameBatch", num_frames: int, blocks: list[_Block],
                    categories: tuple[str, ...]) -> DetectionBatch:
    """Concatenate assembly blocks into one segment-major DetectionBatch."""
    if not blocks:
        return DetectionBatch(
            num_frames=num_frames,
            frame_positions=np.empty(0, dtype=np.int64),
            frame_indices=np.empty(0, dtype=np.int64),
            timestamps=np.empty(0, dtype=np.float64),
            boxes=np.empty((0, 4), dtype=np.float64),
            confidences=np.empty(0, dtype=np.float64),
            category_ids=np.empty(0, dtype=np.int64),
            categories=categories,
        )
    if len(blocks) == 1:
        block = blocks[0]
        positions = block.positions
        boxes = block.boxes
        confidences = block.confidences
        category_ids = block.category_ids
    else:
        positions = np.concatenate([block.positions for block in blocks])
        boxes = np.concatenate([block.boxes for block in blocks])
        confidences = np.concatenate([block.confidences for block in blocks])
        category_ids = np.concatenate([block.category_ids for block in blocks])
    total = positions.size
    attributes: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    offset = 0
    for block in blocks:
        for key, constant, values, local_rows, value_rows in block.attributes:
            if key not in attributes:
                attributes[key] = (np.zeros(total, dtype=bool),
                                   np.empty(total, dtype=object))
            present, column = attributes[key]
            targets = local_rows + offset if offset else local_rows
            if targets.size:
                present[targets] = True
                if values is None:
                    _assign_attribute(column, targets, constant)
                else:
                    for destination, source in zip(targets.tolist(),
                                                   value_rows.tolist()):
                        column[destination] = values[source]
        offset += block.positions.size
    return DetectionBatch(
        num_frames=num_frames,
        frame_positions=positions,
        frame_indices=batch.frame_indices[positions],
        timestamps=batch.timestamps[positions],
        boxes=boxes,
        confidences=confidences,
        category_ids=category_ids,
        categories=categories,
        attributes=attributes,
    )
