"""Synthetic object detector.

The detector consumes ground-truth frames from the scene simulator and
produces per-frame detections with the failure modes of a real CNN detector:

* **missed detections** — each visible object is dropped in a frame with a
  configurable probability (per category or global), reproducing the miss
  rates reported in Table 1 (29% for campus, 5% for highway, 76% for urban);
* **localisation noise** — detected boxes are jittered;
* **false positives** — spurious detections appear at a configurable rate;
* **attribute read errors** — attributes such as colour or licence plate are
  occasionally misread or unavailable.

All randomness is *derived deterministically* from ``(seed, stream, object_id,
frame_index)`` via the counter-based splitmix64 scheme of
:mod:`repro.utils.hashing`, so the same frame always produces the same
detections, regardless of how many times (or in which order) chunks are
processed.  This keeps the non-private baseline and the Privid execution of a
query comparable apart from chunking effects, exactly as in the paper's
evaluation.

The preferred entry point is :meth:`SyntheticDetector.detect_batch`, which
detects a whole :class:`~repro.video.video.FrameBatch` (typically one chunk)
with vectorized draws — the per-frame :meth:`detect_frame` path computes the
same draws scalar-by-scalar and therefore yields bit-identical detections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Sequence

import numpy as np

from repro.utils.hashing import (
    signed_draw,
    stream_key,
    string_token,
    unit_draw,
    unit_draws,
    unit_draws_matrix,
)
from repro.video.geometry import BoundingBox
from repro.video.video import FrameTruth, VisibleObject

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.video.video import FrameBatch

#: Lane tokens naming the detector's independent draw streams.
_TAG_MISS = string_token("miss")
_TAG_JITTER_X = string_token("jx")
_TAG_JITTER_Y = string_token("jy")
_TAG_CONFIDENCE = string_token("conf")
_TAG_ATTRIBUTE = string_token("attr")
_TAG_FP_COUNT = string_token("fp-count")
_TAG_FP_X = string_token("fp-x")
_TAG_FP_Y = string_token("fp-y")


@dataclass(frozen=True)
class Detection:
    """One detector output in one frame.

    Detections carry no stable identity across frames — linking them into
    tracks is the tracker's job — but they do carry the attribute readings
    (colour, plate, ...) a downstream executable may use.
    """

    timestamp: float
    frame_index: int
    category: str
    box: BoundingBox
    confidence: float
    attributes: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class DetectorConfig:
    """Failure-mode parameters of the synthetic detector."""

    miss_rate: float = 0.1
    category_miss_rates: Mapping[str, float] = field(default_factory=dict)
    false_positives_per_frame: float = 0.0
    position_jitter: float = 2.0
    attribute_error_rate: float = 0.02
    min_confidence: float = 0.5
    detectable_categories: frozenset[str] = frozenset(
        {"person", "car", "taxi", "bike", "tree", "traffic_light"})

    def miss_rate_for(self, category: str) -> float:
        """Effective miss probability for a category."""
        return float(self.category_miss_rates.get(category, self.miss_rate))


class SyntheticDetector:
    """Stateless, deterministic stand-in for a CNN object detector."""

    def __init__(self, config: DetectorConfig | None = None, *, seed: int = 0) -> None:
        self.config = config or DetectorConfig()
        self.seed = int(seed)

    def _key(self, tag: int, object_id: str, *extra: int) -> int:
        """Stream key for one (tag, object) draw stream."""
        return stream_key(self.seed, tag, string_token(object_id), *extra)

    def _detects(self, visible_object: VisibleObject, frame_index: int) -> bool:
        """Decide (deterministically) whether the object is detected in this frame."""
        miss_rate = self.config.miss_rate_for(visible_object.category)
        draw = unit_draw(self._key(_TAG_MISS, visible_object.object_id), frame_index)
        return draw >= miss_rate

    def _jittered_box(self, visible_object: VisibleObject, frame_index: int) -> BoundingBox:
        """Apply deterministic localisation noise to the ground-truth box."""
        jitter = self.config.position_jitter
        if jitter <= 0:
            return visible_object.box
        dx = jitter * signed_draw(self._key(_TAG_JITTER_X, visible_object.object_id),
                                  frame_index)
        dy = jitter * signed_draw(self._key(_TAG_JITTER_Y, visible_object.object_id),
                                  frame_index)
        return visible_object.box.translate(dx, dy)

    def _observed_attributes(self, visible_object: VisibleObject, frame_index: int,
                             timestamp: float) -> dict[str, Any]:
        """Read the object's attributes, occasionally failing per attribute."""
        observed: dict[str, Any] = {}
        error_rate = self.config.attribute_error_rate
        for key, value in visible_object.scene_object.attributes_at(timestamp).items():
            draw = unit_draw(self._key(_TAG_ATTRIBUTE, visible_object.object_id,
                                       string_token(key)), frame_index)
            if draw >= error_rate:
                observed[key] = value
        return observed

    def _confidence(self, visible_object: VisibleObject, frame_index: int) -> float:
        """Deterministic pseudo-confidence in [min_confidence, 1]."""
        spread = 1.0 - self.config.min_confidence
        return self.config.min_confidence + spread * unit_draw(
            self._key(_TAG_CONFIDENCE, visible_object.object_id), frame_index)

    def _false_positives(self, frame: FrameTruth, frame_width: float,
                         frame_height: float) -> list[Detection]:
        """Generate spurious detections for a frame (deterministic count and placement)."""
        rate = self.config.false_positives_per_frame
        if rate <= 0:
            return []
        count = int(rate) + (1 if unit_draw(stream_key(self.seed, _TAG_FP_COUNT),
                                            frame.frame_index) < rate % 1 else 0)
        detections: list[Detection] = []
        for slot in range(count):
            x = frame_width * unit_draw(stream_key(self.seed, _TAG_FP_X, slot),
                                        frame.frame_index)
            y = frame_height * unit_draw(stream_key(self.seed, _TAG_FP_Y, slot),
                                         frame.frame_index)
            detections.append(Detection(
                timestamp=frame.timestamp,
                frame_index=frame.frame_index,
                category="person",
                box=BoundingBox(x, y, 20.0, 40.0),
                confidence=self.config.min_confidence,
                attributes={"false_positive": True},
            ))
        return detections

    def detect_frame(self, frame: FrameTruth, *, frame_width: float = 1280.0,
                     frame_height: float = 720.0) -> list[Detection]:
        """Detect objects in a single ground-truth frame (legacy scalar path)."""
        detections: list[Detection] = []
        for visible_object in frame.visible:
            if visible_object.category not in self.config.detectable_categories:
                continue
            if not self._detects(visible_object, frame.frame_index):
                continue
            detections.append(Detection(
                timestamp=frame.timestamp,
                frame_index=frame.frame_index,
                category=visible_object.category,
                box=self._jittered_box(visible_object, frame.frame_index),
                confidence=self._confidence(visible_object, frame.frame_index),
                attributes=self._observed_attributes(visible_object, frame.frame_index,
                                                     frame.timestamp),
            ))
        detections.extend(self._false_positives(frame, frame_width, frame_height))
        return detections

    def detect_batch(self, batch: "FrameBatch", *, frame_width: float = 1280.0,
                     frame_height: float = 720.0,
                     categories: Iterable[str] | None = None) -> list[list[Detection]]:
        """Detect a whole frame batch at once; returns per-frame detection lists.

        All miss/jitter/confidence/attribute draws for an object are computed
        as vectorized splitmix64 lanes over its visible frame indices, so the
        per-(seed, object, frame) keying — and therefore every draw — is
        bit-identical to :meth:`detect_frame` over the same frames.
        ``categories`` optionally restricts the output (and skips the work)
        to the given object classes, mirroring the post-hoc filter the
        executables used to apply.
        """
        config = self.config
        wanted = frozenset(categories) if categories is not None else None
        num_frames = len(batch)
        per_frame: list[list[Detection]] = [[] for _ in range(num_frames)]
        if num_frames == 0:
            return per_frame
        timestamps_list = batch.timestamps.tolist()
        jitter = config.position_jitter
        spread = 1.0 - config.min_confidence
        error_rate = config.attribute_error_rate
        # First pass: collect every draw stream of the chunk — four per object
        # (miss, jitter x/y, confidence) plus one per attribute — so all of
        # them evaluate in a single stacked mix64 pass over the frame lanes.
        entries: list[tuple[Any, str, int, list[str]]] = []
        stream_keys: list[int] = []
        for entry in batch.objects:
            scene_object = entry.scene_object
            category = scene_object.category
            if category not in config.detectable_categories:
                continue
            if wanted is not None and category not in wanted:
                continue
            if not entry.visible.any():
                continue
            object_token = string_token(scene_object.object_id)
            attribute_keys = scene_object.attribute_keys()
            entries.append((entry, category, len(stream_keys), attribute_keys))
            stream_keys.append(stream_key(self.seed, _TAG_MISS, object_token))
            stream_keys.append(stream_key(self.seed, _TAG_JITTER_X, object_token))
            stream_keys.append(stream_key(self.seed, _TAG_JITTER_Y, object_token))
            stream_keys.append(stream_key(self.seed, _TAG_CONFIDENCE, object_token))
            stream_keys.extend(stream_key(self.seed, _TAG_ATTRIBUTE, object_token,
                                          string_token(key)) for key in attribute_keys)
        if entries:
            draws = unit_draws_matrix(stream_keys, batch.frame_indices)
        for entry, category, first_row, attribute_keys in entries:
            scene_object = entry.scene_object
            positions = np.nonzero(entry.visible)[0]
            miss_rate = config.miss_rate_for(category)
            detected = draws[first_row, positions] >= miss_rate
            if not detected.any():
                continue
            positions = positions[detected]
            boxes = entry.boxes[positions]
            xs = boxes[:, 0]
            ys = boxes[:, 1]
            if jitter > 0:
                xs = xs + jitter * (2.0 * draws[first_row + 1, positions] - 1.0)
                ys = ys + jitter * (2.0 * draws[first_row + 2, positions] - 1.0)
            confidences = config.min_confidence + spread * draws[first_row + 3, positions]
            if attribute_keys:
                attribute_series = scene_object.attribute_series(batch.timestamps[positions])
                attribute_columns = [
                    (key, constant, values,
                     draws[first_row + 4 + offset, positions] >= error_rate)
                    for offset, (key, constant, values) in enumerate(attribute_series)
                ]
            else:
                attribute_columns = []
            xs_list = xs.tolist()
            ys_list = ys.tolist()
            widths_list = boxes[:, 2].tolist()
            heights_list = boxes[:, 3].tolist()
            confidences_list = confidences.tolist()
            frames_list = batch.frame_indices[positions].tolist()
            for row, position in enumerate(positions.tolist()):
                attributes: dict[str, Any] = {}
                for key, constant, values, kept in attribute_columns:
                    if kept[row]:
                        attributes[key] = constant if values is None else values[row]
                per_frame[position].append(Detection(
                    timestamp=timestamps_list[position],
                    frame_index=frames_list[row],
                    category=category,
                    box=BoundingBox(xs_list[row], ys_list[row],
                                    widths_list[row], heights_list[row]),
                    confidence=confidences_list[row],
                    attributes=attributes,
                ))
        self._false_positive_batch(batch, per_frame, frame_width, frame_height,
                                   wanted=wanted)
        return per_frame

    def _false_positive_batch(self, batch: "FrameBatch",
                              per_frame: list[list[Detection]],
                              frame_width: float, frame_height: float, *,
                              wanted: frozenset[str] | None) -> None:
        """Append vectorized false positives to each frame's detection list."""
        rate = self.config.false_positives_per_frame
        if rate <= 0:
            return
        if wanted is not None and "person" not in wanted:
            return
        base = int(rate)
        fraction = rate % 1
        frames = batch.frame_indices
        counts = np.full(frames.size, base, dtype=np.int64)
        if fraction > 0:
            counts = counts + (unit_draws(stream_key(self.seed, _TAG_FP_COUNT),
                                          frames) < fraction)
        max_count = int(counts.max(initial=0))
        timestamps_list = batch.timestamps.tolist()
        for slot in range(max_count):
            selected = np.nonzero(counts > slot)[0]
            if selected.size == 0:
                break
            slot_frames = frames[selected]
            xs = frame_width * unit_draws(stream_key(self.seed, _TAG_FP_X, slot),
                                          slot_frames)
            ys = frame_height * unit_draws(stream_key(self.seed, _TAG_FP_Y, slot),
                                           slot_frames)
            xs_list = xs.tolist()
            ys_list = ys.tolist()
            frames_list = slot_frames.tolist()
            for row, position in enumerate(selected.tolist()):
                per_frame[position].append(Detection(
                    timestamp=timestamps_list[position],
                    frame_index=frames_list[row],
                    category="person",
                    box=BoundingBox(xs_list[row], ys_list[row], 20.0, 40.0),
                    confidence=self.config.min_confidence,
                    attributes={"false_positive": True},
                ))

    def detect_frames(self, frames: Sequence[FrameTruth] | Any, *, frame_width: float = 1280.0,
                      frame_height: float = 720.0) -> list[tuple[FrameTruth, list[Detection]]]:
        """Detect objects in a sequence of frames, preserving order."""
        return [(frame, self.detect_frame(frame, frame_width=frame_width,
                                          frame_height=frame_height))
                for frame in frames]

    def expected_miss_fraction(self, frames: Sequence[FrameTruth]) -> float:
        """Empirical fraction of ground-truth object-frames the detector missed.

        Used by the Table 1 benchmark to report the "% objects CV missed"
        column alongside the duration estimates.
        """
        total = 0
        missed = 0
        for frame in frames:
            for visible_object in frame.visible:
                if visible_object.category not in self.config.detectable_categories:
                    continue
                total += 1
                if not self._detects(visible_object, frame.frame_index):
                    missed += 1
        if total == 0:
            return 0.0
        return missed / total
