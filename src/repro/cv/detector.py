"""Synthetic object detector.

The detector consumes ground-truth frames from the scene simulator and
produces per-frame detections with the failure modes of a real CNN detector:

* **missed detections** — each visible object is dropped in a frame with a
  configurable probability (per category or global), reproducing the miss
  rates reported in Table 1 (29% for campus, 5% for highway, 76% for urban);
* **localisation noise** — detected boxes are jittered;
* **false positives** — spurious detections appear at a configurable rate;
* **attribute read errors** — attributes such as colour or licence plate are
  occasionally misread or unavailable.

All randomness is *derived deterministically* from ``(seed, object_id,
frame_index)`` so the same frame always produces the same detections,
regardless of how many times (or in which order) chunks are processed.  This
keeps the non-private baseline and the Privid execution of a query comparable
apart from chunking effects, exactly as in the paper's evaluation.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.video.geometry import BoundingBox
from repro.video.video import FrameTruth, VisibleObject


@dataclass(frozen=True)
class Detection:
    """One detector output in one frame.

    Detections carry no stable identity across frames — linking them into
    tracks is the tracker's job — but they do carry the attribute readings
    (colour, plate, ...) a downstream executable may use.
    """

    timestamp: float
    frame_index: int
    category: str
    box: BoundingBox
    confidence: float
    attributes: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class DetectorConfig:
    """Failure-mode parameters of the synthetic detector."""

    miss_rate: float = 0.1
    category_miss_rates: Mapping[str, float] = field(default_factory=dict)
    false_positives_per_frame: float = 0.0
    position_jitter: float = 2.0
    attribute_error_rate: float = 0.02
    min_confidence: float = 0.5
    detectable_categories: frozenset[str] = frozenset(
        {"person", "car", "taxi", "bike", "tree", "traffic_light"})

    def miss_rate_for(self, category: str) -> float:
        """Effective miss probability for a category."""
        return float(self.category_miss_rates.get(category, self.miss_rate))


def _unit_hash(*parts: Any) -> float:
    """Deterministic hash of the parts mapped to [0, 1)."""
    digest = hashlib.sha256("|".join(str(part) for part in parts).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") / 2**64


def _signed_hash(*parts: Any) -> float:
    """Deterministic hash of the parts mapped to [-1, 1)."""
    return 2.0 * _unit_hash(*parts) - 1.0


class SyntheticDetector:
    """Stateless, deterministic stand-in for a CNN object detector."""

    def __init__(self, config: DetectorConfig | None = None, *, seed: int = 0) -> None:
        self.config = config or DetectorConfig()
        self.seed = int(seed)

    def _detects(self, visible_object: VisibleObject, frame_index: int) -> bool:
        """Decide (deterministically) whether the object is detected in this frame."""
        miss_rate = self.config.miss_rate_for(visible_object.category)
        draw = _unit_hash(self.seed, "miss", visible_object.object_id, frame_index)
        return draw >= miss_rate

    def _jittered_box(self, visible_object: VisibleObject, frame_index: int) -> BoundingBox:
        """Apply deterministic localisation noise to the ground-truth box."""
        jitter = self.config.position_jitter
        if jitter <= 0:
            return visible_object.box
        dx = jitter * _signed_hash(self.seed, "jx", visible_object.object_id, frame_index)
        dy = jitter * _signed_hash(self.seed, "jy", visible_object.object_id, frame_index)
        return visible_object.box.translate(dx, dy)

    def _observed_attributes(self, visible_object: VisibleObject, frame_index: int,
                             timestamp: float) -> dict[str, Any]:
        """Read the object's attributes, occasionally failing per attribute."""
        observed: dict[str, Any] = {}
        for key, value in visible_object.scene_object.attributes_at(timestamp).items():
            draw = _unit_hash(self.seed, "attr", visible_object.object_id, frame_index, key)
            if draw >= self.config.attribute_error_rate:
                observed[key] = value
        return observed

    def _confidence(self, visible_object: VisibleObject, frame_index: int) -> float:
        """Deterministic pseudo-confidence in [min_confidence, 1]."""
        spread = 1.0 - self.config.min_confidence
        return self.config.min_confidence + spread * _unit_hash(
            self.seed, "conf", visible_object.object_id, frame_index)

    def _false_positives(self, frame: FrameTruth, frame_width: float,
                         frame_height: float) -> list[Detection]:
        """Generate spurious detections for a frame (deterministic count and placement)."""
        rate = self.config.false_positives_per_frame
        if rate <= 0:
            return []
        count = int(rate) + (1 if _unit_hash(self.seed, "fp-count", frame.frame_index) < rate % 1 else 0)
        detections: list[Detection] = []
        for i in range(count):
            x = frame_width * _unit_hash(self.seed, "fp-x", frame.frame_index, i)
            y = frame_height * _unit_hash(self.seed, "fp-y", frame.frame_index, i)
            detections.append(Detection(
                timestamp=frame.timestamp,
                frame_index=frame.frame_index,
                category="person",
                box=BoundingBox(x, y, 20.0, 40.0),
                confidence=self.config.min_confidence,
                attributes={"false_positive": True},
            ))
        return detections

    def detect_frame(self, frame: FrameTruth, *, frame_width: float = 1280.0,
                     frame_height: float = 720.0) -> list[Detection]:
        """Detect objects in a single ground-truth frame."""
        detections: list[Detection] = []
        for visible_object in frame.visible:
            if visible_object.category not in self.config.detectable_categories:
                continue
            if not self._detects(visible_object, frame.frame_index):
                continue
            detections.append(Detection(
                timestamp=frame.timestamp,
                frame_index=frame.frame_index,
                category=visible_object.category,
                box=self._jittered_box(visible_object, frame.frame_index),
                confidence=self._confidence(visible_object, frame.frame_index),
                attributes=self._observed_attributes(visible_object, frame.frame_index,
                                                     frame.timestamp),
            ))
        detections.extend(self._false_positives(frame, frame_width, frame_height))
        return detections

    def detect_frames(self, frames: Sequence[FrameTruth] | Any, *, frame_width: float = 1280.0,
                      frame_height: float = 720.0) -> list[tuple[FrameTruth, list[Detection]]]:
        """Detect objects in a sequence of frames, preserving order."""
        return [(frame, self.detect_frame(frame, frame_width=frame_width,
                                          frame_height=frame_height))
                for frame in frames]

    def expected_miss_fraction(self, frames: Sequence[FrameTruth]) -> float:
        """Empirical fraction of ground-truth object-frames the detector missed.

        Used by the Table 1 benchmark to report the "% objects CV missed"
        column alongside the duration estimates.
        """
        total = 0
        missed = 0
        for frame in frames:
            for visible_object in frame.visible:
                if visible_object.category not in self.config.detectable_categories:
                    continue
                total += 1
                if not self._detects(visible_object, frame.frame_index):
                    missed += 1
        if total == 0:
            return 0.0
        return missed / total
