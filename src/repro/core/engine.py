"""Pluggable chunk execution engines.

Privid's privacy argument requires every chunk to be processed by an
*independent* instance of the analyst's executable whose only input is that
chunk (Appendix B).  Independence makes the split-process stage embarrassingly
parallel: no chunk's output can depend on another chunk's, so the engine that
schedules chunk work is free to reorder, batch, or distribute it, as long as
the concatenated rows come back in chunk order.

Three engines are provided:

* :class:`SerialEngine` — one chunk at a time (the default, and the reference
  behaviour every other engine must reproduce bit for bit);
* :class:`ThreadPoolEngine` — a shared thread pool, useful when executables
  release the GIL or block on I/O;
* :class:`ProcessPoolEngine` — a process pool for CPU-bound executables; the
  unit of work must be picklable.  All bundled scenes qualify — dynamic
  attributes are declarative :mod:`repro.scene.schedules` objects — but a
  scene hand-built with closure-valued dynamic attributes is not, and should
  use the thread or serial engines.

Every engine exposes two entry points: :meth:`~ExecutionEngine.imap_chunks`,
an *ordered streaming map* that pulls chunks lazily from an iterable and
yields outcomes as the head of the stream completes, holding at most a
bounded in-flight window of chunks alive (default ``2 x workers``); and
:meth:`~ExecutionEngine.map_chunks`, a thin ``list(imap_chunks(...))``
adapter for callers that want the batch.  Streaming is what keeps memory and
time-to-first-result independent of the query window length: SPLIT produces
chunks on demand (``repro.video.chunking.iter_chunks``) and the executor
appends rows per chunk as outcomes arrive.

Engines are deliberately ignorant of caching — the
:class:`~repro.core.cache.ChunkResultCache` filters out memoized chunks before
the engine ever sees them (see ``SandboxRunner.iter_chunk_rows``).
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sandbox.environment import ExecutionContext, SandboxRunner
    from repro.video.chunking import Chunk

#: The output of one chunk's sandboxed execution: schema-coerced, stamped rows.
ChunkRows = list[dict[str, Any]]


@dataclass
class ChunkOutcome:
    """Rows of one chunk execution plus whether they are safe to memoize.

    ``fallback`` marks the schema-default rows substituted on a crash or a
    timeout; those can be transient (a wall-clock overrun on a loaded
    machine), so the result cache must never store them.
    """

    rows: ChunkRows
    fallback: bool = False


def execute_chunk(runner: "SandboxRunner", chunk: "Chunk",
                  context: "ExecutionContext") -> ChunkOutcome:
    """The pure unit of work every engine schedules.

    Module-level (rather than a bound method) so process pools can pickle it;
    determinism comes from the runner building a fresh executable instance and
    a freshly seeded detector per chunk, so the result depends only on the
    arguments — never on scheduling order.
    """
    return runner.run_chunk_outcome(chunk, context)


def _execute_chunk_thread(runner: "SandboxRunner", chunk: "Chunk",
                          context: "ExecutionContext") -> ChunkOutcome:
    """Thread-pool unit of work: time out on per-thread CPU time.

    Concurrent threads share the GIL, so a chunk's wall-clock elapsed time is
    inflated by its neighbours; measuring the thread's own CPU time keeps the
    TIMEOUT check equivalent to an uncontended serial run and preserves the
    engines-produce-identical-results guarantee.
    """
    return runner.run_chunk_outcome(chunk, context, thread_clock=True)


def _execute_chunk_list(runner: "SandboxRunner", chunks: list["Chunk"],
                        context: "ExecutionContext") -> list[ChunkOutcome]:
    """Process-pool unit of work: one future per batch of chunks.

    Module-level so process pools can pickle it; batching amortizes the
    per-future pickling round-trip the way ``chunksize`` did for ``pool.map``.
    """
    return [execute_chunk(runner, chunk, context) for chunk in chunks]


def _execute_chunk_list_thread(runner: "SandboxRunner", chunks: list["Chunk"],
                               context: "ExecutionContext") -> list[ChunkOutcome]:
    """Thread-pool unit of work over a batch (per-thread CPU-time TIMEOUT)."""
    return [_execute_chunk_thread(runner, chunk, context) for chunk in chunks]


@runtime_checkable
class ExecutionEngine(Protocol):
    """Schedules independent chunk executions and preserves chunk order."""

    name: str

    def imap_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                    context: "ExecutionContext") -> Iterator[ChunkOutcome]:
        """Stream outcomes in chunk order, pulling chunks lazily.

        At most the engine's in-flight window of chunks may be materialized
        (pulled from ``chunks`` but not yet yielded) at any moment.
        """
        ...  # pragma: no cover - protocol

    def map_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                   context: "ExecutionContext") -> list[ChunkOutcome]:
        """Run every chunk through the runner, returning outcomes in chunk order."""
        ...  # pragma: no cover - protocol


@dataclass
class SerialEngine:
    """Processes chunks one at a time on the calling thread (reference engine)."""

    name: str = field(default="serial", init=False)

    def imap_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                    context: "ExecutionContext") -> Iterator[ChunkOutcome]:
        for chunk in chunks:
            yield execute_chunk(runner, chunk, context)

    def map_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                   context: "ExecutionContext") -> list[ChunkOutcome]:
        return list(self.imap_chunks(runner, chunks, context))

    def shutdown(self) -> None:
        """No pools to release; present so every engine shuts down uniformly."""

    def __enter__(self) -> "SerialEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def _default_workers() -> int:
    return max(2, (os.cpu_count() or 2))


def _stream_through_pool(pool_factory: Callable[[], Executor],
                         unit: Callable[..., list[ChunkOutcome]],
                         runner: "SandboxRunner", chunks: Iterable["Chunk"],
                         context: "ExecutionContext", *,
                         window: int, batch_size: int = 1) -> Iterator[ChunkOutcome]:
    """Ordered streaming map over a (lazily created) executor pool.

    Chunks are pulled from the iterable only as in-flight slots free up, so
    at most ``window`` chunks are ever materialized-but-unyielded; outcomes
    are yielded strictly in chunk order (head-of-line completion).  A
    single-chunk stream runs inline without touching the pool, matching the
    historical short-circuit that keeps tiny queries pool-free.  ``unit``
    maps ``(runner, [chunks], context)`` to a list of outcomes;
    ``batch_size`` groups chunks per future to amortize IPC for process
    pools.
    """
    iterator = iter(chunks)
    first = next(iterator, None)
    if first is None:
        return
    second = next(iterator, None)
    if second is None:
        yield execute_chunk(runner, first, context)
        return
    pool = pool_factory()
    window = max(window, batch_size)
    pending: deque[Any] = deque()  # futures, each resolving to a list of outcomes
    in_flight = 0
    batch: list["Chunk"] = []

    def submit_batch() -> None:
        nonlocal in_flight
        if batch:
            pending.append(pool.submit(unit, runner, list(batch), context))
            in_flight += len(batch)
            batch.clear()

    replay: Iterator["Chunk"] = iter((first, second))
    exhausted = False
    while True:
        while not exhausted and in_flight + len(batch) < window:
            chunk = next(replay, None)
            if chunk is None:
                replay = iterator
                chunk = next(iterator, None)
            if chunk is None:
                exhausted = True
                break
            batch.append(chunk)
            if len(batch) >= batch_size:
                submit_batch()
        submit_batch()
        if not pending:
            return
        for outcome in pending.popleft().result():
            in_flight -= 1
            yield outcome


@dataclass
class ThreadPoolEngine:
    """Processes chunks on a persistent pool of threads.

    Python threads only overlap executables that release the GIL or wait on
    I/O; for the pure-Python synthetic executables the win is modest, but the
    engine exists so real deployments (whose detectors run in native code) get
    parallelism without pickling requirements.  TIMEOUT enforcement uses
    per-thread CPU time (see :func:`_execute_chunk_thread`), so an executable
    that merely *sleeps* past its timeout is only caught by the serial and
    process engines' wall clocks.

    The pool is created lazily on first use and reused across queries; call
    :meth:`shutdown` to release the worker threads early, or use the engine
    as a context manager (``with ThreadPoolEngine() as engine: ...``).

    ``in_flight_window`` bounds how many chunks may be materialized but not
    yet yielded by :meth:`imap_chunks` (default ``2 x workers``): enough to
    keep every worker busy while the head-of-line result is consumed, small
    enough that streaming a week-long window holds only a handful of chunks.
    """

    max_workers: int | None = None
    in_flight_window: int | None = None
    name: str = field(default="thread", init=False)
    _pool: ThreadPoolExecutor | None = field(default=None, init=False, repr=False,
                                             compare=False)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers or _default_workers())
        return self._pool

    def _window(self) -> int:
        if self.in_flight_window is not None:
            if self.in_flight_window <= 0:
                raise ValueError("in_flight_window must be positive")
            return self.in_flight_window
        return 2 * (self.max_workers or _default_workers())

    def imap_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                    context: "ExecutionContext") -> Iterator[ChunkOutcome]:
        return _stream_through_pool(self._ensure_pool, _execute_chunk_list_thread,
                                    runner, chunks, context, window=self._window())

    def map_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                   context: "ExecutionContext") -> list[ChunkOutcome]:
        return list(self.imap_chunks(runner, chunks, context))

    def shutdown(self) -> None:
        """Release the worker threads (the pool is rebuilt on next use)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ThreadPoolEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


@dataclass
class ProcessPoolEngine:
    """Processes chunks on a persistent pool of worker processes.

    The runner, chunk, and context are pickled to the workers, so everything
    they reference must be picklable.  ``chunksize`` batches chunks per IPC
    round-trip to amortize pickling overhead for large sweeps.

    The pool is created lazily on first use and reused across queries (worker
    spawn is far too expensive to pay per PROCESS statement); call
    :meth:`shutdown` to release the worker processes early, or use the
    engine as a context manager.

    ``in_flight_window`` bounds the chunks materialized-but-unyielded by
    :meth:`imap_chunks` (default ``2 x workers``, never below ``chunksize``).
    """

    max_workers: int | None = None
    chunksize: int = 1
    in_flight_window: int | None = None
    name: str = field(default="process", init=False)
    _pool: ProcessPoolExecutor | None = field(default=None, init=False, repr=False,
                                              compare=False)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers or _default_workers())
        return self._pool

    def _window(self) -> int:
        if self.in_flight_window is not None:
            if self.in_flight_window <= 0:
                raise ValueError("in_flight_window must be positive")
            return self.in_flight_window
        return 2 * (self.max_workers or _default_workers())

    def imap_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                    context: "ExecutionContext") -> Iterator[ChunkOutcome]:
        return _stream_through_pool(self._ensure_pool, _execute_chunk_list,
                                    runner, chunks, context, window=self._window(),
                                    batch_size=max(1, self.chunksize))

    def map_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                   context: "ExecutionContext") -> list[ChunkOutcome]:
        return list(self.imap_chunks(runner, chunks, context))

    def shutdown(self) -> None:
        """Release the worker processes (the pool is rebuilt on next use)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ProcessPoolEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def create_engine(spec: str | ExecutionEngine | None) -> ExecutionEngine:
    """Build an engine from a spec string (``serial``, ``thread[:N]``, ``process[:N]``).

    Passing an engine instance returns it unchanged; ``None`` or an empty
    string yields the default :class:`SerialEngine`.  The optional ``:N``
    suffix fixes the worker count (e.g. ``thread:8``).
    """
    if spec is None:
        return SerialEngine()
    if not isinstance(spec, str):
        return spec
    text = spec.strip().lower()
    if text in ("", "serial"):
        return SerialEngine()
    kind, _, workers_text = text.partition(":")
    workers: int | None = None
    if workers_text:
        try:
            workers = int(workers_text)
        except ValueError as exc:
            raise ValueError(f"invalid engine worker count in spec {spec!r}") from exc
        if workers <= 0:
            raise ValueError(f"engine worker count must be positive in spec {spec!r}")
    if kind == "thread":
        return ThreadPoolEngine(max_workers=workers)
    if kind == "process":
        return ProcessPoolEngine(max_workers=workers)
    raise ValueError(f"unknown execution engine {spec!r}; "
                     "expected 'serial', 'thread[:N]' or 'process[:N]'")
