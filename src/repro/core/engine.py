"""Pluggable chunk execution engines.

Privid's privacy argument requires every chunk to be processed by an
*independent* instance of the analyst's executable whose only input is that
chunk (Appendix B).  Independence makes the split-process stage embarrassingly
parallel: no chunk's output can depend on another chunk's, so the engine that
schedules chunk work is free to reorder, batch, or distribute it, as long as
the concatenated rows come back in chunk order.

Engines are selected through a registry of named factories
(:func:`register_engine` / :func:`create_engine`, spec strings like
``thread:8``).  Four kinds ship with the library:

* :class:`SerialEngine` (``serial``) — one chunk at a time (the default, and
  the reference behaviour every other engine must reproduce bit for bit);
* :class:`ThreadPoolEngine` (``thread[:N]``) — a shared thread pool, useful
  when executables release the GIL or block on I/O;
* :class:`ProcessPoolEngine` (``process[:N]``) — a process pool for CPU-bound
  executables; the unit of work must be picklable.  All bundled scenes
  qualify — dynamic attributes are declarative :mod:`repro.scene.schedules`
  objects — but a scene hand-built with closure-valued dynamic attributes is
  not, and should use the thread or serial engines.
* :class:`repro.core.remote.ShardedEngine` (``sharded[:N]``) — a coordinator
  that partitions the chunk stream across N executor shard subprocesses
  speaking a length-prefixed JSON protocol (the single-host stand-in for a
  multi-host deployment), with heartbeat-driven failure detection and
  at-most-once result application.

Every engine exposes two entry points: :meth:`~ExecutionEngine.imap_chunks`,
an *ordered streaming map* that pulls chunks lazily from an iterable and
yields outcomes as the head of the stream completes, holding at most a
bounded in-flight window of chunks alive; and
:meth:`~ExecutionEngine.map_chunks`, a thin ``list(imap_chunks(...))``
adapter for callers that want the batch.  Streaming is what keeps memory and
time-to-first-result independent of the query window length: SPLIT produces
chunks on demand (``repro.video.chunking.iter_chunks``) and the executor
appends rows per chunk as outcomes arrive.

The process engine does **not** pickle chunks to its workers.  Each stream
broadcasts its heavy constants once — the runner, the execution context, and
every distinct video/mask/region the stream's chunks reference — through a
named shared-memory segment same-host workers attach and unpickle zero-copy
(falling back to a pickle file when shared memory is unavailable, and for
TCP shard daemons, which may live on another host); per-dispatch messages
are then just the payload ref plus a few ints and floats per chunk
(:class:`_TaskBroadcast` / ``_execute_chunk_specs``).  That turns per-future
IPC from whole-scene payloads into bytes, which is what lets ``process:N``
beat the serial engine even on sub-second sweeps.  The per-future batch size
defaults to an adaptive heuristic (``count_chunks // (4 * workers)``, capped
at 32) fed by the caller's ``count_hint``; a fixed ``chunksize`` overrides
it.

Engines are deliberately ignorant of caching — the
:class:`~repro.core.cache.ChunkResultCache` filters out memoized chunks before
the engine ever sees them (see ``SandboxRunner.iter_chunk_rows``).
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
import threading
import uuid
from collections import OrderedDict, deque
from concurrent.futures import Executor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Protocol, Sized, \
    runtime_checkable

try:
    from multiprocessing import resource_tracker, shared_memory
except ImportError:  # pragma: no cover - platform without POSIX shared memory
    resource_tracker = shared_memory = None  # type: ignore[assignment]

from repro.relational.table import ColumnarRows

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sandbox.environment import ExecutionContext, SandboxRunner
    from repro.video.chunking import Chunk

#: The output of one chunk's sandboxed execution: schema-coerced, stamped
#: rows — a list of row dicts, or the columnar twin from the batch
#: row-emission path (iterates and compares exactly like the dict list).
ChunkRows = list[dict[str, Any]] | ColumnarRows


@dataclass
class ChunkOutcome:
    """Rows of one chunk execution plus whether they are safe to memoize.

    ``fallback`` marks the schema-default rows substituted on a crash or a
    timeout; those can be transient (a wall-clock overrun on a loaded
    machine), so the result cache must never store them.  ``stored`` marks
    rows an engine already persisted in the shared tier of the caller's
    chunk store (sharded shards write through — see
    :meth:`repro.core.remote.ShardedEngine.share_store`), so the caller
    should only promote them into its memory tier instead of writing the
    same entry to disk again.  ``cache_hit`` marks rows a shard served from
    its local view of the shared store without executing at all
    (coordinator-cold / disk-warm keys) — an observability flag that never
    changes the rows.
    """

    rows: "list[dict[str, Any]] | ColumnarRows"
    fallback: bool = False
    stored: bool = False
    cache_hit: bool = False


def execute_chunk(runner: "SandboxRunner", chunk: "Chunk",
                  context: "ExecutionContext") -> ChunkOutcome:
    """The pure unit of work every engine schedules.

    Module-level (rather than a bound method) so process pools can pickle it;
    determinism comes from the runner building a fresh executable instance and
    a freshly seeded detector per chunk, so the result depends only on the
    arguments — never on scheduling order.
    """
    return runner.run_chunk_outcome(chunk, context)


def _execute_chunk_thread(runner: "SandboxRunner", chunk: "Chunk",
                          context: "ExecutionContext") -> ChunkOutcome:
    """Thread-pool unit of work: time out on per-thread CPU time.

    Concurrent threads share the GIL, so a chunk's wall-clock elapsed time is
    inflated by its neighbours; measuring the thread's own CPU time keeps the
    TIMEOUT check equivalent to an uncontended serial run and preserves the
    engines-produce-identical-results guarantee.
    """
    return runner.run_chunk_outcome(chunk, context, thread_clock=True)


def _execute_chunk_list_thread(runner: "SandboxRunner", chunks: list["Chunk"],
                               context: "ExecutionContext") -> list[ChunkOutcome]:
    """Thread-pool unit of work over a batch (per-thread CPU-time TIMEOUT)."""
    return [_execute_chunk_thread(runner, chunk, context) for chunk in chunks]


#: A compact description of one chunk, shipped to process-pool workers in
#: place of the chunk object: (video ref, index, interval start, interval
#: end, mask ref, region ref or None, sample period, metadata or None).
ChunkSpecMessage = tuple

#: Worker-side cache of loaded broadcast payloads, keyed by payload ref.
#: Bounded so long-lived pools serving many streams do not accumulate scenes.
_PAYLOAD_CACHE: "OrderedDict[str, dict[str, Any]]" = OrderedDict()
_PAYLOAD_CACHE_LIMIT = 8

#: Payload-ref scheme marking a shared-memory segment name rather than a
#: file path (``shm:privid-bc-...``).
_SHM_REF_PREFIX = "shm:"


def _shm_broadcast_enabled() -> bool:
    """Whether new broadcasts may use the shared-memory fast path.

    ``PRIVID_SHM_BROADCAST=0`` forces the file-based payload everywhere —
    the escape hatch for containers without a usable ``/dev/shm``.
    """
    if shared_memory is None:
        return False
    value = os.environ.get("PRIVID_SHM_BROADCAST", "1").strip().lower()
    return value not in ("0", "false", "no", "off")


def _attach_segment(name: str) -> "shared_memory.SharedMemory":
    """Attach an existing broadcast segment without adopting its lifecycle.

    Attaching registers the segment with this process's resource tracker
    (Python < 3.13 has no ``track=False``), which would unlink the creator's
    segment when this worker exits — and forked workers share the parent's
    tracker daemon, so a register/unregister pair from the worker would also
    corrupt the creator's own bookkeeping.  Suppressing registration during
    the attach keeps ownership where it belongs: only the coordinator ever
    tells the tracker about the segment, and it unlinks on stream close.
    """
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _load_payload(ref: str) -> dict[str, Any]:
    """Load (and memoize) one stream's broadcast payload in this process.

    ``ref`` is either a payload file path or a ``shm:NAME`` segment ref;
    shared-memory refs unpickle straight out of the attached segment — the
    bytes are never copied through a file or a pipe.
    """
    payload = _PAYLOAD_CACHE.get(ref)
    if payload is None:
        if ref.startswith(_SHM_REF_PREFIX):
            segment = _attach_segment(ref[len(_SHM_REF_PREFIX):])
            try:
                payload = pickle.loads(segment.buf)
            finally:
                segment.close()
        else:
            with open(ref, "rb") as handle:
                payload = pickle.load(handle)
        _PAYLOAD_CACHE[ref] = payload
        while len(_PAYLOAD_CACHE) > _PAYLOAD_CACHE_LIMIT:
            _PAYLOAD_CACHE.popitem(last=False)
    else:
        _PAYLOAD_CACHE.move_to_end(ref)
    return payload


def chunk_from_spec(objects: list[Any], spec: ChunkSpecMessage) -> "Chunk":
    """Rebuild one chunk from its compact spec against the broadcast objects.

    The single decoder of the :data:`ChunkSpecMessage` wire format, shared
    by the process-pool worker below and the sharded shard worker
    (:mod:`repro.core.remote`) — the two must never diverge.
    """
    from repro.utils.timebase import TimeInterval
    from repro.video.chunking import Chunk

    video_ref, index, start, end, mask_ref, region_ref, sample_period, metadata = spec
    return Chunk(
        video=objects[video_ref],
        index=index,
        interval=TimeInterval(start, end),
        mask=objects[mask_ref],
        region=None if region_ref is None else objects[region_ref],
        sample_period=sample_period,
        metadata=metadata if metadata is not None else {},
    )


def _execute_chunk_specs(ref: str, specs: list[ChunkSpecMessage]
                         ) -> list[ChunkOutcome]:
    """Process-pool unit of work: rebuild chunks from compact specs.

    The heavy stream constants (runner, context, videos, masks, regions)
    come from the broadcast payload at ``ref`` (a shared-memory segment or
    a payload file), loaded once per worker per stream; the per-dispatch
    message is just this function's arguments.
    """
    payload = _load_payload(ref)
    runner = payload["runner"]
    context = payload["context"]
    objects = payload["objects"]
    return [execute_chunk(runner, chunk_from_spec(objects, spec), context)
            for spec in specs]


class _TaskBroadcast:
    """One stream's out-of-band broadcast of its heavy pickled constants.

    Chunk streams reference a handful of heavy shared objects (the video,
    the mask, the spatial regions) over and over; this registry assigns each
    distinct object a small integer ref and persists the whole set — plus
    the runner and context — where any worker can load it, whichever future
    it happens to execute.  When a previously unseen heavy object appears
    mid-stream (multi-camera maps), a new payload version is written and
    later dispatches reference it; workers cache payloads per ref, so each
    worker loads each version at most once.

    Two payload carriers exist behind one ref string.  Same-host workers
    (process pools, pipe shards) get a named ``multiprocessing.shared_memory``
    segment (:meth:`payload_ref`): the constants are serialized exactly once
    into the segment and every worker attaches and unpickles zero-copy — no
    file write, no re-read per worker.  TCP shard daemons — potentially on
    other hosts, where a segment name means nothing — use the payload *file*
    (:meth:`payload_path`), which is also the fallback whenever segment
    creation fails (no usable ``/dev/shm``, ``PRIVID_SHM_BROADCAST=0``).
    Segments are unlinked on stream close (:meth:`cleanup`); a worker killed
    while attached cannot leak one — the kernel drops its mapping with the
    process, and the name was the coordinator's to unlink all along.
    """

    def __init__(self, runner: "SandboxRunner", context: "ExecutionContext", *,
                 use_shared_memory: bool | None = None) -> None:
        self._runner = runner
        self._context = context
        self._directory: str | None = None  # created on first payload write
        #: Heavy shared objects in ref order; also the strong references
        #: keeping the id()-keyed registry sound.
        self._objects: list[Any] = []
        self._refs: dict[int, int] = {}
        self._version = 0
        self._path: str | None = None
        self._use_shm = _shm_broadcast_enabled() if use_shared_memory is None \
            else (use_shared_memory and shared_memory is not None)
        self._shm_ref: str | None = None
        self._segments: "list[shared_memory.SharedMemory]" = []
        self.broadcasts = 0
        self.broadcast_bytes = 0
        self.shm_segments = 0

    def _ref_for(self, obj: Any) -> int:
        key = id(obj)
        ref = self._refs.get(key)
        if ref is None:
            ref = len(self._objects)
            self._refs[key] = ref
            self._objects.append(obj)
            self._path = None  # current payload is stale
            self._shm_ref = None
        return ref

    def _payload_bytes(self) -> bytes:
        return pickle.dumps(
            {"runner": self._runner, "context": self._context,
             "objects": list(self._objects)},
            protocol=pickle.HIGHEST_PROTOCOL)

    def payload_ref(self) -> str:
        """Ref of a payload covering every ref handed out so far.

        A ``shm:NAME`` segment ref on the shared-memory fast path, else the
        payload file path.  One failed segment creation downgrades the whole
        stream to the file carrier — a broadcast must never die of a full
        ``/dev/shm`` when a perfectly good tempdir is sitting right there.
        """
        if not self._use_shm:
            return self.payload_path()
        if self._shm_ref is None:
            payload = self._payload_bytes()
            name = f"privid-bc-{uuid.uuid4().hex}"
            try:
                segment = shared_memory.SharedMemory(name=name, create=True,
                                                     size=len(payload))
            except OSError:
                self._use_shm = False
                return self.payload_path()
            segment.buf[:len(payload)] = payload
            self._segments.append(segment)
            self.broadcasts += 1
            self.broadcast_bytes += len(payload)
            self.shm_segments += 1
            self._shm_ref = _SHM_REF_PREFIX + name
        return self._shm_ref

    def chunk_spec(self, chunk: "Chunk") -> ChunkSpecMessage:
        """The compact per-chunk dispatch message."""
        region = chunk.region
        return (
            self._ref_for(chunk.video),
            chunk.index,
            chunk.interval.start,
            chunk.interval.end,
            self._ref_for(chunk.mask),
            None if region is None else self._ref_for(region),
            chunk.sample_period,
            dict(chunk.metadata) if chunk.metadata else None,
        )

    def payload_path(self) -> str:
        """Path of a payload file covering every ref handed out so far.

        Filenames embed a fresh uuid per version: worker-side payload
        caching keys on the path, and tempdir paths can legally be reused
        after an earlier stream's cleanup — a colliding path must never
        serve a stale cached payload.
        """
        if self._path is None:
            if self._directory is None:
                self._directory = tempfile.mkdtemp(prefix="privid-task-")
            self._version += 1
            path = os.path.join(
                self._directory, f"task-{uuid.uuid4().hex}-v{self._version}.pkl")
            payload = self._payload_bytes()
            with open(path, "wb") as handle:
                handle.write(payload)
            self.broadcasts += 1
            self.broadcast_bytes += len(payload)
            self._path = path
        return self._path

    def cleanup(self) -> None:
        """Release the payload carriers (call only after all futures resolved).

        Unlinks every shared-memory segment this stream created — attached
        workers keep their mappings until they close (or die), but the name
        is gone, so nothing outlives the stream — and removes the payload
        file directory.
        """
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._shm_ref = None
        if self._directory is not None:
            shutil.rmtree(self._directory, ignore_errors=True)
            self._directory = None


@dataclass
class DispatchStats:
    """Per-dispatch IPC accounting of a :class:`ProcessPoolEngine`.

    ``payload_bytes_*`` measure the pickled per-future message (payload path
    + chunk specs) — the bytes crossing the IPC boundary per dispatch;
    ``broadcast_bytes`` counts the one-time payload files written per
    stream.  Used by the benchmarks and the payload-budget regression test.
    """

    dispatches: int = 0
    chunks: int = 0
    payload_bytes_total: int = 0
    payload_bytes_max: int = 0
    broadcasts: int = 0
    broadcast_bytes: int = 0
    shm_segments: int = 0

    def record_dispatch(self, payload_bytes: int, chunks: int) -> None:
        self.dispatches += 1
        self.chunks += chunks
        self.payload_bytes_total += payload_bytes
        if payload_bytes > self.payload_bytes_max:
            self.payload_bytes_max = payload_bytes

    @property
    def payload_bytes_mean(self) -> float:
        """Mean pickled bytes per dispatch (0.0 before any dispatch)."""
        return self.payload_bytes_total / self.dispatches if self.dispatches else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "dispatches": self.dispatches,
            "chunks": self.chunks,
            "payload_bytes_total": self.payload_bytes_total,
            "payload_bytes_max": self.payload_bytes_max,
            "payload_bytes_mean": round(self.payload_bytes_mean, 1),
            "broadcasts": self.broadcasts,
            "broadcast_bytes": self.broadcast_bytes,
            "shm_segments": self.shm_segments,
        }


@runtime_checkable
class ExecutionEngine(Protocol):
    """Schedules independent chunk executions and preserves chunk order."""

    name: str

    def imap_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                    context: "ExecutionContext", *,
                    count_hint: int | None = None) -> Iterator[ChunkOutcome]:
        """Stream outcomes in chunk order, pulling chunks lazily.

        At most the engine's in-flight window of chunks may be materialized
        (pulled from ``chunks`` but not yet yielded) at any moment.
        ``count_hint`` is the expected chunk count when the caller knows it
        (the executor always does) — engines may use it to size batches.
        """
        ...  # pragma: no cover - protocol

    def map_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                   context: "ExecutionContext") -> list[ChunkOutcome]:
        """Run every chunk through the runner, returning outcomes in chunk order."""
        ...  # pragma: no cover - protocol


@dataclass
class SerialEngine:
    """Processes chunks one at a time on the calling thread (reference engine)."""

    name: str = field(default="serial", init=False)

    def imap_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                    context: "ExecutionContext", *,
                    count_hint: int | None = None) -> Iterator[ChunkOutcome]:
        for chunk in chunks:
            yield execute_chunk(runner, chunk, context)

    def map_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                   context: "ExecutionContext") -> list[ChunkOutcome]:
        return list(self.imap_chunks(runner, chunks, context))

    def shutdown(self) -> None:
        """No pools to release; present so every engine shuts down uniformly."""

    def __enter__(self) -> "SerialEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def _default_workers() -> int:
    return max(2, (os.cpu_count() or 2))


def _stream_through_pool(pool_factory: Callable[[], Executor],
                         submit_batch_fn: Callable[[Executor, list["Chunk"]],
                                                   "Future[list[ChunkOutcome]]"],
                         runner: "SandboxRunner", chunks: Iterable["Chunk"],
                         context: "ExecutionContext", *,
                         window: int, batch_size: int = 1,
                         on_finish: Callable[[], None] | None = None
                         ) -> Iterator[ChunkOutcome]:
    """Ordered streaming map over a (lazily created) executor pool.

    Chunks are pulled from the iterable only as in-flight slots free up, so
    at most ``window`` chunks are ever materialized-but-unyielded; outcomes
    are yielded strictly in chunk order (head-of-line completion).  A
    single-chunk stream runs inline without touching the pool, matching the
    historical short-circuit that keeps tiny queries pool-free.
    ``submit_batch_fn`` turns a batch of chunks into a future resolving to
    their outcomes; ``batch_size`` groups chunks per future to amortize IPC
    for process pools.  ``on_finish`` runs once no future is outstanding —
    on normal exhaustion or on early close — so per-stream resources (e.g.
    broadcast payload files) can be reclaimed safely.
    """
    iterator = iter(chunks)
    pending: deque[Any] = deque()  # futures, each resolving to a list of outcomes
    try:
        first = next(iterator, None)
        if first is None:
            return
        second = next(iterator, None)
        if second is None:
            yield execute_chunk(runner, first, context)
            return
        pool = pool_factory()
        window = max(window, batch_size)
        in_flight = 0
        batch: list["Chunk"] = []

        def submit_batch() -> None:
            nonlocal in_flight
            if batch:
                pending.append(submit_batch_fn(pool, list(batch)))
                in_flight += len(batch)
                batch.clear()

        replay: Iterator["Chunk"] = iter((first, second))
        exhausted = False
        while True:
            while not exhausted and in_flight + len(batch) < window:
                chunk = next(replay, None)
                if chunk is None:
                    replay = iterator
                    chunk = next(iterator, None)
                if chunk is None:
                    exhausted = True
                    break
                batch.append(chunk)
                if len(batch) >= batch_size:
                    submit_batch()
            submit_batch()
            if not pending:
                return
            for outcome in pending.popleft().result():
                in_flight -= 1
                yield outcome
    finally:
        if pending:
            # An early close (or an error) can leave futures running that
            # still need the stream's shared resources; wait them out before
            # on_finish reclaims anything.
            wait_futures(list(pending))
        if on_finish is not None:
            on_finish()


@dataclass
class ThreadPoolEngine:
    """Processes chunks on a persistent pool of threads.

    Python threads only overlap executables that release the GIL or wait on
    I/O; for the pure-Python synthetic executables the win is modest, but the
    engine exists so real deployments (whose detectors run in native code) get
    parallelism without pickling requirements.  TIMEOUT enforcement uses
    per-thread CPU time (see :func:`_execute_chunk_thread`), so an executable
    that merely *sleeps* past its timeout is only caught by the serial and
    process engines' wall clocks.

    The pool is created lazily on first use and reused across queries; call
    :meth:`shutdown` to release the worker threads early, or use the engine
    as a context manager (``with ThreadPoolEngine() as engine: ...``).

    ``in_flight_window`` bounds how many chunks may be materialized but not
    yet yielded by :meth:`imap_chunks` (default ``2 x workers``): enough to
    keep every worker busy while the head-of-line result is consumed, small
    enough that streaming a week-long window holds only a handful of chunks.
    """

    max_workers: int | None = None
    in_flight_window: int | None = None
    name: str = field(default="thread", init=False)
    _pool: ThreadPoolExecutor | None = field(default=None, init=False, repr=False,
                                             compare=False)
    _pool_lock: threading.Lock = field(default_factory=threading.Lock, init=False,
                                       repr=False, compare=False)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        # Locked: a service-layer engine is driven by concurrent query
        # threads, and two first-users must not each build a pool.
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers or _default_workers())
            return self._pool

    def _window(self) -> int:
        if self.in_flight_window is not None:
            if self.in_flight_window <= 0:
                raise ValueError("in_flight_window must be positive")
            return self.in_flight_window
        return 2 * (self.max_workers or _default_workers())

    def imap_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                    context: "ExecutionContext", *,
                    count_hint: int | None = None) -> Iterator[ChunkOutcome]:
        def submit(pool: Executor, batch: list["Chunk"]) -> "Future[list[ChunkOutcome]]":
            return pool.submit(_execute_chunk_list_thread, runner, batch, context)

        return _stream_through_pool(self._ensure_pool, submit, runner, chunks,
                                    context, window=self._window())

    def map_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                   context: "ExecutionContext") -> list[ChunkOutcome]:
        return list(self.imap_chunks(runner, chunks, context))

    def shutdown(self) -> None:
        """Release the worker threads (the pool is rebuilt on next use)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ThreadPoolEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


#: Per-future batch size when a stream's chunk count is unknown (bare
#: iterators from tests or ad-hoc callers); the executor always passes a
#: count hint, which takes precedence through the adaptive heuristic.
_UNKNOWN_COUNT_CHUNKSIZE = 4

#: Upper bound of the adaptive chunksize heuristic — beyond this, larger
#: batches stop amortizing anything and only add head-of-line latency.
_MAX_ADAPTIVE_CHUNKSIZE = 32


@dataclass
class ProcessPoolEngine:
    """Processes chunks on a persistent pool of worker processes.

    Workers never receive pickled chunks: each stream broadcasts its heavy
    constants (runner, context, video, mask, regions) once through a
    :class:`_TaskBroadcast` payload file, and every dispatch ships only the
    payload path plus compact per-chunk specs — a few ints and floats per
    chunk (``dispatch_stats`` records the actual bytes).  Everything the
    stream references must still be picklable, exactly as before.

    ``chunksize`` batches chunks per future; the default (None) adapts to
    the stream: ``max(1, count_hint // (4 * workers))`` capped at 32, so
    small sweeps are not IPC-bound at one chunk per future while huge sweeps
    amortize scheduling.  The pool is created lazily on first use and reused
    across queries (worker spawn is far too expensive to pay per PROCESS
    statement); call :meth:`shutdown` to release the worker processes early,
    or use the engine as a context manager.

    ``in_flight_window`` bounds the chunks materialized-but-unyielded by
    :meth:`imap_chunks` (default ``2 x workers x batch size``, so every
    worker stays busy even with batched futures).
    """

    max_workers: int | None = None
    chunksize: int | None = None
    in_flight_window: int | None = None
    name: str = field(default="process", init=False)
    dispatch_stats: DispatchStats = field(default_factory=DispatchStats, init=False,
                                          repr=False, compare=False)
    _pool: ProcessPoolExecutor | None = field(default=None, init=False, repr=False,
                                              compare=False)
    _pool_lock: threading.Lock = field(default_factory=threading.Lock, init=False,
                                       repr=False, compare=False)

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers or _default_workers())
            return self._pool

    def _effective_chunksize(self, count_hint: int | None) -> int:
        if self.chunksize is not None:
            return max(1, self.chunksize)
        if count_hint is None or count_hint <= 0:
            return _UNKNOWN_COUNT_CHUNKSIZE
        workers = self.max_workers or _default_workers()
        return max(1, min(_MAX_ADAPTIVE_CHUNKSIZE, count_hint // (4 * workers)))

    def _window(self, batch_size: int) -> int:
        if self.in_flight_window is not None:
            if self.in_flight_window <= 0:
                raise ValueError("in_flight_window must be positive")
            return self.in_flight_window
        return 2 * (self.max_workers or _default_workers()) * batch_size

    def reset_dispatch_stats(self) -> None:
        """Zero the per-dispatch IPC counters."""
        self.dispatch_stats = DispatchStats()

    def imap_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                    context: "ExecutionContext", *,
                    count_hint: int | None = None) -> Iterator[ChunkOutcome]:
        if count_hint is None and isinstance(chunks, Sized):
            count_hint = len(chunks)
        broadcast = _TaskBroadcast(runner, context)
        stats = self.dispatch_stats

        def submit(pool: Executor, batch: list["Chunk"]) -> "Future[list[ChunkOutcome]]":
            specs = [broadcast.chunk_spec(chunk) for chunk in batch]
            # Registering the specs may have discovered new heavy objects;
            # payload_ref() publishes a fresh version covering them first
            # (a shared-memory segment when available, else a payload file).
            ref = broadcast.payload_ref()
            stats.record_dispatch(
                len(pickle.dumps((ref, specs), protocol=pickle.HIGHEST_PROTOCOL)),
                len(batch))
            return pool.submit(_execute_chunk_specs, ref, specs)

        def finish() -> None:
            stats.broadcasts += broadcast.broadcasts
            stats.broadcast_bytes += broadcast.broadcast_bytes
            stats.shm_segments += broadcast.shm_segments
            broadcast.cleanup()

        batch_size = self._effective_chunksize(count_hint)
        return _stream_through_pool(self._ensure_pool, submit, runner, chunks,
                                    context, window=self._window(batch_size),
                                    batch_size=batch_size, on_finish=finish)

    def map_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                   context: "ExecutionContext") -> list[ChunkOutcome]:
        return list(self.imap_chunks(runner, chunks, context))

    def shutdown(self) -> None:
        """Release the worker processes (the pool is rebuilt on next use)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "ProcessPoolEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


#: Factory signature of a registered engine kind: receives the parsed
#: ``:N`` worker count, the raw suffix string when it is not an integer
#: (transport addresses like ``sharded:hostA:9101,hostB:9101``), or None
#: when the spec had no suffix — and returns a ready engine instance.
EngineFactory = Callable[[int | str | None], ExecutionEngine]

_ENGINE_FACTORIES: dict[str, EngineFactory] = {}


def _int_worker_count(kind: str, workers: int | str | None) -> int | None:
    """Reject non-integer spec suffixes for kinds that only take ``:N``."""
    if isinstance(workers, str):
        raise ValueError(
            f"invalid engine worker count {workers!r} in a {kind!r} spec")
    return workers


def register_engine(kind: str, factory: EngineFactory, *, replace: bool = False) -> None:
    """Register an engine kind under the name spec strings select it by.

    ``create_engine(f"{kind}[:N]")`` will call ``factory(N)`` (``N`` is None
    when the spec has no worker suffix; a suffix that is not an integer is
    passed through as the raw string, so kinds like ``sharded`` can accept
    transport addresses).  The registry is how new execution backends plug
    in behind the engine seam without the executor knowing them —
    :class:`repro.core.remote.ShardedEngine` registers as ``"sharded"``
    this way, and deployments can add their own.
    """
    key = kind.strip().lower()
    if not key:
        raise ValueError("engine kind must be a non-empty string")
    if ":" in key:
        raise ValueError(f"engine kind {kind!r} must not contain ':'")
    if key in _ENGINE_FACTORIES and not replace:
        raise ValueError(f"engine kind {kind!r} is already registered")
    _ENGINE_FACTORIES[key] = factory


def engine_kinds() -> tuple[str, ...]:
    """The registered engine kinds, sorted (the valid spec-string prefixes)."""
    return tuple(sorted(_ENGINE_FACTORIES))


def _make_serial(workers: int | str | None) -> ExecutionEngine:
    if _int_worker_count("serial", workers) is not None:
        raise ValueError("the serial engine takes no worker count")
    return SerialEngine()


def _make_sharded(workers: int | str | None) -> ExecutionEngine:
    # Imported lazily: remote builds on this module, so the registry entry
    # must not import it at load time.
    from repro.core.remote import sharded_engine_from_spec

    return sharded_engine_from_spec(workers)


register_engine("serial", _make_serial)
register_engine("thread", lambda workers: ThreadPoolEngine(
    max_workers=_int_worker_count("thread", workers)))
register_engine("process", lambda workers: ProcessPoolEngine(
    max_workers=_int_worker_count("process", workers)))
register_engine("sharded", _make_sharded)


def create_engine(spec: str | ExecutionEngine | None) -> ExecutionEngine:
    """Build an engine from a spec string (``serial``, ``thread[:N]``,
    ``process[:N]``, ``sharded[:N]``, ``sharded:tcp[:N]``,
    ``sharded:HOST:PORT[,HOST:PORT...]``, or any :func:`register_engine`
    kind).

    Passing an engine instance returns it unchanged; ``None`` or an empty
    string yields the default :class:`SerialEngine`.  The optional ``:N``
    suffix fixes the worker (or shard) count (e.g. ``thread:8``,
    ``sharded:4``); a non-integer suffix is handed to the kind's factory
    verbatim, which is how the sharded engine's TCP transport specs ride
    the same seam.  This is the value of the ``engine=`` argument of
    ``PrividSystem`` and of the ``PRIVID_ENGINE`` benchmark knob.
    """
    if spec is None:
        return SerialEngine()
    if not isinstance(spec, str):
        return spec
    text = spec.strip().lower()
    if text == "":
        return SerialEngine()
    kind, _, workers_text = text.partition(":")
    workers: int | str | None = None
    if workers_text:
        try:
            workers = int(workers_text)
        except ValueError:
            workers = workers_text  # transport suffix; the factory decides
        if isinstance(workers, int) and workers <= 0:
            raise ValueError(f"engine worker count must be positive in spec {spec!r}")
    factory = _ENGINE_FACTORIES.get(kind)
    if factory is None:
        expected = ", ".join(f"'{name}[:N]'" for name in engine_kinds())
        raise ValueError(f"unknown execution engine {spec!r}; expected {expected}")
    return factory(workers)
