"""The Privid query executor (Algorithm 1).

:class:`PrividSystem` is the entry point a video owner deploys: cameras are
registered with their footage, privacy policy map and per-frame budget;
analysts register executables and submit queries; the system runs the
split-process-aggregate pipeline, checks and charges per-frame budgets, adds
calibrated Laplace noise, and returns only the noisy releases.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Iterator

from repro.core.budget import BudgetRequest, FrameBudgetLedger, ServiceLedger
from repro.core.cache import ChunkStore, create_cache
from repro.core.engine import ExecutionEngine, create_engine
from repro.core.noise import LaplaceMechanism
from repro.core.policy import MaskPolicyMap, PrivacyPolicy
from repro.core.resilience import CancellationToken
from repro.core.result import QueryResult, ReleaseResult
from repro.cv.detector import DetectorConfig
from repro.cv.tracker import TrackerConfig
from repro.errors import PolicyError, QueryValidationError, UnknownCameraError
from repro.query.ast import PrividQuery, SelectStatement, collect_table_names
from repro.relational.aggregates import GroupSpec, Release, ReleaseKind, compute_releases
from repro.relational.expressions import Column, TimeBucket
from repro.relational.plan import PlanContext
from repro.relational.sensitivity import TableProperties
from repro.relational.table import CHUNK_COLUMN, Table
from repro.sandbox.environment import ExecutionContext, SandboxRunner
from repro.sandbox.registry import ExecutableRegistry, default_registry
from repro.utils.rng import RandomSource
from repro.utils.timebase import TimeInterval
from repro.video.chunking import Chunk, ChunkSpec, count_chunks, iter_chunks
from repro.video.regions import RegionScheme
from repro.video.video import SyntheticVideo


@dataclass
class CameraRegistration:
    """Everything the video owner configures for one camera."""

    name: str
    video: SyntheticVideo
    policy_map: MaskPolicyMap
    ledger: FrameBudgetLedger
    region_schemes: dict[str, RegionScheme] = field(default_factory=dict)
    detector_config: DetectorConfig = field(default_factory=DetectorConfig)
    tracker_config: TrackerConfig = field(default_factory=TrackerConfig)
    default_sample_period: float | None = None
    detector_seed: int = 0
    metadata: dict[str, Any] = field(default_factory=dict)

    @property
    def epsilon_budget(self) -> float:
        """Per-frame budget the owner allocated to this camera."""
        return self.ledger.total_epsilon


@dataclass
class _ChunkSet:
    """Internal: the result of one SPLIT statement.

    SPLIT is lazy: instead of a materialized chunk list, the set holds a
    *factory* producing a fresh chunk stream per consumer (several PROCESS
    statements may reference the same SPLIT output) plus the chunk count
    computed in O(1) from window arithmetic — sensitivity accounting needs
    the count before any chunk exists.
    """

    camera: CameraRegistration
    make_chunks: Callable[[], Iterator[Chunk]]
    num_chunks: int
    policy: PrivacyPolicy
    window: TimeInterval
    chunk_duration: float


@dataclass
class _TableSource:
    """Internal: which camera/window/policy an intermediate table came from."""

    camera: CameraRegistration
    window: TimeInterval
    policy: PrivacyPolicy


def _requests_span(requests: list[BudgetRequest]) -> TimeInterval:
    """Smallest interval covering every request (for post-charge reporting)."""
    span = requests[0].interval
    for request in requests[1:]:
        span = span.union_span(request.interval)
    return span


def engine_stats_dict(engine: ExecutionEngine) -> dict[str, Any]:
    """Engine identity and dispatch accounting, always a dict.

    Shared by :meth:`PrividSystem.engine_stats` and
    :meth:`repro.service.QueryService.stats`, so a deployment reports the
    same shape whichever layer is asked.
    """
    stats: dict[str, Any] = {"engine": getattr(engine, "name", "unknown")}
    stats_dict = getattr(engine, "dispatch_stats_dict", None)
    if stats_dict is not None:
        stats["dispatch"] = stats_dict()
    else:
        dispatch = getattr(engine, "dispatch_stats", None)
        if dispatch is not None:
            stats["dispatch"] = dispatch.as_dict()
    return stats


def cache_stats_dict(cache: ChunkStore | None) -> dict[str, Any]:
    """Chunk-store counters, always a dict (``{"enabled": False}`` when off)."""
    if cache is None:
        return {"enabled": False}
    return {"enabled": True, **cache.stats_dict()}


class PrividSystem:
    """A deployment of Privid over a set of registered cameras."""

    def __init__(self, *, seed: int = 0, registry: ExecutableRegistry | None = None,
                 engine: ExecutionEngine | str | None = None,
                 cache: ChunkStore | str | None = None,
                 ledger: ServiceLedger | None = None,
                 on_engine_failure: str = "fail") -> None:
        if on_engine_failure not in ("fail", "serial_fallback"):
            raise ValueError(
                f"on_engine_failure must be 'fail' or 'serial_fallback', "
                f"not {on_engine_failure!r}")
        #: Degradation policy when a distributed engine loses every shard
        #: mid-stream: ``"fail"`` propagates RemoteShardError,
        #: ``"serial_fallback"`` re-executes the unfinished chunks serially
        #: (byte-identical by the determinism contract).
        self.on_engine_failure = on_engine_failure
        self.random = RandomSource(seed, path="privid")
        self.mechanism = LaplaceMechanism(self.random)
        self.registry = registry if registry is not None else default_registry()
        self.cameras: dict[str, CameraRegistration] = {}
        #: Per-camera budget accounting.  Private per system by default (the
        #: historical behaviour); a :class:`~repro.service.QueryService`
        #: passes one shared :class:`~repro.core.budget.ServiceLedger` to
        #: every per-query system so concurrent queries draw from the same
        #: budgets.
        self.ledger = ledger if ledger is not None else ServiceLedger()
        #: Engine scheduling the independent per-chunk executions; accepts an
        #: instance or a spec string ('serial', 'thread[:N]', 'process[:N]',
        #: 'sharded[:N]', or any kind added via
        #: :func:`repro.core.engine.register_engine`).
        self.engine: ExecutionEngine = create_engine(engine)
        #: True when the engine was built here from a spec string — those
        #: pools belong to this system, so :meth:`close` shuts them down.
        self._owns_engine = not isinstance(engine, ExecutionEngine)
        #: Optional memoization of chunk outputs across queries; accepts a
        #: store instance or a spec string ('off', 'memory', 'disk:PATH',
        #: 'tiered:PATH').
        self.chunk_cache = create_cache(cache)
        # A distributed engine shares the store's cross-process tier with its
        # executor shards, so shard-side executions consult and extend the
        # same warm entries the coordinator sees (no-op for local engines,
        # which reach the store directly through ``iter_chunk_rows``).  Only
        # an engine built here is wired up: a caller-provided instance may be
        # shared between systems with different stores (same reasoning as
        # :meth:`close`), and repointing it would silently divert another
        # system's write-through — such callers invoke ``share_store``
        # themselves.
        if self._owns_engine and self.chunk_cache is not None:
            share = getattr(self.engine, "share_store", None)
            if share is not None:
                share(self.chunk_cache)

    # ------------------------------------------------------------------ setup

    def register_camera(self, name: str, video: SyntheticVideo, *,
                        policy: PrivacyPolicy | None = None,
                        policy_map: MaskPolicyMap | None = None,
                        epsilon_budget: float = 1.0,
                        region_schemes: dict[str, RegionScheme] | None = None,
                        detector_config: DetectorConfig | None = None,
                        tracker_config: TrackerConfig | None = None,
                        default_sample_period: float | None = None,
                        detector_seed: int = 0,
                        metadata: dict[str, Any] | None = None) -> CameraRegistration:
        """Register a camera with its policy and per-frame budget.

        Either a single unmasked ``policy`` or a full ``policy_map`` (mask
        name -> (mask, policy)) must be supplied; the map is how the owner
        exposes the masking optimisation of Section 7.1.
        """
        if name in self.cameras:
            raise PolicyError(f"camera {name!r} is already registered")
        if policy_map is None:
            if policy is None:
                raise PolicyError("register_camera needs a policy or a policy_map")
            policy_map = MaskPolicyMap.unmasked(policy)
        registration = CameraRegistration(
            name=name,
            video=video,
            policy_map=policy_map,
            # Get-or-create on the (possibly shared) service ledger: under a
            # QueryService, the second system registering this camera binds
            # to the same FrameBudgetLedger the first one created.
            ledger=self.ledger.register(name, epsilon_budget),
            region_schemes=dict(region_schemes or {}),
            detector_config=detector_config or DetectorConfig(),
            tracker_config=tracker_config or TrackerConfig(),
            default_sample_period=default_sample_period,
            detector_seed=detector_seed,
            metadata=dict(metadata or {}),
        )
        self.cameras[name] = registration
        return registration

    def register_executable(self, name: str, executable: Any, *, replace: bool = False) -> None:
        """Register an analyst executable under the name queries refer to."""
        self.registry.register(name, executable, replace=replace)

    def camera(self, name: str) -> CameraRegistration:
        """Look up a registered camera."""
        if name not in self.cameras:
            raise UnknownCameraError(
                f"unknown camera {name!r}; registered: {sorted(self.cameras)}")
        return self.cameras[name]

    def remaining_budget(self, camera: str, interval: TimeInterval) -> float:
        """Minimum remaining per-frame budget of a camera over an interval."""
        return self.camera(camera).ledger.remaining_over(interval)

    def cache_stats(self) -> dict[str, Any]:
        """Chunk-cache counters, always a dict.

        ``{"enabled": False}`` when caching is off; otherwise ``enabled`` is
        True alongside the store's flat hit/miss counters, and a tiered
        store additionally reports per-tier ``memory`` / ``disk`` sub-stats.
        """
        return cache_stats_dict(self.chunk_cache)

    def engine_stats(self) -> dict[str, Any]:
        """Engine identity and dispatch accounting, always a dict.

        ``{"engine": NAME}`` plus, for engines that ship work over an IPC
        boundary, a ``dispatch`` section: the process engine's per-future
        payload bytes, or the sharded engine's engine-wide counters with a
        ``per_shard`` breakdown (the numbers behind the ``sharded`` sweep in
        ``BENCH_pipeline.json``).
        """
        return engine_stats_dict(self.engine)

    def close(self) -> None:
        """Release execution resources this system created.

        Shuts down the engine's worker pools when the engine was built from
        a spec string (``engine="thread:8"``); an engine instance passed in
        by the caller is shared property and is left running.  Safe to call
        more than once; the system remains usable (pools rebuild lazily).
        """
        if self._owns_engine:
            shutdown = getattr(self.engine, "shutdown", None)
            if shutdown is not None:
                shutdown()

    def __enter__(self) -> "PrividSystem":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- execution

    def _run_splits(self, query: PrividQuery) -> dict[str, _ChunkSet]:
        chunk_sets: dict[str, _ChunkSet] = {}
        for split in query.splits:
            camera = self.camera(split.camera)
            mask, policy = camera.policy_map.lookup(split.mask)
            region_scheme = None
            if split.region_scheme is not None:
                if split.region_scheme not in camera.region_schemes:
                    raise QueryValidationError(
                        f"camera {camera.name!r} offers no region scheme "
                        f"{split.region_scheme!r}")
                region_scheme = camera.region_schemes[split.region_scheme]
            window = split.window.clamp(camera.video.interval)
            sample_period = split.sample_period
            if sample_period is None:
                sample_period = camera.default_sample_period
            spec = ChunkSpec(window=window, chunk_duration=split.chunk_duration,
                             stride=split.stride, sample_period=sample_period)
            make_chunks = partial(iter_chunks, camera.video, spec, mask=mask,
                                  region_scheme=region_scheme)
            # iter_chunks validates eagerly (before yielding anything), so
            # invoking the factory once surfaces bad chunking parameters at
            # SPLIT time without materializing a single chunk.
            make_chunks()
            chunk_sets[split.output] = _ChunkSet(
                camera=camera, make_chunks=make_chunks,
                num_chunks=count_chunks(camera.video, spec, region_scheme=region_scheme),
                policy=policy, window=window,
                chunk_duration=split.chunk_duration)
        return chunk_sets

    def _run_processes(self, query: PrividQuery, chunk_sets: dict[str, _ChunkSet],
                       cancel: "CancellationToken | None" = None,
                       on_chunk: "Callable[[int], None] | None" = None
                       ) -> tuple[PlanContext, dict[str, _TableSource]]:
        """Run every PROCESS statement as an incremental streaming consumer.

        Each statement's chunk stream flows split → engine → table without
        ever materializing the chunk list: rows are appended to the
        intermediate :class:`Table` per chunk as outcomes arrive.  With
        several PROCESS statements (multiple cameras), the streams are
        consumed round-robin, one chunk's rows at a time, so no camera's
        stream has to finish — or buffer — before another starts.  Rows
        still land in chunk order within each table, and chunk results are
        order-independent by the hashing contract (ROADMAP §Hashing), so the
        output is byte-identical to the batch dataflow.
        """
        tables: dict[str, Table] = {}
        properties: dict[str, TableProperties] = {}
        sources: dict[str, _TableSource] = {}
        streams: deque[tuple[Table, Iterator[list[dict[str, Any]]]]] = deque()
        for process in query.processes:
            if process.chunks not in chunk_sets:
                raise QueryValidationError(
                    f"PROCESS references unknown chunk set {process.chunks!r}")
            chunk_set = chunk_sets[process.chunks]
            camera = chunk_set.camera
            executable = self.registry.resolve(process.executable)
            runner = SandboxRunner(executable=executable, schema=process.schema,
                                   max_rows=process.max_rows,
                                   timeout_seconds=process.timeout)
            context = ExecutionContext(
                camera=camera.name,
                fps=camera.video.fps,
                detector_config=camera.detector_config,
                tracker_config=camera.tracker_config,
                metadata={**camera.video.metadata, **camera.metadata},
                detector_seed=camera.detector_seed,
            )
            table = Table.from_schema(process.schema, name=process.output)
            tables[process.output] = table
            properties[process.output] = TableProperties(
                name=process.output,
                max_rows=process.max_rows,
                chunk_duration=chunk_set.chunk_duration,
                num_chunks=chunk_set.num_chunks,
                rho=chunk_set.policy.rho,
                k_segments=chunk_set.policy.k_segments,
            )
            sources[process.output] = _TableSource(
                camera=camera, window=chunk_set.window, policy=chunk_set.policy)
            streams.append((table, runner.iter_chunk_rows(
                chunk_set.make_chunks(), context,
                engine=self.engine, cache=self.chunk_cache,
                count_hint=chunk_set.num_chunks,
                on_engine_failure=self.on_engine_failure)))
        # The round-robin drive is the query's cooperative yield point: the
        # cancellation token is checked once per chunk, so a deadline stops
        # the stream within one chunk — before any budget is charged (the
        # ledger is only touched after every stream completes), keeping
        # admission all-or-nothing under cancellation.
        completed = 0
        try:
            while streams:
                if cancel is not None:
                    cancel.check()
                table, stream = streams.popleft()
                chunk_rows = next(stream, None)
                if chunk_rows is None:
                    continue
                table.extend(chunk_rows)
                streams.append((table, stream))
                completed += 1
                if on_chunk is not None:
                    # The durable service journals chunk progress here, so a
                    # crash resumes with every completed chunk disk-warm.
                    on_chunk(completed)
        except BaseException:
            for _, stream in streams:
                close = getattr(stream, "close", None)
                if close is not None:
                    close()
            raise
        return PlanContext(tables=tables, properties=properties), sources

    @staticmethod
    def _chunk_bucket(group: GroupSpec | None) -> TimeBucket | None:
        """Return the TimeBucket if the grouping is a single chunk-time binning."""
        if group is None or group.expected_keys is not None:
            return None
        if len(group.expressions) != 1:
            return None
        _, expression = group.expressions[0]
        if isinstance(expression, TimeBucket) and isinstance(expression.inner, Column) \
                and expression.inner.name == CHUNK_COLUMN:
            return expression
        return None

    def _resolve_group(self, select: SelectStatement, windows: list[TimeInterval]
                       ) -> GroupSpec | None:
        """Enumerate chunk-time bins so every bin is released, even empty ones."""
        bucket = self._chunk_bucket(select.group_by)
        if bucket is None:
            return select.group_by
        span = windows[0]
        for window in windows[1:]:
            span = span.union_span(window)
        keys: list[float] = []
        position = (span.start // bucket.width) * bucket.width
        while position < span.end:
            keys.append(position)
            position += bucket.width
        assert select.group_by is not None
        return GroupSpec(expressions=select.group_by.expressions, expected_keys=tuple(keys))

    @staticmethod
    def _release_interval(release: Release, group: GroupSpec | None,
                          bucket: TimeBucket | None, window: TimeInterval) -> TimeInterval:
        """Frames a release draws budget from (its bin for chunk-grouped releases)."""
        if bucket is not None and release.group_key is not None:
            try:
                start = float(release.group_key)
            except (TypeError, ValueError):
                return window
            return TimeInterval(start, start + bucket.width).clamp(window)
        return window

    def _source_intervals(self, release: Release, group: GroupSpec | None,
                          bucket: TimeBucket | None, table_sources: list[_TableSource]
                          ) -> dict[str, tuple[TimeInterval, ...]]:
        """Per-camera frame intervals one release draws budget from.

        Mirrors the budget-request loop of :meth:`execute` exactly — one
        interval per contributing source, grouped by camera and *not* merged,
        so the intervals reported on a :class:`ReleaseResult` always match
        what the ledgers charged (merging would claim the gap between two
        disjoint source windows of the same camera was charged).
        """
        intervals: dict[str, list[TimeInterval]] = {}
        for source in table_sources:
            interval = self._release_interval(release, group, bucket, source.window)
            if interval.duration <= 0:
                continue
            intervals.setdefault(source.camera.name, []).append(interval)
        return {camera: tuple(charged) for camera, charged in intervals.items()}

    def execute(self, query: PrividQuery, *, default_epsilon: float = 1.0,
                add_noise: bool = True, charge_budget: bool = True,
                cancel: "CancellationToken | None" = None,
                query_id: str | None = None,
                on_chunk: "Callable[[int], None] | None" = None) -> QueryResult:
        """Run a query end to end and return its (noisy) releases.

        ``add_noise=False`` returns the raw chunked-pipeline outputs (the
        "Privid (No Noise)" curves of Fig. 5); ``charge_budget=False`` skips
        budget accounting (used by what-if sweeps in the benchmarks).  Both
        default to the privacy-preserving behaviour.

        ``cancel`` is an optional
        :class:`~repro.core.resilience.CancellationToken` checked between
        chunks: past-deadline tokens raise
        :class:`~repro.errors.QueryTimeoutError`, manual cancels
        :class:`~repro.errors.QueryCancelledError` — always *before* budget
        admission, so a cancelled query never charges a ledger.

        ``query_id`` keys this query's budget charge idempotently on a
        durable ledger (a resumed query never double-charges); ``on_chunk``
        observes streaming progress (called with the completed-chunk count
        after each chunk's rows land) — the durable service journals it.
        """
        if cancel is not None:
            cancel.check()
        chunk_sets = self._run_splits(query)
        plan_context, sources = self._run_processes(query, chunk_sets, cancel,
                                                    on_chunk)

        prepared: list[tuple[SelectStatement, list[Release], GroupSpec | None,
                             TimeBucket | None, list[_TableSource], float]] = []
        requests_by_camera: dict[str, list[BudgetRequest]] = {}
        margins: dict[str, float] = {}

        for select in query.selects:
            referenced = collect_table_names(select.source)
            unknown = referenced - set(plan_context.tables)
            if unknown:
                raise QueryValidationError(f"SELECT references unknown tables {sorted(unknown)}")
            table_sources = [sources[name] for name in sorted(referenced)]
            windows = [source.window for source in table_sources]
            group = self._resolve_group(select, windows)
            bucket = self._chunk_bucket(select.group_by)
            info = select.source.sensitivity(plan_context)
            table = select.source.evaluate(plan_context)
            releases = compute_releases(table, info, select.aggregation, group)
            epsilon = select.epsilon if select.epsilon is not None else default_epsilon
            prepared.append((select, releases, group, bucket, table_sources, epsilon))
            for release in releases:
                for source in table_sources:
                    interval = self._release_interval(release, group, bucket, source.window)
                    if interval.duration <= 0:
                        continue
                    requests_by_camera.setdefault(source.camera.name, []).append(
                        BudgetRequest(interval=interval, epsilon=epsilon))
                    margin = max(margins.get(source.camera.name, 0.0), source.policy.rho)
                    margins[source.camera.name] = margin

        budget_remaining: dict[str, float] | None = None
        if charge_budget:
            # All-or-nothing multi-camera admission, atomic under the
            # (possibly service-shared) ledger's cross-camera lock: check
            # every camera, then charge every camera, with no window for a
            # concurrent query to interleave.
            self.ledger.admit_many(requests_by_camera, margins,
                                   query_id=query_id)
            budget_remaining = {
                camera_name: self.camera(camera_name).ledger.remaining_over(
                    _requests_span(requests))
                for camera_name, requests in sorted(requests_by_camera.items())}

        result = QueryResult(query_name=query.name,
                             budget_remaining=budget_remaining)
        for select, releases, group, bucket, table_sources, epsilon in prepared:
            for release in releases:
                source_intervals = self._source_intervals(release, group, bucket, table_sources)
                if source_intervals:
                    interval = None
                    for charged in source_intervals.values():
                        for piece in charged:
                            interval = piece if interval is None else interval.union_span(piece)
                else:
                    interval = self._release_interval(
                        release, group, bucket,
                        table_sources[0].window if table_sources else TimeInterval(0.0, 0.0))
                noise_scale = self.mechanism.scale(release.sensitivity, epsilon)
                if release.kind is ReleaseKind.ARGMAX:
                    assert release.candidates is not None
                    raw_winner = max(release.candidates, key=release.candidates.get) \
                        if release.candidates else None
                    if add_noise:
                        noisy_value: Any = self.mechanism.noisy_argmax(
                            release.candidates, release.sensitivity, epsilon)
                    else:
                        noisy_value = raw_winner
                    raw_value: Any = raw_winner
                else:
                    raw_value = release.raw_value
                    if add_noise:
                        noisy_value = self.mechanism.add_noise(
                            float(raw_value), release.sensitivity, epsilon)
                    else:
                        noisy_value = raw_value
                result.releases.append(ReleaseResult(
                    label=release.label,
                    kind=release.kind.value,
                    noisy_value=noisy_value,
                    raw_value_unsafe=raw_value,
                    sensitivity=release.sensitivity,
                    epsilon=epsilon,
                    noise_scale=noise_scale,
                    group_key=release.group_key,
                    interval=interval,
                    source_intervals=source_intervals or None,
                    candidates=dict(release.candidates)
                    if release.kind is ReleaseKind.ARGMAX and release.candidates else None,
                ))
                result.epsilon_consumed += epsilon
        result.metadata["num_tables"] = len(plan_context.tables)
        result.metadata["num_chunks"] = {name: properties.num_chunks
                                         for name, properties in plan_context.properties.items()}
        return result

    def resample_noise(self, result: QueryResult) -> QueryResult:
        """Return a copy of a result with fresh noise samples.

        The evaluation re-executes every query's noise 100-1000 times
        (Section 8.1); re-running the whole pipeline for each sample would be
        wasteful, and only the noise is random, so this redraws it from the
        stored raw values, sensitivities and epsilons.  ARGMAX releases redraw
        report-noisy-max over their stored candidates, so the winning key
        varies across resamples exactly as it would across real re-executions.
        """
        fresh = QueryResult(query_name=result.query_name,
                            epsilon_consumed=result.epsilon_consumed,
                            metadata=dict(result.metadata),
                            budget_remaining=dict(result.budget_remaining)
                            if result.budget_remaining else None)
        for release in result.releases:
            if release.kind == ReleaseKind.ARGMAX.value:
                if release.candidates:
                    noisy_value: Any = self.mechanism.noisy_argmax(
                        release.candidates, release.sensitivity, release.epsilon)
                else:
                    noisy_value = release.noisy_value
            else:
                noisy_value = self.mechanism.add_noise(
                    float(release.raw_value_unsafe), release.sensitivity, release.epsilon)
            fresh.releases.append(ReleaseResult(
                label=release.label,
                kind=release.kind,
                noisy_value=noisy_value,
                raw_value_unsafe=release.raw_value_unsafe,
                sensitivity=release.sensitivity,
                epsilon=release.epsilon,
                noise_scale=release.noise_scale,
                group_key=release.group_key,
                interval=release.interval,
                source_intervals=dict(release.source_intervals)
                if release.source_intervals else None,
                candidates=dict(release.candidates) if release.candidates else None,
            ))
        return fresh
