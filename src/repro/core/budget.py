"""Per-frame privacy budgets (Section 6.4, Algorithm 1 lines 1-5).

Rather than one global budget per camera, Privid allocates an epsilon budget
to every *frame*.  A query over interval [a, b] requesting epsilon_Q is
admitted only if every frame in [a - rho, b + rho] still has at least
epsilon_Q remaining; on admission, epsilon_Q is deducted from frames in
[a, b] (not the rho margin).  The margin guarantees that a single protected
segment — which lasts at most rho — can never straddle two queries drawing
from disjoint budgets (Appendix E.2, Case 2).

Storing a value per frame would not scale to year-long videos, so the ledger
tracks *charged intervals* instead and answers "minimum remaining budget over
an interval" by sweeping the charge boundaries.

Two grains of accounting live here:

* :class:`FrameBudgetLedger` — one camera's charges.  Check and charge are
  atomic under a per-ledger lock, so concurrent queries cannot both pass the
  admission check and then both charge past the budget.
* :class:`ServiceLedger` — the per-camera ledger registry a long-lived
  :class:`~repro.service.QueryService` shares across every query it runs.
  Its :meth:`~ServiceLedger.admit_many` makes *multi-camera* admission
  all-or-nothing under one cross-camera lock (check every camera, then
  charge every camera, with no interleaving window).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import BudgetExceededError, PolicyError, UnknownCameraError
from repro.utils.timebase import TimeInterval


@dataclass(frozen=True)
class BudgetRequest:
    """One release's budget demand: the frames it covers and its epsilon."""

    interval: TimeInterval
    epsilon: float

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PolicyError("requested epsilon must be positive")


@dataclass
class FrameBudgetLedger:
    """Tracks per-frame budget consumption for one camera.

    Thread-safe: readers and :meth:`admit` serialize on a per-ledger lock,
    and admit's check-then-charge is one atomic step — two concurrent
    queries racing for the last epsilon of a frame see exactly one winner.
    """

    total_epsilon: float
    charges: list[tuple[TimeInterval, float]] = field(default_factory=list)
    _lock: threading.RLock = field(default_factory=threading.RLock, init=False,
                                   repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise PolicyError("the per-frame budget must be positive")

    def _consumed_at(self, timestamp: float, extra: list[tuple[TimeInterval, float]] | None = None,
                     *, expand_extra_by: float = 0.0) -> float:
        """Total epsilon charged (plus pending requests) covering ``timestamp``."""
        consumed = sum(epsilon for interval, epsilon in self.charges
                       if interval.start <= timestamp < interval.end)
        if extra:
            for interval, epsilon in extra:
                expanded = interval.expand(expand_extra_by)
                if expanded.start <= timestamp < expanded.end:
                    consumed += epsilon
        return consumed

    def _breakpoints(self, window: TimeInterval,
                     extra: list[tuple[TimeInterval, float]] | None = None,
                     *, expand_extra_by: float = 0.0) -> list[float]:
        """Candidate timestamps where consumption can change inside ``window``."""
        points = {window.start}
        for interval, _ in self.charges:
            for edge in (interval.start, interval.end):
                if window.start <= edge < window.end:
                    points.add(edge)
        if extra:
            for interval, _ in extra:
                expanded = interval.expand(expand_extra_by)
                for edge in (expanded.start, expanded.end):
                    if window.start <= edge < window.end:
                        points.add(edge)
        return sorted(points)

    def consumed_over(self, interval: TimeInterval) -> float:
        """Maximum epsilon consumed by any frame in ``interval``."""
        with self._lock:
            if interval.duration <= 0:
                return self._consumed_at(interval.start)
            return max(self._consumed_at(point) for point in self._breakpoints(interval))

    def remaining_over(self, interval: TimeInterval) -> float:
        """Minimum remaining budget across frames in ``interval``."""
        return self.total_epsilon - self.consumed_over(interval)

    def remaining_at(self, timestamp: float) -> float:
        """Remaining budget of the frame at ``timestamp``."""
        with self._lock:
            return self.total_epsilon - self._consumed_at(timestamp)

    def max_consumed(self) -> float:
        """Highest epsilon consumed by any frame (0.0 on a fresh ledger).

        Consumption only changes at charge boundaries, and the maximum of a
        sum of half-open intervals is attained at some interval's start, so
        sweeping the charge starts suffices.  Feeds the service-level budget
        snapshot (``total - max_consumed`` = worst-frame remaining).
        """
        with self._lock:
            if not self.charges:
                return 0.0
            return max(self._consumed_at(interval.start)
                       for interval, _ in self.charges)

    def admit(self, requests: list[BudgetRequest], *, margin: float, charge: bool = True) -> None:
        """Admit (and by default charge) a query's releases, or raise untouched.

        The admission check extends every request's interval by ``margin``
        (the policy's rho) on both sides; the subsequent charge covers only
        the unexpanded interval, exactly as in Algorithm 1.  ``charge=False``
        performs the admission check only — used to make multi-camera queries
        all-or-nothing (every camera is checked before any is charged).
        """
        if not requests:
            return
        with self._lock:
            pending = [(request.interval, request.epsilon) for request in requests]
            span = pending[0][0].expand(margin)
            for interval, _ in pending[1:]:
                span = span.union_span(interval.expand(margin))
            for point in self._breakpoints(span, pending, expand_extra_by=margin):
                consumed = self._consumed_at(point, pending, expand_extra_by=margin)
                if consumed > self.total_epsilon + 1e-12:
                    raise BudgetExceededError(
                        f"insufficient privacy budget at t={point:.1f}s: "
                        f"required {consumed:.4f} exceeds total {self.total_epsilon:.4f}",
                        interval=span,
                        requested=consumed,
                        available=self.total_epsilon,
                    )
            if charge:
                for request in requests:
                    self.charges.append((request.interval, request.epsilon))

    def reset(self) -> None:
        """Forget all charges (used by tests and what-if analyses)."""
        with self._lock:
            self.charges.clear()


class ServiceLedger:
    """Per-camera budget ledgers shared across every query of a deployment.

    One instance backs one deployment's accounting: every
    :class:`~repro.core.executor.PrividSystem` holds a ServiceLedger
    (private by default, preserving the historical one-system-one-ledger
    behaviour), and a :class:`~repro.service.QueryService` passes *the same
    instance* to every per-query system so concurrent queries against the
    same camera contend on one budget.

    Thread-safety is layered: each :class:`FrameBudgetLedger` already makes
    its own check-and-charge atomic, and :meth:`admit_many` additionally
    holds a cross-camera lock around the whole check-all-then-charge-all
    sequence, keeping multi-camera admission all-or-nothing even when
    queries race (without it, two queries could interleave their per-camera
    charges such that each passes its check but a camera ends up
    over-charged, or a denied query leaves partial charges behind).
    """

    def __init__(self) -> None:
        self._ledgers: dict[str, FrameBudgetLedger] = {}
        self._lock = threading.RLock()

    def register(self, camera: str, total_epsilon: float) -> FrameBudgetLedger:
        """Get or create the ledger of ``camera`` (idempotent).

        Re-registering with a different ``total_epsilon`` is a
        :class:`~repro.errors.PolicyError`: the budget is the *camera's*
        property, and a second query must not silently re-budget frames
        other queries already drew from.
        """
        with self._lock:
            ledger = self._ledgers.get(camera)
            if ledger is None:
                ledger = FrameBudgetLedger(total_epsilon=total_epsilon)
                self._ledgers[camera] = ledger
            elif abs(ledger.total_epsilon - total_epsilon) > 1e-12:
                raise PolicyError(
                    f"camera {camera!r} is already budgeted at "
                    f"{ledger.total_epsilon} epsilon/frame; cannot re-register "
                    f"it at {total_epsilon}")
            return ledger

    def ledger(self, camera: str) -> FrameBudgetLedger:
        """The ledger of a registered camera."""
        with self._lock:
            if camera not in self._ledgers:
                raise UnknownCameraError(
                    f"no budget ledger for camera {camera!r}; "
                    f"registered: {sorted(self._ledgers)}")
            return self._ledgers[camera]

    def cameras(self) -> tuple[str, ...]:
        """Names of every camera with a ledger, sorted."""
        with self._lock:
            return tuple(sorted(self._ledgers))

    def admit_many(self, requests_by_camera: dict[str, list[BudgetRequest]],
                   margins: dict[str, float], *, charge: bool = True) -> None:
        """Atomically admit one query's demands across all its cameras.

        Checks every camera first (``charge=False`` passes), then charges
        every camera, all under the cross-camera lock — the all-or-nothing
        admission of Algorithm 1, made race-free.  Raises
        :class:`~repro.errors.BudgetExceededError` leaving every ledger
        untouched if any camera lacks budget.
        """
        with self._lock:
            for camera, requests in requests_by_camera.items():
                self.ledger(camera).admit(
                    requests, margin=margins.get(camera, 0.0), charge=False)
            if not charge:
                return
            for camera, requests in requests_by_camera.items():
                self.ledger(camera).admit(
                    requests, margin=margins.get(camera, 0.0), charge=True)

    def remaining_over(self, camera: str, interval: TimeInterval) -> float:
        """Minimum remaining budget of ``camera`` over ``interval``."""
        return self.ledger(camera).remaining_over(interval)

    def snapshot(self) -> dict[str, dict[str, float | int]]:
        """Point-in-time budget accounting per camera (for service stats).

        ``remaining_min`` is the worst frame's remaining epsilon — the
        number that gates the most-contended query.
        """
        with self._lock:
            ledgers = dict(self._ledgers)
        return {camera: {"total_epsilon": ledger.total_epsilon,
                         "remaining_min": ledger.total_epsilon - ledger.max_consumed(),
                         "charges": len(ledger.charges)}
                for camera, ledger in sorted(ledgers.items())}
