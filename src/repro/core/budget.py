"""Per-frame privacy budgets (Section 6.4, Algorithm 1 lines 1-5).

Rather than one global budget per camera, Privid allocates an epsilon budget
to every *frame*.  A query over interval [a, b] requesting epsilon_Q is
admitted only if every frame in [a - rho, b + rho] still has at least
epsilon_Q remaining; on admission, epsilon_Q is deducted from frames in
[a, b] (not the rho margin).  The margin guarantees that a single protected
segment — which lasts at most rho — can never straddle two queries drawing
from disjoint budgets (Appendix E.2, Case 2).

Storing a value per frame would not scale to year-long videos, so the ledger
tracks *charged intervals* instead and answers "minimum remaining budget over
an interval" by sweeping the charge boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BudgetExceededError, PolicyError
from repro.utils.timebase import TimeInterval


@dataclass(frozen=True)
class BudgetRequest:
    """One release's budget demand: the frames it covers and its epsilon."""

    interval: TimeInterval
    epsilon: float

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PolicyError("requested epsilon must be positive")


@dataclass
class FrameBudgetLedger:
    """Tracks per-frame budget consumption for one camera."""

    total_epsilon: float
    charges: list[tuple[TimeInterval, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise PolicyError("the per-frame budget must be positive")

    def _consumed_at(self, timestamp: float, extra: list[tuple[TimeInterval, float]] | None = None,
                     *, expand_extra_by: float = 0.0) -> float:
        """Total epsilon charged (plus pending requests) covering ``timestamp``."""
        consumed = sum(epsilon for interval, epsilon in self.charges
                       if interval.start <= timestamp < interval.end)
        if extra:
            for interval, epsilon in extra:
                expanded = interval.expand(expand_extra_by)
                if expanded.start <= timestamp < expanded.end:
                    consumed += epsilon
        return consumed

    def _breakpoints(self, window: TimeInterval,
                     extra: list[tuple[TimeInterval, float]] | None = None,
                     *, expand_extra_by: float = 0.0) -> list[float]:
        """Candidate timestamps where consumption can change inside ``window``."""
        points = {window.start}
        for interval, _ in self.charges:
            for edge in (interval.start, interval.end):
                if window.start <= edge < window.end:
                    points.add(edge)
        if extra:
            for interval, _ in extra:
                expanded = interval.expand(expand_extra_by)
                for edge in (expanded.start, expanded.end):
                    if window.start <= edge < window.end:
                        points.add(edge)
        return sorted(points)

    def consumed_over(self, interval: TimeInterval) -> float:
        """Maximum epsilon consumed by any frame in ``interval``."""
        if interval.duration <= 0:
            return self._consumed_at(interval.start)
        return max(self._consumed_at(point) for point in self._breakpoints(interval))

    def remaining_over(self, interval: TimeInterval) -> float:
        """Minimum remaining budget across frames in ``interval``."""
        return self.total_epsilon - self.consumed_over(interval)

    def remaining_at(self, timestamp: float) -> float:
        """Remaining budget of the frame at ``timestamp``."""
        return self.total_epsilon - self._consumed_at(timestamp)

    def admit(self, requests: list[BudgetRequest], *, margin: float, charge: bool = True) -> None:
        """Admit (and by default charge) a query's releases, or raise untouched.

        The admission check extends every request's interval by ``margin``
        (the policy's rho) on both sides; the subsequent charge covers only
        the unexpanded interval, exactly as in Algorithm 1.  ``charge=False``
        performs the admission check only — used to make multi-camera queries
        all-or-nothing (every camera is checked before any is charged).
        """
        if not requests:
            return
        pending = [(request.interval, request.epsilon) for request in requests]
        span = pending[0][0].expand(margin)
        for interval, _ in pending[1:]:
            span = span.union_span(interval.expand(margin))
        for point in self._breakpoints(span, pending, expand_extra_by=margin):
            consumed = self._consumed_at(point, pending, expand_extra_by=margin)
            if consumed > self.total_epsilon + 1e-12:
                raise BudgetExceededError(
                    f"insufficient privacy budget at t={point:.1f}s: "
                    f"required {consumed:.4f} exceeds total {self.total_epsilon:.4f}",
                    interval=span,
                    requested=consumed,
                    available=self.total_epsilon,
                )
        if charge:
            for request in requests:
                self.charges.append((request.interval, request.epsilon))

    def reset(self) -> None:
        """Forget all charges (used by tests and what-if analyses)."""
        self.charges.clear()
