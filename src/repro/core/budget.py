"""Per-frame privacy budgets (Section 6.4, Algorithm 1 lines 1-5).

Rather than one global budget per camera, Privid allocates an epsilon budget
to every *frame*.  A query over interval [a, b] requesting epsilon_Q is
admitted only if every frame in [a - rho, b + rho] still has at least
epsilon_Q remaining; on admission, epsilon_Q is deducted from frames in
[a, b] (not the rho margin).  The margin guarantees that a single protected
segment — which lasts at most rho — can never straddle two queries drawing
from disjoint budgets (Appendix E.2, Case 2).

Storing a value per frame would not scale to year-long videos, so the ledger
tracks *charged intervals* instead and answers "minimum remaining budget over
an interval" by sweeping the charge boundaries.

Two grains of accounting live here:

* :class:`FrameBudgetLedger` — one camera's charges.  Check and charge are
  atomic under a per-ledger lock, so concurrent queries cannot both pass the
  admission check and then both charge past the budget.
* :class:`ServiceLedger` — the per-camera ledger registry a long-lived
  :class:`~repro.service.QueryService` shares across every query it runs.
  Its :meth:`~ServiceLedger.admit_many` makes *multi-camera* admission
  all-or-nothing under one cross-camera lock (check every camera, then
  charge every camera, with no interleaving window).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.errors import BudgetExceededError, DurabilityError, PolicyError, \
    UnknownCameraError
from repro.utils.timebase import TimeInterval


@dataclass(frozen=True)
class BudgetRequest:
    """One release's budget demand: the frames it covers and its epsilon."""

    interval: TimeInterval
    epsilon: float

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise PolicyError("requested epsilon must be positive")


@dataclass
class FrameBudgetLedger:
    """Tracks per-frame budget consumption for one camera.

    Thread-safe: readers and :meth:`admit` serialize on a per-ledger lock,
    and admit's check-then-charge is one atomic step — two concurrent
    queries racing for the last epsilon of a frame see exactly one winner.
    """

    total_epsilon: float
    charges: list[tuple[TimeInterval, float]] = field(default_factory=list)
    _lock: threading.RLock = field(default_factory=threading.RLock, init=False,
                                   repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.total_epsilon <= 0:
            raise PolicyError("the per-frame budget must be positive")

    def _consumed_at(self, timestamp: float, extra: list[tuple[TimeInterval, float]] | None = None,
                     *, expand_extra_by: float = 0.0) -> float:
        """Total epsilon charged (plus pending requests) covering ``timestamp``."""
        consumed = sum(epsilon for interval, epsilon in self.charges
                       if interval.start <= timestamp < interval.end)
        if extra:
            for interval, epsilon in extra:
                expanded = interval.expand(expand_extra_by)
                if expanded.start <= timestamp < expanded.end:
                    consumed += epsilon
        return consumed

    def _breakpoints(self, window: TimeInterval,
                     extra: list[tuple[TimeInterval, float]] | None = None,
                     *, expand_extra_by: float = 0.0) -> list[float]:
        """Candidate timestamps where consumption can change inside ``window``."""
        points = {window.start}
        for interval, _ in self.charges:
            for edge in (interval.start, interval.end):
                if window.start <= edge < window.end:
                    points.add(edge)
        if extra:
            for interval, _ in extra:
                expanded = interval.expand(expand_extra_by)
                for edge in (expanded.start, expanded.end):
                    if window.start <= edge < window.end:
                        points.add(edge)
        return sorted(points)

    def consumed_over(self, interval: TimeInterval) -> float:
        """Maximum epsilon consumed by any frame in ``interval``."""
        with self._lock:
            if interval.duration <= 0:
                return self._consumed_at(interval.start)
            return max(self._consumed_at(point) for point in self._breakpoints(interval))

    def remaining_over(self, interval: TimeInterval) -> float:
        """Minimum remaining budget across frames in ``interval``."""
        return self.total_epsilon - self.consumed_over(interval)

    def remaining_at(self, timestamp: float) -> float:
        """Remaining budget of the frame at ``timestamp``."""
        with self._lock:
            return self.total_epsilon - self._consumed_at(timestamp)

    def max_consumed(self) -> float:
        """Highest epsilon consumed by any frame (0.0 on a fresh ledger).

        Consumption only changes at charge boundaries, and the maximum of a
        sum of half-open intervals is attained at some interval's start, so
        sweeping the charge starts suffices.  Feeds the service-level budget
        snapshot (``total - max_consumed`` = worst-frame remaining).
        """
        with self._lock:
            if not self.charges:
                return 0.0
            return max(self._consumed_at(interval.start)
                       for interval, _ in self.charges)

    def admit(self, requests: list[BudgetRequest], *, margin: float, charge: bool = True) -> None:
        """Admit (and by default charge) a query's releases, or raise untouched.

        The admission check extends every request's interval by ``margin``
        (the policy's rho) on both sides; the subsequent charge covers only
        the unexpanded interval, exactly as in Algorithm 1.  ``charge=False``
        performs the admission check only — used to make multi-camera queries
        all-or-nothing (every camera is checked before any is charged).
        """
        if not requests:
            return
        with self._lock:
            pending = [(request.interval, request.epsilon) for request in requests]
            span = pending[0][0].expand(margin)
            for interval, _ in pending[1:]:
                span = span.union_span(interval.expand(margin))
            for point in self._breakpoints(span, pending, expand_extra_by=margin):
                consumed = self._consumed_at(point, pending, expand_extra_by=margin)
                if consumed > self.total_epsilon + 1e-12:
                    raise BudgetExceededError(
                        f"insufficient privacy budget at t={point:.1f}s: "
                        f"required {consumed:.4f} exceeds total {self.total_epsilon:.4f}",
                        interval=span,
                        requested=consumed,
                        available=self.total_epsilon,
                    )
            if charge:
                for request in requests:
                    self.charges.append((request.interval, request.epsilon))

    def reset(self) -> None:
        """Forget all charges (used by tests and what-if analyses)."""
        with self._lock:
            self.charges.clear()


class ServiceLedger:
    """Per-camera budget ledgers shared across every query of a deployment.

    One instance backs one deployment's accounting: every
    :class:`~repro.core.executor.PrividSystem` holds a ServiceLedger
    (private by default, preserving the historical one-system-one-ledger
    behaviour), and a :class:`~repro.service.QueryService` passes *the same
    instance* to every per-query system so concurrent queries against the
    same camera contend on one budget.

    Thread-safety is layered: each :class:`FrameBudgetLedger` already makes
    its own check-and-charge atomic, and :meth:`admit_many` additionally
    holds a cross-camera lock around the whole check-all-then-charge-all
    sequence, keeping multi-camera admission all-or-nothing even when
    queries race (without it, two queries could interleave their per-camera
    charges such that each passes its check but a camera ends up
    over-charged, or a denied query leaves partial charges behind).
    """

    #: Admission-timeline entries kept before the timeline stops growing (the
    #: counters keep counting).  Bounds memory on always-on deployments while
    #: leaving any realistic benchmark run fully recorded.
    MAX_TIMELINE_EVENTS = 100_000

    def __init__(self) -> None:
        self._ledgers: dict[str, FrameBudgetLedger] = {}
        self._lock = threading.RLock()
        # Contention accounting for the serving load harness: how often
        # queries queued on the cross-camera lock, how admissions resolved,
        # and a per-admission timeline of worst-frame remaining budgets (the
        # budget-exhaustion curve of a run).  Mutated only while holding
        # ``_lock``.
        self._admit_calls = 0
        self._admitted = 0
        self._denied = 0
        self._lock_contended = 0
        self._timeline: list[dict[str, Any]] = []
        self._timeline_dropped = 0

    def register(self, camera: str, total_epsilon: float) -> FrameBudgetLedger:
        """Get or create the ledger of ``camera`` (idempotent).

        Re-registering with a different ``total_epsilon`` is a
        :class:`~repro.errors.PolicyError`: the budget is the *camera's*
        property, and a second query must not silently re-budget frames
        other queries already drew from.
        """
        with self._lock:
            ledger = self._ledgers.get(camera)
            if ledger is None:
                ledger = FrameBudgetLedger(total_epsilon=total_epsilon)
                self._ledgers[camera] = ledger
            elif abs(ledger.total_epsilon - total_epsilon) > 1e-12:
                raise PolicyError(
                    f"camera {camera!r} is already budgeted at "
                    f"{ledger.total_epsilon} epsilon/frame; cannot re-register "
                    f"it at {total_epsilon}")
            return ledger

    def ledger(self, camera: str) -> FrameBudgetLedger:
        """The ledger of a registered camera."""
        with self._lock:
            if camera not in self._ledgers:
                raise UnknownCameraError(
                    f"no budget ledger for camera {camera!r}; "
                    f"registered: {sorted(self._ledgers)}")
            return self._ledgers[camera]

    def cameras(self) -> tuple[str, ...]:
        """Names of every camera with a ledger, sorted."""
        with self._lock:
            return tuple(sorted(self._ledgers))

    def admit_many(self, requests_by_camera: dict[str, list[BudgetRequest]],
                   margins: dict[str, float], *, charge: bool = True,
                   query_id: str | None = None) -> None:
        """Atomically admit one query's demands across all its cameras.

        Checks every camera first (``charge=False`` passes), then charges
        every camera, all under the cross-camera lock — the all-or-nothing
        admission of Algorithm 1, made race-free.  Raises
        :class:`~repro.errors.BudgetExceededError` leaving every ledger
        untouched if any camera lacks budget.

        ``query_id`` keys the charge for idempotent crash recovery; the
        in-memory ledger ignores it (every charge is new), while
        :class:`DurableServiceLedger` uses it to make a replayed or resumed
        query's charge land exactly once.
        """
        del query_id  # only meaningful to the durable subclass
        contended = self._acquire_measured()
        try:
            try:
                for camera, requests in requests_by_camera.items():
                    self.ledger(camera).admit(
                        requests, margin=margins.get(camera, 0.0), charge=False)
            except BudgetExceededError:
                if charge:
                    self._note_admission("denied", requests_by_camera, contended)
                raise
            if not charge:
                return
            for camera, requests in requests_by_camera.items():
                self.ledger(camera).admit(
                    requests, margin=margins.get(camera, 0.0), charge=True)
            self._note_admission("admitted", requests_by_camera, contended)
        finally:
            self._lock.release()

    # ------------------------------------------------------- contention stats

    def _acquire_measured(self) -> bool:
        """Take the cross-camera lock, recording whether we had to wait.

        Returns True when the lock was held by another thread at arrival —
        the contention signal the serving benchmarks report.  Re-entrant
        acquisitions by the owning thread never count (RLock semantics), so
        internal nesting is invisible.  The caller must release the lock.
        """
        if self._lock.acquire(blocking=False):
            return False
        self._lock.acquire()
        self._lock_contended += 1
        return True

    def _note_admission(self, outcome: str,
                        requests_by_camera: dict[str, list[BudgetRequest]],
                        contended: bool) -> None:
        """Record one charge-bearing admission attempt (holding ``_lock``)."""
        self._admit_calls += 1
        if outcome == "admitted":
            self._admitted += 1
        else:
            self._denied += 1
        if len(self._timeline) >= self.MAX_TIMELINE_EVENTS:
            self._timeline_dropped += 1
            return
        remaining = {}
        for camera in sorted(requests_by_camera):
            ledger = self._ledgers.get(camera)
            if ledger is not None:
                remaining[camera] = ledger.total_epsilon - ledger.max_consumed()
        self._timeline.append({"event": self._admit_calls - 1,
                               "outcome": outcome,
                               "contended": contended,
                               "remaining_min": remaining})

    def contention_stats(self, *, include_timeline: bool = True
                         ) -> dict[str, Any]:
        """Admission/contention accounting for the load harness.

        ``admit_calls`` counts charge-bearing :meth:`admit_many` attempts
        (``admitted`` + ``denied`` partitions them); ``lock_contended`` the
        attempts that queued behind another thread on the cross-camera lock.
        ``timeline`` (optional) lists one entry per attempt — outcome,
        whether it contended, and the worst-frame remaining budget of every
        touched camera *after* the attempt — the budget-exhaustion curve a
        ``BENCH_serving.json`` run reports.  Timeline recording stops after
        ``MAX_TIMELINE_EVENTS`` entries (``timeline_dropped`` counts the
        overflow); the counters keep counting.
        """
        with self._lock:
            stats: dict[str, Any] = {
                "admit_calls": self._admit_calls,
                "admitted": self._admitted,
                "denied": self._denied,
                "lock_contended": self._lock_contended,
                "timeline_dropped": self._timeline_dropped,
            }
            if include_timeline:
                stats["timeline"] = [dict(entry, remaining_min=dict(
                    entry["remaining_min"])) for entry in self._timeline]
            return stats

    def remaining_over(self, camera: str, interval: TimeInterval) -> float:
        """Minimum remaining budget of ``camera`` over ``interval``."""
        return self.ledger(camera).remaining_over(interval)

    def snapshot(self) -> dict[str, dict[str, float | int]]:
        """Point-in-time budget accounting per camera (for service stats).

        ``remaining_min`` is the worst frame's remaining epsilon — the
        number that gates the most-contended query.
        """
        with self._lock:
            ledgers = dict(self._ledgers)
        return {camera: {"total_epsilon": ledger.total_epsilon,
                         "remaining_min": ledger.total_epsilon - ledger.max_consumed(),
                         "charges": len(ledger.charges)}
                for camera, ledger in sorted(ledgers.items())}


class DurableServiceLedger(ServiceLedger):
    """A :class:`ServiceLedger` whose mutations survive ``kill -9``.

    Every budget-bearing mutation — camera registration and the
    all-or-nothing per-query charge set — is appended to a
    :class:`~repro.core.durability.WriteAheadLog` (and fsynced) *before* it
    takes effect in memory, and both the live path and crash recovery apply
    the mutation from the same record payload, so a recovered ledger is
    bit-exact: same charge intervals (floats round-trip through JSON
    exactly), same order, same remaining budgets.

    Charges are keyed idempotently by ``query_id`` (each interval within a
    record additionally by ``(query_id, camera, interval, epsilon, ordinal)``),
    so the two crash windows around a charge are both safe:

    * crash *before* the append — nothing logged, nothing charged; the
      resumed query admits and charges normally;
    * crash *after* the append but before the in-memory apply — recovery
      replays the record, and the resumed query's :meth:`admit_many` sees
      its ``query_id`` already charged and skips admission entirely (no
      double-charge, and no spurious denial from counting the charge twice).

    Construction *is* recovery: the snapshot is restored, pending log
    records are replayed (ledger ops here, ``query_*`` ops dispatched to the
    :class:`~repro.core.durability.QueryJournal`), and :attr:`last_recovery`
    reports what happened for ``health()``.
    """

    def __init__(self, wal: Any, *, journal: Any = None,
                 compact_every: int = 1024) -> None:
        if compact_every < 1:
            raise ValueError("compact_every must be at least 1")
        super().__init__()
        self.wal = wal
        self.journal = journal
        self.compact_every = compact_every
        #: query_id -> WAL seq of its charge record (applied charges).
        self._charged_queries: dict[str, int] = {}
        self._charge_keys: set[tuple[Any, ...]] = set()
        #: Seq of the most recent charge record (the chaos harness uses it
        #: to schedule a crash exactly on the charge append).
        self.last_charge_seq: int | None = None
        self.last_recovery = self._recover()

    # --------------------------------------------------------------- recovery

    def _recover(self) -> dict[str, Any]:
        state = self.wal.snapshot_state
        if state is not None:
            self._restore(state.get("ledger", {}))
            if self.journal is not None:
                self.journal.restore(state.get("journal", {}))
        replayed = 0
        for record in self.wal.pending_records:
            self._apply(record)
            replayed += 1
        return {"records_replayed": replayed,
                "charged_queries": len(self._charged_queries),
                **self.wal.recovery_info}

    def _apply(self, record: dict[str, Any]) -> None:
        op = record.get("op")
        if op == "register":
            self._apply_register(record)
        elif op == "charge":
            self._apply_charge(record)
        elif self.journal is not None:
            self.journal.apply(record)

    def _apply_register(self, record: dict[str, Any]) -> None:
        camera = record["camera"]
        if camera not in self._ledgers:
            self._ledgers[camera] = FrameBudgetLedger(
                total_epsilon=float(record["total_epsilon"]))

    def _apply_charge(self, record: dict[str, Any]) -> None:
        query_id = record.get("query_id")
        for camera, charges in record["cameras"].items():
            ledger = self._ledgers.get(camera)
            if ledger is None:
                # A charge always follows its camera's register record; a
                # charge for an unknown camera means lost state, not a torn
                # tail — refuse to guess at budgets.
                raise DurabilityError(
                    f"WAL charge record for unregistered camera {camera!r}")
            with ledger._lock:
                for ordinal, (start, end, epsilon) in enumerate(charges):
                    key = (query_id, camera, start, end, epsilon, ordinal)
                    if query_id is not None and key in self._charge_keys:
                        continue
                    if query_id is not None:
                        self._charge_keys.add(key)
                    ledger.charges.append(
                        (TimeInterval(float(start), float(end)), float(epsilon)))
        if query_id is not None:
            self._charged_queries[query_id] = int(record.get("seq", -1))
            self.last_charge_seq = int(record.get("seq", -1))
            if self.journal is not None:
                self.journal.mark_charged(query_id)

    def _restore(self, state: dict[str, Any]) -> None:
        for camera, payload in state.get("cameras", {}).items():
            ledger = FrameBudgetLedger(total_epsilon=float(payload["total_epsilon"]))
            ledger.charges = [(TimeInterval(float(start), float(end)), float(epsilon))
                              for start, end, epsilon in payload.get("charges", [])]
            self._ledgers[camera] = ledger
        self._charged_queries = {query_id: int(seq) for query_id, seq
                                 in state.get("charged_queries", {}).items()}
        self._charge_keys = {tuple(key) for key in state.get("charge_keys", [])}

    # -------------------------------------------------------------- mutations

    def register(self, camera: str, total_epsilon: float) -> FrameBudgetLedger:
        """Get-or-create with write-ahead durability.

        Only a genuinely new camera appends a record — re-registration is
        the same idempotent get-or-create (with the same epsilon-mismatch
        :class:`~repro.errors.PolicyError`) as the in-memory ledger, so a
        recovered deployment re-running its setup code writes nothing.
        """
        with self._lock:
            if camera not in self._ledgers:
                if total_epsilon <= 0:
                    # Validate before logging: a record that cannot replay
                    # (FrameBudgetLedger rejects it) must never be written.
                    raise PolicyError("the per-frame budget must be positive")
                self.wal.append({"op": "register", "camera": camera,
                                 "total_epsilon": float(total_epsilon)})
                self._apply_register({"camera": camera,
                                      "total_epsilon": total_epsilon})
                self._maybe_compact()
            return super().register(camera, total_epsilon)

    def admit_many(self, requests_by_camera: dict[str, list[BudgetRequest]],
                   margins: dict[str, float], *, charge: bool = True,
                   query_id: str | None = None) -> None:
        """All-or-nothing admission, logged before it takes effect.

        The admission *check* runs purely in memory; on success the full
        charge set is appended (and fsynced) as one ``charge`` record, then
        applied from that same record.  A ``query_id`` that already charged
        — replayed after a crash, or resubmitted with its resume token —
        returns immediately without touching any ledger.
        """
        contended = self._acquire_measured()
        try:
            if charge and query_id is not None \
                    and query_id in self._charged_queries:
                return
            try:
                super().admit_many(requests_by_camera, margins, charge=False)
            except BudgetExceededError:
                if charge:
                    self._note_admission("denied", requests_by_camera,
                                         contended)
                raise
            if not charge:
                return
            record = {"op": "charge", "query_id": query_id,
                      "cameras": {camera: [[request.interval.start,
                                            request.interval.end,
                                            request.epsilon]
                                           for request in requests]
                                  for camera, requests
                                  in sorted(requests_by_camera.items())}}
            seq = self.wal.append(record)
            self._apply_charge({**record, "seq": seq})
            if query_id is None:
                self.last_charge_seq = seq
            self._note_admission("admitted", requests_by_camera, contended)
            self._maybe_compact()
        finally:
            self._lock.release()

    def query_charged(self, query_id: str) -> bool:
        """Has this query's charge set already been durably applied?"""
        with self._lock:
            return query_id in self._charged_queries

    # ------------------------------------------------------------- compaction

    def _maybe_compact(self) -> None:
        if self.wal.appends_since_compact >= self.compact_every:
            self.compact()

    def compact(self) -> None:
        """Snapshot the full ledger (+ journal) state and truncate the log."""
        with self._lock:
            state: dict[str, Any] = {"ledger": self._state_payload()}
            if self.journal is not None:
                state["journal"] = self.journal.state_payload()
            self.wal.compact(state)

    def _state_payload(self) -> dict[str, Any]:
        cameras = {}
        for camera, ledger in sorted(self._ledgers.items()):
            with ledger._lock:
                cameras[camera] = {
                    "total_epsilon": ledger.total_epsilon,
                    "charges": [[interval.start, interval.end, epsilon]
                                for interval, epsilon in ledger.charges]}
        return {"cameras": cameras,
                "charged_queries": dict(self._charged_queries),
                "charge_keys": [list(key) for key in sorted(self._charge_keys,
                                                            key=repr)]}

    # ---------------------------------------------------------------- health

    def durability_health(self) -> dict[str, Any]:
        """WAL status + last recovery, the ``health()`` durability section."""
        return {"wal": self.wal.status(), "last_recovery": dict(self.last_recovery)}
