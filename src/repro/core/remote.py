"""Sharded multi-host chunk execution behind the engine seam.

Privid chunks are independent units of work (Appendix B), so the streaming
engine contract of :mod:`repro.core.engine` — ``imap_chunks`` over an ordered
chunk stream — is exactly the seam a *distributed* executor plugs into.  This
module provides :class:`ShardedEngine`: a coordinator that partitions a
query's chunk stream across N executor *shards* and merges ordered results
back through the same contract, so ``PrividSystem(engine="sharded:4")``
behaves byte-for-byte like ``engine="serial"`` (the hashing determinism
contract makes chunk results order- and placement-independent; see
``docs/architecture.md``).

Each shard speaks a small length-prefixed JSON protocol over a
:class:`ShardTransport` — the byte-stream seam between the coordinator and
one executor worker.  Two transports ship:

* :class:`PipeTransport` — a subprocess running this module's worker
  entrypoint (``python -m repro.core.remote``), framed over its stdin/stdout
  pipes.  The single-host default: shards live and die with the coordinator.
* :class:`TcpTransport` — a socket connection to a shard *daemon*
  (``python -m repro.core.remote --listen HOST:PORT``), so shards genuinely
  live on other hosts.  ``ShardedEngine.connect(["hostA:9101", ...])`` (spec
  string ``sharded:hostA:9101,hostB:9101``) attaches to already-running
  daemons; ``ShardedEngine.local_tcp(N)`` (spec ``sharded:tcp[:N]``) spawns
  N localhost daemons and connects to them — the same wire path as a real
  multi-host deployment, self-contained enough for tests and CI.

The protocol is byte-oriented and JSON-typed precisely so the two transports
are interchangeable: neither endpoint can tell pipes from sockets, and every
frame format below is identical on both.

Wire protocol
=============

Every frame is a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object (:func:`encode_frame` /
:func:`read_frame`).  Messages are typed by their ``"type"`` key:

Coordinator -> shard:

``{"type": "task", "seq": S, "payload": PATH, "specs": [SPEC, ...]}``
    Execute a batch of chunks.  ``seq`` is a coordinator-unique task id,
    ``payload`` the path of the stream's :class:`~repro.core.engine._TaskBroadcast`
    pickle file holding the heavy shared constants (runner, context, videos,
    masks, regions), and each ``SPEC`` a compact per-chunk message —
    ``[video_ref, index, start, end, mask_ref, region_ref, sample_period,
    metadata]`` — exactly the spec-dispatch scheme the process engine uses,
    so per-task IPC stays at a few ints and floats per chunk.  Because
    specs travel as JSON (the process engine pickles its), per-chunk
    ``metadata`` must be JSON-safe and loses tuple-ness in transit
    (tuples arrive as lists); library-built chunk streams never set
    metadata, but metadata-sensitive third-party streams should use the
    process engine or stick to JSON-native types.
``{"type": "store", "spec": "disk:PATH" | "tiered:PATH"}``
    Adopt a shard-local view of the shared chunk result store (see
    :func:`repro.core.cache.shared_spec`): subsequent tasks consult it
    before executing and write successful results through to it, which is
    what lets shards on different hosts share warm entries over common
    storage — and preserves completed work if the coordinator dies.
``{"type": "ping", "token": T}``
    Heartbeat probe; the shard echoes the token back as a ``pong``.
``{"type": "shutdown"}``
    Exit the worker loop (EOF on stdin has the same effect).

Shard -> coordinator:

``{"type": "result", "seq": S, "outcomes": [{"rows": [...], "fallback": F,
"cache_hit": C, "stored": W}, ...]}``
    One outcome per spec of task ``S``, in spec order.  Rows are the
    schema-coerced row dicts (JSON-safe by construction — the on-disk store
    serializes the very same shape); ``fallback`` marks crash/timeout
    default rows, ``cache_hit`` marks rows the shard served from its local
    view of the shared store *without executing* (the coordinator counts
    these as ``shard_cache_hits``), and ``stored`` marks rows that already
    live in the shared store (served from it or written through), so the
    coordinator's cache layer only promotes them into its memory tier
    instead of re-writing the disk entry.
``{"type": "pong", "token": T}``
    Heartbeat reply.
``{"type": "error", "seq": S, "message": TEXT}``
    Task ``S`` failed at the protocol level (e.g. an unreadable payload
    file).  Executable crashes never surface here — the sandbox converts
    those to fallback rows inside a normal ``result``.

Fault tolerance
===============

The coordinator applies results *at most once*: a task is retired the moment
its first ``result`` frame arrives, and any later frame for the same ``seq``
(a reassigned task whose original shard turned out to be merely slow) is
dropped.  Workers answer pings from a dedicated read loop while tasks
execute on a separate thread, so a *busy* shard never reads as *dead*:
silence past ``heartbeat_timeout`` while holding work genuinely means
frozen or gone, and such a shard is killed and its pending tasks
redispatched to the survivors, each task at most ``max_task_retries`` times
(exhaustion is routed to the stream that owns the task, never raised into
an unrelated stream that happened to be pumping).  Results stay
byte-identical because chunk outputs are deterministic functions of the
chunk, never of placement.  Dead shards are replaced at the start of the
next stream, not mid-stream.
"""

from __future__ import annotations

import argparse
import json
import os
import queue
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
import traceback
import warnings
from collections import deque
from itertools import chain
from typing import TYPE_CHECKING, Any, BinaryIO, Callable, Iterable, Iterator, \
    Protocol, Sized, runtime_checkable

import repro
from repro.core.engine import (
    ChunkOutcome,
    ChunkSpecMessage,
    DispatchStats,
    _default_workers,
    _load_payload,
    _TaskBroadcast,
    chunk_from_spec,
    execute_chunk,
)
from repro.core.faults import FaultInjector, faulty_transport_factory
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.errors import RemoteShardError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.cache import ChunkStore
    from repro.sandbox.environment import ExecutionContext, SandboxRunner
    from repro.video.chunking import Chunk


def _env_float(name: str, default: float) -> float:
    """A positive float from the environment, or ``default``.

    ``PRIVID_HEARTBEAT_TIMEOUT`` / ``PRIVID_STARTUP_GRACE`` let slow CI
    runners widen the failure-detection windows without touching code.
    """
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = float(raw)
    except ValueError:
        warnings.warn(f"ignoring invalid {name}={raw!r} (expected a number)",
                      RuntimeWarning, stacklevel=2)
        return default
    if value <= 0:
        warnings.warn(f"ignoring non-positive {name}={raw!r}",
                      RuntimeWarning, stacklevel=2)
        return default
    return value

# --------------------------------------------------------------------- frames

_FRAME_HEADER = struct.Struct(">I")

#: Upper bound on a single frame body; a corrupt length prefix must never
#: make a reader try to allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def encode_frame(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message to its length-prefixed wire form."""
    body = json.dumps(message, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise RemoteShardError(
            f"protocol frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return _FRAME_HEADER.pack(len(body)) + body


def _read_exact(stream: BinaryIO, count: int) -> bytes | None:
    """Read exactly ``count`` bytes, or None on a clean/torn EOF."""
    data = b""
    while len(data) < count:
        piece = stream.read(count - len(data))
        if not piece:
            return None
        data += piece
    return data


def read_frame(stream: BinaryIO) -> dict[str, Any] | None:
    """Read one length-prefixed JSON frame; None on EOF (or a torn stream)."""
    header = _read_exact(stream, _FRAME_HEADER.size)
    if header is None:
        return None
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise RemoteShardError(f"frame length {length} exceeds MAX_FRAME_BYTES")
    body = _read_exact(stream, length)
    if body is None:
        return None
    return json.loads(body.decode("utf-8"))


def write_frame(stream: BinaryIO, message: dict[str, Any]) -> int:
    """Write one frame and flush; returns the number of bytes written."""
    data = encode_frame(message)
    stream.write(data)
    stream.flush()
    return len(data)


# ----------------------------------------------------------------- transports


def _worker_env() -> dict[str, str]:
    """Environment for a spawned worker: this library importable on PYTHONPATH."""
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = package_root + (os.pathsep + existing if existing else "")
    return env


#: Command line of a worker process.  -c rather than -m: runpy would
#: re-execute a module the repro.core package __init__ already imported
#: (and warn about it).  Extra arguments are forwarded to :func:`main`.
_WORKER_COMMAND = [sys.executable, "-c",
                   "from repro.core.remote import main; main()"]

#: Default dial schedule of :class:`TcpTransport`: three attempts spanning
#: roughly a third of a second — enough to bridge a daemon restart without
#: stalling a genuinely-dead endpoint for long (the per-address circuit
#: breaker takes over across stream starts).
DIAL_RETRY_POLICY = RetryPolicy(max_attempts=3, base_delay=0.1,
                                multiplier=2.0, max_delay=1.0, jitter=0.25)


@runtime_checkable
class ShardTransport(Protocol):
    """The byte-stream seam between the coordinator and one shard worker.

    A transport moves whole protocol frames in both directions and answers
    liveness questions about its far end; everything above it — dispatch,
    heartbeats, reassignment, at-most-once application — is
    transport-agnostic.  ``read`` blocks until a frame arrives and returns
    None on a clean or torn EOF (worker exit, socket disconnect); ``write``
    raises :class:`OSError` when the far end is gone.  ``process`` is the
    worker subprocess when this transport owns one (pipe workers, locally
    spawned TCP daemons) and None for a connection to a foreign daemon.
    """

    description: str
    process: subprocess.Popen | None

    def read(self) -> dict[str, Any] | None:
        """Blocking read of one frame; None once the stream is finished."""
        ...  # pragma: no cover - protocol

    def write(self, message: dict[str, Any]) -> int:
        """Send one frame; returns its wire bytes, raises OSError when dead."""
        ...  # pragma: no cover - protocol

    def is_alive(self) -> bool:
        """Cheap non-blocking liveness probe (no I/O beyond a process poll)."""
        ...  # pragma: no cover - protocol

    def kill(self) -> None:
        """Force-terminate the far end (or at least this connection to it)."""
        ...  # pragma: no cover - protocol

    def close(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: ask the worker to exit, escalate after timeout."""
        ...  # pragma: no cover - protocol


class PipeTransport:
    """A shard worker subprocess framed over its stdin/stdout pipes.

    The original (and default) transport: the worker runs this module's
    pipe-mode entrypoint, lives exactly as long as the coordinator wants it
    to, and is killed outright when declared dead.  Behaviour-preserving
    with respect to the pre-seam engine: same command line, same
    environment, same shutdown escalation.
    """

    def __init__(self) -> None:
        self.process: subprocess.Popen = subprocess.Popen(
            _WORKER_COMMAND, stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            env=_worker_env())
        self.description = f"pipe:pid={self.process.pid}"

    def read(self) -> dict[str, Any] | None:
        stream = self.process.stdout
        assert stream is not None
        return read_frame(stream)

    def write(self, message: dict[str, Any]) -> int:
        stdin = self.process.stdin
        assert stdin is not None
        return write_frame(stdin, message)

    def is_alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        try:
            self.process.kill()
        except OSError:
            pass

    def close(self, timeout: float = 5.0) -> None:
        try:
            self.write({"type": "shutdown"})
            assert self.process.stdin is not None
            self.process.stdin.close()
        except (OSError, ValueError):
            pass
        try:
            self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            self.process.wait()


class TcpTransport:
    """A socket connection to a shard daemon (``--listen`` mode).

    The multi-host transport: the daemon may be on any reachable host, and
    several coordinators may hold connections to it at once (it serves each
    connection independently).  ``kill`` severs this connection — which the
    daemon survives, unless this transport spawned it locally and therefore
    owns the process.  Socket errors on read surface as EOF, so a vanished
    daemon looks exactly like an exited pipe worker to the layers above.

    Dialing retries with bounded exponential backoff (``retry``, default
    :data:`DIAL_RETRY_POLICY`): a daemon mid-restart refuses connections for
    a moment, and a single-attempt dial would misread that as permanently
    unreachable.  Pass ``RetryPolicy(max_attempts=1)`` to dial exactly once.
    """

    def __init__(self, host: str, port: int, *, connect_timeout: float = 10.0,
                 process: subprocess.Popen | None = None,
                 retry: RetryPolicy | None = None) -> None:
        self.host = host
        self.port = port
        self.process = process
        self.description = f"tcp://{host}:{port}"
        self._closed = False
        policy = retry if retry is not None else DIAL_RETRY_POLICY
        try:
            self._sock = policy.call(
                lambda: socket.create_connection((host, port),
                                                 timeout=connect_timeout),
                retry_on=(OSError,), token=f"{host}:{port}")
        except OSError:
            # A connection that never opened must not leave a daemon this
            # factory already spawned running forever.
            if process is not None:
                try:
                    process.kill()
                except OSError:
                    pass
            raise
        self._sock.settimeout(None)
        self._rfile: BinaryIO = self._sock.makefile("rb")
        self._wfile: BinaryIO = self._sock.makefile("wb")

    def read(self) -> dict[str, Any] | None:
        try:
            return read_frame(self._rfile)
        except (OSError, ValueError):
            # A reset or locally closed socket reads as EOF: the coordinator
            # handles both through the same death path.
            return None

    def write(self, message: dict[str, Any]) -> int:
        if self._closed:
            raise OSError("transport is closed")
        return write_frame(self._wfile, message)

    def is_alive(self) -> bool:
        if self._closed:
            return False
        if self.process is not None and self.process.poll() is not None:
            return False
        return True

    def _teardown(self) -> None:
        self._closed = True
        for close in (self._wfile.close, self._rfile.close, self._sock.close):
            try:
                close()
            except OSError:
                pass

    def kill(self) -> None:
        self._teardown()
        if self.process is not None:
            try:
                self.process.kill()
            except OSError:
                pass

    def close(self, timeout: float = 5.0) -> None:
        try:
            self.write({"type": "shutdown"})
        except (OSError, ValueError):
            pass
        self._teardown()
        if self.process is not None:
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()


#: Marker line a daemon prints on stdout once its listening socket is bound;
#: the local-TCP factory parses the host and port off it (port 0 requests).
_LISTENING_MARKER = "PRIVID-SHARD-LISTENING"


def parse_address(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (port required; host defaults to all interfaces)."""
    host, separator, port_text = text.strip().rpartition(":")
    if not separator:
        raise ValueError(f"shard address {text!r} is not of the form HOST:PORT")
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ValueError(f"invalid port in shard address {text!r}") from exc
    if not 0 <= port <= 65535:
        raise ValueError(f"port out of range in shard address {text!r}")
    return host or "0.0.0.0", port


def spawn_local_daemon(host: str = "127.0.0.1") -> TcpTransport:
    """Spawn a shard daemon on an ephemeral localhost port and connect to it.

    The transport of ``sharded:tcp[:N]``: every byte crosses a real socket
    (exercising the exact multi-host wire path) while lifecycle stays as
    self-contained as the pipe transport — the daemon is owned by the
    returned transport and dies with it.
    """
    process = subprocess.Popen(_WORKER_COMMAND + ["--listen", f"{host}:0"],
                               stdout=subprocess.PIPE, env=_worker_env())
    assert process.stdout is not None
    line = process.stdout.readline().decode("utf-8", "replace").split()
    if len(line) != 3 or line[0] != _LISTENING_MARKER:
        try:
            process.kill()
        except OSError:
            pass
        raise RemoteShardError(
            "shard daemon failed to start (no listening announcement)")
    return TcpTransport(line[1], int(line[2]), process=process)


# --------------------------------------------------------------- shard worker


def _handle_task(message: dict[str, Any], store: "ChunkStore | None") -> dict[str, Any]:
    """Execute one task frame and build its result frame.

    Mirrors the engine-side unit of work (``execute_chunk``) with one
    addition: when the coordinator shipped a shared-store spec, the shard
    checks the store before executing and writes successful results through,
    so shards over common storage serve and extend the same warm set.
    """
    from repro.core.cache import chunk_key

    payload = _load_payload(message["payload"])
    runner = payload["runner"]
    context = payload["context"]
    objects = payload["objects"]
    outcomes: list[dict[str, Any]] = []
    for spec in message["specs"]:
        chunk = chunk_from_spec(objects, spec)
        rows = None
        key = None
        if store is not None:
            key = chunk_key(runner, chunk, context)
            rows = store.get(key)
        if rows is not None:
            # Shard-side cache classification: a coordinator-cold but
            # disk-warm key skips the execute entirely — the shard's local
            # view of the shared tier already holds the rows.
            outcomes.append({"rows": [dict(row) for row in rows],
                             "fallback": False, "cache_hit": True, "stored": True})
            continue
        outcome = execute_chunk(runner, chunk, context)
        stored = store is not None and key is not None and not outcome.fallback
        if stored:
            store.put(key, outcome.rows)
        outcomes.append({"rows": [dict(row) for row in outcome.rows],
                         "fallback": outcome.fallback, "cache_hit": False,
                         "stored": stored})
    return {"type": "result", "seq": message["seq"], "outcomes": outcomes}


def serve(stdin: BinaryIO, stdout: BinaryIO,
          tasks: "queue.Queue[dict[str, Any] | None] | None" = None) -> None:
    """The shard worker loop: read frames, execute tasks, write frames.

    Runs until ``shutdown`` or EOF.  Tasks execute on a separate thread so
    the read loop keeps answering heartbeat pings while a long batch runs —
    a busy shard must look *busy*, not *dead*, or the coordinator would
    kill healthy workers whenever one task outlives ``heartbeat_timeout``.
    Task failures are reported as ``error`` frames and the loop keeps
    serving — a bad payload path must not take the whole shard down with
    it.  Unknown message types are ignored so older workers tolerate newer
    coordinators.

    Callers may supply the ``tasks`` queue to observe the in-flight work
    from outside: every queued task is accounted with ``task_done()`` only
    after its result (or error) frame has been flushed, so
    ``tasks.join()`` is exactly "every accepted task has been answered" —
    the primitive the daemon's SIGTERM graceful drain is built on.
    """
    write_lock = threading.Lock()
    if tasks is None:
        tasks = queue.Queue()
    state: dict[str, "ChunkStore | None"] = {"store": None}

    def send(message: dict[str, Any]) -> None:
        with write_lock:
            write_frame(stdout, message)

    def execute_loop() -> None:
        while True:
            message = tasks.get()
            if message is None:
                tasks.task_done()
                return
            try:
                try:
                    reply = _handle_task(message, state["store"])
                except Exception:
                    reply = {"type": "error", "seq": message.get("seq"),
                             "message": traceback.format_exc(limit=20)}
                try:
                    send(reply)
                except Exception:
                    # The reply itself could not be serialized or written
                    # (e.g. a result frame over MAX_FRAME_BYTES).  Report it
                    # as a task error so the coordinator can retry/fail the
                    # seq; if even that fails the pipe is gone — exit so the
                    # coordinator sees EOF and reassigns, rather than hanging
                    # behind a read loop that keeps answering pings.
                    try:
                        send({"type": "error", "seq": message.get("seq"),
                              "message":
                              "shard could not send its result frame:\n"
                              + traceback.format_exc(limit=5)})
                    except Exception:
                        os._exit(1)
            finally:
                tasks.task_done()

    executor = threading.Thread(target=execute_loop, name="privid-shard-executor",
                                daemon=True)
    executor.start()
    try:
        while True:
            message = read_frame(stdin)
            if message is None:
                return
            kind = message.get("type")
            if kind == "shutdown":
                return
            if kind == "ping":
                send({"type": "pong", "token": message.get("token")})
            elif kind == "store":
                from repro.core.cache import create_cache

                try:
                    state["store"] = create_cache(message.get("spec"))
                except (ValueError, OSError):
                    # The shard still works without the shared store — it
                    # just recomputes — but the coordinator must hear about
                    # the misconfiguration rather than silently losing the
                    # warm-sharing property.
                    state["store"] = None
                    send({"type": "error", "seq": None,
                          "message": "shard could not open shared store "
                                     f"{message.get('spec')!r}:\n"
                                     + traceback.format_exc(limit=5)})
            elif kind == "task":
                tasks.put(message)
    finally:
        tasks.put(None)
        executor.join(timeout=5.0)


def _serve_connection(connection: socket.socket,
                      tasks: "queue.Queue[dict[str, Any] | None] | None" = None,
                      ) -> None:
    """Serve one coordinator connection of a TCP daemon until it ends."""
    rfile = connection.makefile("rb")
    wfile = connection.makefile("wb")
    try:
        serve(rfile, wfile, tasks)
    except OSError:
        pass
    finally:
        for close in (wfile.close, rfile.close, connection.close):
            try:
                close()
            except OSError:
                pass


def listen(address: str) -> None:
    """Daemon mode: accept coordinator connections and serve each one.

    Binds ``HOST:PORT`` (port 0 picks an ephemeral port), announces the
    bound address on stdout as ``PRIVID-SHARD-LISTENING HOST PORT``, then
    serves every accepted connection on its own thread — a long-lived shard
    host several coordinators can attach to concurrently, each getting an
    independent worker loop.  Runs until the process is terminated.

    ``SIGTERM`` triggers a *graceful drain* rather than an abrupt death: the
    listening socket closes (no new coordinators), every connection's
    in-flight task runs to completion and its result frame is flushed
    (``tasks.join()`` — see :func:`serve`), the connections are then shut
    down so each worker loop sees EOF, and the process exits 0.  A
    coordinator mid-task therefore gets its answer instead of a torn
    stream, and orchestrators (systemd, Kubernetes) observe a clean stop.
    """
    host, port = parse_address(address)
    server = socket.create_server((host, port))
    bound = server.getsockname()

    draining = threading.Event()
    registry_lock = threading.Lock()
    connections: list[tuple[socket.socket,
                            "queue.Queue[dict[str, Any] | None]",
                            threading.Thread]] = []

    def _on_sigterm(signum: int, frame: Any) -> None:
        draining.set()
        # Closing the listening socket is async-signal-safe enough here (it
        # only marks the fd) and unblocks accept() with OSError, which is
        # the drain's entry into the finally block below.
        server.close()

    try:
        signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:
        # Not the main thread (embedded/test use): run without a drain
        # hook; the process-level default disposition applies.
        pass

    print(f"{_LISTENING_MARKER} {bound[0]} {bound[1]}", flush=True)
    try:
        while True:
            try:
                connection, _ = server.accept()
            except OSError:
                if draining.is_set():
                    break
                raise
            tasks: "queue.Queue[dict[str, Any] | None]" = queue.Queue()
            thread = threading.Thread(target=_serve_connection,
                                      args=(connection, tasks),
                                      name="privid-shard-connection",
                                      daemon=True)
            with registry_lock:
                connections.append((connection, tasks, thread))
            thread.start()
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        pass
    finally:
        server.close()
        if draining.is_set():
            with registry_lock:
                pending = list(connections)
            for connection, tasks, thread in pending:
                # Every accepted task answers before the stream closes:
                # join() returns once the worker has flushed each result
                # (or error) frame, so nothing in flight is torn.
                tasks.join()
                try:
                    connection.shutdown(socket.SHUT_RD)
                except OSError:
                    pass
                thread.join(timeout=5.0)


def main(argv: list[str] | None = None) -> None:
    """Entrypoint of ``python -m repro.core.remote`` (one shard worker).

    Without arguments, runs the pipe-mode worker: the protocol owns fd 1, so
    the original stdout is duplicated for frames and fd 1 is redirected to
    stderr — an executable that prints can never corrupt the frame stream.
    With ``--listen HOST:PORT``, runs the TCP daemon instead (socket frames
    need no fd juggling; prints go to the daemon's own stdout/stderr).
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.core.remote",
        description="Privid executor shard worker (pipe mode) or daemon "
                    "(--listen mode).")
    parser.add_argument("--listen", metavar="HOST:PORT", default=None,
                        help="run as a TCP shard daemon bound to HOST:PORT "
                             "(port 0 picks an ephemeral port, announced on "
                             "stdout) instead of a stdin/stdout pipe worker")
    args = parser.parse_args(argv)
    if args.listen is not None:
        listen(args.listen)
        return
    protocol_out = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    sys.stdout = sys.stderr
    serve(sys.stdin.buffer, protocol_out)


# --------------------------------------------------------------- coordinator


class _ShardTask:
    """One dispatched task: a spec batch awaiting its result."""

    __slots__ = ("seq", "specs", "payload_ref", "num_chunks", "shard_id",
                 "attempts", "dispatched_at")

    def __init__(self, seq: int, specs: list[ChunkSpecMessage], payload_ref: str,
                 num_chunks: int) -> None:
        self.seq = seq
        self.specs = specs
        self.payload_ref = payload_ref
        self.num_chunks = num_chunks
        self.shard_id: int | None = None
        self.attempts = 0
        self.dispatched_at: float | None = None


class _Shard:
    """One executor shard: a :class:`ShardTransport` plus its reader thread.

    The reader thread decodes frames off the transport into the engine-wide
    inbox queue as ``(shard_id, message)`` pairs, pushing ``(shard_id,
    None)`` once on EOF so the coordinator observes death in the same
    mailbox as results.  Sending happens only under the engine lock, so
    writes need no lock of their own.  ``slot`` is the transport-factory
    index this shard fills in address-pinned (TCP) mode, None for the
    interchangeable pipe workers.
    """

    def __init__(self, shard_id: int, transport: ShardTransport,
                 inbox: "queue.Queue[tuple[int, Any]]", stats: DispatchStats,
                 *, slot: int | None = None) -> None:
        self.id = shard_id
        self.slot = slot
        self.transport = transport
        self.stats = stats
        self.pending: dict[int, _ShardTask] = {}
        self.last_seen = time.monotonic()
        self.alive = True
        #: False until the first frame arrives: a worker importing its
        #: dependencies cannot answer pings yet, so silence before the
        #: first frame is judged against the (longer) startup grace.
        self.started = False
        self._reader = threading.Thread(target=self._read_loop, args=(inbox,),
                                        name=f"privid-shard-{shard_id}-reader",
                                        daemon=True)
        self._reader.start()

    @property
    def process(self) -> subprocess.Popen | None:
        """The worker subprocess, when this shard's transport owns one."""
        return self.transport.process

    def _read_loop(self, inbox: "queue.Queue[tuple[int, Any]]") -> None:
        try:
            while True:
                message = self.transport.read()
                if message is None:
                    break
                inbox.put((self.id, message))
        except Exception:
            pass
        inbox.put((self.id, None))

    def send(self, message: dict[str, Any]) -> int:
        """Write one frame to the shard; returns the frame's wire bytes."""
        return self.transport.write(message)

    def close(self, timeout: float = 5.0) -> None:
        """Ask the worker to exit, escalating to kill after ``timeout``."""
        self.alive = False
        self.transport.close(timeout)
        self._reader.join(timeout=1.0)


#: Adaptive per-task batch cap: batches amortize framing, but every chunk in
#: a batch shares its task's fate on reassignment, so sharded batches stay
#: smaller than the process engine's.
_MAX_SHARDED_CHUNKSIZE = 8


class ShardedEngine:
    """Partitions chunk streams across N executor shards (``sharded:...``).

    Implements the :class:`~repro.core.engine.ExecutionEngine` protocol: an
    ordered streaming ``imap_chunks`` with a bounded in-flight window.  Work
    is dispatched to the least-loaded live shard as compact spec batches
    (the heavy stream constants travel once per stream via a
    :class:`~repro.core.engine._TaskBroadcast` payload file every shard can
    read); results are merged back in dispatch order, so consumers cannot
    tell it from the serial engine.

    Shards sit behind the :class:`ShardTransport` seam.  By default
    (``sharded[:N]``) each shard is a :class:`PipeTransport` worker
    subprocess; :meth:`connect` (``sharded:HOST:PORT,...``) attaches to
    already-running TCP daemons instead, and :meth:`local_tcp`
    (``sharded:tcp[:N]``) spawns localhost daemons and connects over real
    sockets.  Scheduling, fault handling and results are identical across
    transports — the wire protocol is the same bytes either way.

    Shards are spawned lazily on first use and persist across queries, like
    the pool engines; :meth:`shutdown` (or the context manager form)
    terminates them.  Dead shards are replaced at the start of the next
    stream (pipe workers respawn; TCP slots reconnect to their daemon — a
    slot whose daemon stays unreachable is skipped with a warning as long
    as at least one shard remains).  ``heartbeat_interval`` /
    ``heartbeat_timeout`` bound how long a silent shard holding work
    survives before its tasks are reassigned — workers answer pings while
    executing, so only a frozen or vanished shard ever reads as silent, and
    a shard that has not yet produced its first frame (still importing its
    dependencies) is judged against the longer ``startup_grace``;
    ``max_task_retries`` bounds redispatches per task before *the stream
    that owns the task* fails with :class:`~repro.errors.RemoteShardError`.

    ``chunksize`` fixes the per-task spec batch (default: adaptive,
    ``count_hint // (4 * shards)`` capped at 8 — smaller than the process
    engine's cap because a whole batch is redispatched when its shard dies);
    ``in_flight_window`` bounds chunks materialized-but-unyielded (default
    ``2 x shards x chunksize``).

    The engine supports several *interleaved* streams (the executor
    round-robins PROCESS statements) and, since the service layer, several
    *concurrent* streams driven from different threads: task/result
    bookkeeping is engine-wide, keyed by a monotonically unique ``seq`` and
    guarded by one engine lock, so frames arriving while another stream's
    generator is being pumped — on this thread or any other — are parked
    until their owner looks them up.  The lock is never held while blocking
    on the inbox, so concurrent streams make progress independently.
    """

    def __init__(self, num_shards: int | None = None, *,
                 transports: "list[Callable[[], ShardTransport]] | None" = None,
                 transport_labels: "list[str] | None" = None,
                 chunksize: int | None = None,
                 in_flight_window: int | None = None,
                 heartbeat_interval: float = 0.5,
                 heartbeat_timeout: float | None = None,
                 startup_grace: float | None = None,
                 max_task_retries: int = 3,
                 task_timeout: float | None = None,
                 breaker_threshold: int = 3,
                 breaker_reset: float = 10.0,
                 fault_injector: "FaultInjector | None" = None) -> None:
        if transports is not None:
            if not transports:
                raise ValueError("transports must not be empty")
            if num_shards is not None and num_shards != len(transports):
                raise ValueError("num_shards must match the transport list")
            self.num_shards = len(transports)
        else:
            self.num_shards = num_shards if num_shards is not None \
                else _default_workers()
        if transport_labels is not None and (
                transports is None or len(transport_labels) != len(transports)):
            raise ValueError("transport_labels must match the transport list")
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if chunksize is not None and chunksize <= 0:
            raise ValueError("chunksize must be positive")
        if in_flight_window is not None and in_flight_window <= 0:
            raise ValueError("in_flight_window must be positive")
        # The failure-detection windows default from the environment
        # (PRIVID_HEARTBEAT_TIMEOUT / PRIVID_STARTUP_GRACE) so slow CI
        # runners can widen them without code changes; explicit arguments
        # win over the environment.
        if heartbeat_timeout is None:
            heartbeat_timeout = _env_float("PRIVID_HEARTBEAT_TIMEOUT", 10.0)
        if startup_grace is None:
            startup_grace = _env_float("PRIVID_STARTUP_GRACE", 60.0)
        if heartbeat_interval <= 0 or heartbeat_timeout <= 0 or startup_grace <= 0:
            raise ValueError("heartbeat intervals must be positive")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        self.name = "sharded"
        #: Per-slot transport factories (TCP mode); None means the pipe
        #: default, where workers are interchangeable and respawn freely.
        self._transport_factories = list(transports) if transports is not None \
            else None
        self._transport_labels = list(transport_labels) \
            if transport_labels is not None else None
        self.chunksize = chunksize
        self.in_flight_window = in_flight_window
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.startup_grace = startup_grace
        self.max_task_retries = max_task_retries
        #: Optional stall detector: a dispatched task whose result has not
        #: arrived within this many seconds is redispatched to another shard
        #: (at-most-once application makes the duplicate execution safe).
        #: None (the default) disables it — heartbeats already catch dead
        #: and frozen shards; this additionally catches a *lost frame* on an
        #: otherwise-healthy connection, at the cost of duplicated work when
        #: set lower than a batch's genuine runtime.
        self.task_timeout = task_timeout
        #: Per-endpoint circuit breakers (keyed by slot label), consulted
        #: before every spawn/dial: an endpoint that failed
        #: ``breaker_threshold`` consecutive times is skipped without
        #: dialing until ``breaker_reset`` seconds pass, then probed
        #: half-open.  States surface in ``dispatch_stats_dict``/``health``.
        self.breaker_threshold = breaker_threshold
        self.breaker_reset = breaker_reset
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Optional chaos seam: when set (constructor or
        #: :meth:`set_fault_injector`, before first use), every transport
        #: this engine opens is wrapped in a
        #: :class:`~repro.core.faults.FaultyTransport` and connects are
        #: polled against the plan.
        self._fault_injector = fault_injector
        #: Engine-wide IPC accounting (every task frame sent to any shard).
        self.dispatch_stats = DispatchStats()
        #: Chunks whose rows a shard served from its local view of the
        #: shared store without executing (shard-side cache classification).
        self.shard_cache_hits = 0
        self._shard_stats: dict[int, DispatchStats] = {}
        self._shards: dict[int, _Shard] = {}
        self._inbox: "queue.Queue[tuple[int, Any]]" = queue.Queue()
        #: Guards every piece of engine-wide state above and below: the
        #: shard table, seq allocation, dispatch, and the ready/failed
        #: parking maps.  Concurrent streams (service-layer queries driven
        #: from different threads) interleave safely because each takes the
        #: lock per step and blocks on the inbox *outside* it.
        self._lock = threading.RLock()
        self._next_shard_id = 0
        self._next_seq = 0
        self._next_ping = 0
        self._tasks: dict[int, _ShardTask] = {}
        self._ready: dict[int, list[ChunkOutcome]] = {}
        #: seq -> failure reason for tasks that exhausted their retries; the
        #: stream that owns the seq raises when it reaches it, so a failure
        #: never propagates into whichever stream happened to be pumping.
        self._failed: dict[int, str] = {}
        self._store_spec: str | None = None

    @classmethod
    def connect(cls, addresses: Iterable[str], **kwargs: Any) -> "ShardedEngine":
        """Coordinator connect mode: one shard per already-running daemon.

        ``addresses`` are ``HOST:PORT`` strings of shard daemons started
        with ``python -m repro.core.remote --listen HOST:PORT`` — this is
        the literal multi-host deployment, reachable through the spec string
        ``sharded:HOST:PORT[,HOST:PORT...]``.  Connections are opened
        lazily at first use and re-opened per slot at stream start after a
        disconnect.
        """
        parsed = [parse_address(address) for address in addresses]
        if not parsed:
            raise ValueError("connect() needs at least one shard address")

        def factory(host: str, port: int) -> Callable[[], ShardTransport]:
            return lambda: TcpTransport(host, port)

        return cls(transports=[factory(host, port) for host, port in parsed],
                   transport_labels=[f"{host}:{port}" for host, port in parsed],
                   **kwargs)

    @classmethod
    def local_tcp(cls, num_shards: int | None = None, **kwargs: Any
                  ) -> "ShardedEngine":
        """Spawn N localhost TCP daemons and connect to them (``sharded:tcp``).

        Every frame crosses a real socket — the exact wire path of a
        multi-host deployment — while the daemons' lifecycle stays bound to
        this engine, so tests and single-host runs need no external setup.
        """
        count = num_shards if num_shards is not None else _default_workers()
        if count <= 0:
            raise ValueError("num_shards must be positive")
        return cls(transports=[spawn_local_daemon] * count,
                   transport_labels=[f"tcp{index}" for index in range(count)],
                   **kwargs)

    # ------------------------------------------------------------- shard pool

    def _slot_label(self, slot: int | None) -> str:
        """Breaker key of one endpoint: its address/label, or the pipe pool."""
        if slot is None:
            return "pipe"
        if self._transport_labels is not None:
            return self._transport_labels[slot]
        return f"slot{slot}"

    def _spawn_shard(self, slot: int | None = None) -> _Shard | None:
        """Open one shard (pipe spawn or TCP connect); None if unreachable.

        Every endpoint sits behind a per-label circuit breaker: after
        ``breaker_threshold`` consecutive spawn/dial failures the endpoint
        is skipped without dialing until ``breaker_reset`` passes, then a
        single half-open probe decides.  With a fault injector installed,
        the transport factory is additionally routed through the plan
        (connect faults) and the built transport wrapped for frame faults.
        """
        factory: Callable[[], ShardTransport]
        label = self._slot_label(slot)
        if self._transport_factories is None:
            factory = PipeTransport
            # Per-worker fault site: a respawned pipe worker is a new
            # endpoint with fresh (deterministic) operation counters.
            site = f"transport.worker{self._next_shard_id}"
        else:
            assert slot is not None
            factory = self._transport_factories[slot]
            site = f"transport.{label}"
        breaker = self._breakers.get(label)
        if breaker is None:
            breaker = CircuitBreaker(failure_threshold=self.breaker_threshold,
                                     reset_timeout=self.breaker_reset)
            self._breakers[label] = breaker
        if not breaker.allow():
            warnings.warn(f"shard endpoint {label!r} skipped: circuit breaker "
                          "open after repeated failures",
                          RuntimeWarning, stacklevel=2)
            return None
        if self._fault_injector is not None:
            factory = faulty_transport_factory(factory, self._fault_injector,
                                               site)
        try:
            transport = factory()
        except OSError as exc:
            breaker.record_failure()
            warnings.warn(f"shard slot {slot} is unreachable: {exc}",
                          RuntimeWarning, stacklevel=2)
            return None
        breaker.record_success()
        shard_id = self._next_shard_id
        self._next_shard_id += 1
        stats = self._shard_stats.setdefault(shard_id, DispatchStats())
        shard = _Shard(shard_id, transport, self._inbox, stats, slot=slot)
        self._shards[shard_id] = shard
        if self._store_spec:
            try:
                shard.send({"type": "store", "spec": self._store_spec})
            except OSError:
                self._mark_dead(shard)
        return shard

    def _ensure_shards(self) -> None:
        """Top the pool back up to ``num_shards`` live workers (stream start)."""
        # Fold in death notices that arrived between streams: a shard killed
        # after the previous stream finished has an EOF sitting in the inbox
        # (and a poll()-able exit) but may still be flagged alive.
        while True:
            try:
                shard_id, message = self._inbox.get_nowait()
            except queue.Empty:
                break
            self._handle_message(shard_id, message)
        for shard in list(self._shards.values()):
            if shard.alive and not shard.transport.is_alive():
                self._mark_dead(shard, kill=False)
        for shard_id in [sid for sid, shard in self._shards.items() if not shard.alive]:
            del self._shards[shard_id]
        if self._transport_factories is None:
            # One spawn attempt per missing slot, *bounded*: a spawn can fail
            # (fork failure, injected connect fault, open breaker), and an
            # until-full loop would spin forever on a persistent failure.
            missing = self.num_shards \
                - sum(1 for shard in self._shards.values() if shard.alive)
            for _ in range(missing):
                self._spawn_shard()
            if not self._live_shards():
                raise RemoteShardError(
                    "no shard worker could be started "
                    f"(all {self.num_shards} spawns failed)")
            return
        # Address-pinned mode: one shard per transport slot.  A slot whose
        # daemon is unreachable right now is skipped (its work lands on the
        # survivors) and retried at the next stream start.
        filled = {shard.slot for shard in self._live_shards()}
        for slot in range(len(self._transport_factories)):
            if slot not in filled:
                self._spawn_shard(slot)
        if not self._live_shards():
            raise RemoteShardError(
                "no shard endpoint is reachable (all "
                f"{len(self._transport_factories)} daemons are down)")

    def _live_shards(self) -> list[_Shard]:
        return [shard for shard in self._shards.values() if shard.alive]

    def share_store(self, store: "ChunkStore | str | None") -> None:
        """Point every shard at the shareable tier of a chunk result store.

        Accepts a store instance (reduced via
        :func:`repro.core.cache.shared_spec` to its cross-process portion —
        the disk directory; a pure in-memory cache reduces to nothing and is
        ignored) or a spec string.  ``PrividSystem`` calls this
        automatically for engines it built from a spec string, so
        ``PrividSystem(engine="sharded:4", cache="tiered:PATH")`` gives
        every shard a local LRU over the same warm directory; an engine
        *instance* handed to several systems is shared property, so those
        callers pick the store to share themselves.
        """
        if store is None or isinstance(store, str):
            spec = store or None
        else:
            from repro.core.cache import shared_spec

            spec = shared_spec(store)
        with self._lock:
            self._store_spec = spec
            if spec:
                for shard in self._live_shards():
                    try:
                        shard.send({"type": "store", "spec": spec})
                    except OSError:
                        self._mark_dead(shard)

    # ------------------------------------------------------------ dispatching

    def _dispatch(self, task: _ShardTask, *, exclude: int | None = None) -> None:
        """Send a task to the least-loaded live shard (skipping ``exclude``)."""
        while True:
            candidates = [shard for shard in self._live_shards()
                          if shard.id != exclude]
            if not candidates:
                candidates = self._live_shards()  # only the excluded one left
            if not candidates:
                raise RemoteShardError(
                    f"no live shards remain to run task {task.seq} "
                    f"(attempt {task.attempts + 1})")
            shard = min(candidates, key=lambda entry: (len(entry.pending), entry.id))
            message = {"type": "task", "seq": task.seq,
                       "payload": task.payload_ref, "specs": task.specs}
            try:
                sent = shard.send(message)
            except OSError:
                self._mark_dead(shard)
                continue
            task.shard_id = shard.id
            task.dispatched_at = time.monotonic()
            shard.pending[task.seq] = task
            self._tasks[task.seq] = task
            shard.stats.record_dispatch(sent, task.num_chunks)
            self.dispatch_stats.record_dispatch(sent, task.num_chunks)
            return

    def _fail(self, task: _ShardTask, reason: str) -> None:
        """Retire a task as permanently failed (its owner raises on pickup)."""
        self._tasks.pop(task.seq, None)
        for shard in self._shards.values():
            shard.pending.pop(task.seq, None)
        self._failed[task.seq] = reason

    def _retry(self, task: _ShardTask, *, exclude: int | None, reason: str) -> None:
        task.attempts += 1
        if task.attempts > self.max_task_retries:
            self._fail(task, f"task {task.seq} failed {task.attempts} times; "
                             f"last shard {task.shard_id}: {reason}")
            return
        try:
            self._dispatch(task, exclude=exclude)
        except RemoteShardError as exc:
            # No shard left to run it on: fail this task (and let the loop
            # in _mark_dead keep redispatching or failing the rest) rather
            # than raising into an arbitrary pumping stream.
            self._fail(task, str(exc))

    def _mark_dead(self, shard: _Shard, *, kill: bool = True) -> None:
        """Retire a shard and redispatch every task it still held."""
        if not shard.alive:
            return
        shard.alive = False
        if kill:
            shard.transport.kill()
        orphans = list(shard.pending.values())
        shard.pending.clear()
        for task in orphans:
            # The dead shard may have completed some of these without the
            # result reaching us; redispatching is safe because the first
            # result to arrive retires the seq and later ones are dropped.
            self._retry(task, exclude=shard.id, reason="shard died")

    # ------------------------------------------------------------- event loop

    def _handle_message(self, shard_id: int, message: Any) -> None:
        shard = self._shards.get(shard_id)
        if shard is None:
            return
        if message is None:  # reader saw EOF: the worker exited or was killed
            if shard.alive:
                self._mark_dead(shard, kill=True)
            return
        shard.last_seen = time.monotonic()
        shard.started = True
        kind = message.get("type")
        if kind == "result":
            seq = message.get("seq")
            task = self._tasks.pop(seq, None)
            if task is None:
                return  # stale duplicate of a reassigned task: at-most-once
            for entry in self._shards.values():
                entry.pending.pop(seq, None)
            outcomes = [
                ChunkOutcome(rows=outcome["rows"], fallback=bool(outcome["fallback"]),
                             stored=bool(outcome.get("stored")),
                             cache_hit=bool(outcome.get("cache_hit")))
                for outcome in message["outcomes"]]
            self.shard_cache_hits += sum(1 for outcome in outcomes
                                         if outcome.cache_hit)
            self._ready[seq] = outcomes
        elif kind == "error":
            seq = message.get("seq")
            if seq is None:
                # A shard-level complaint not tied to a task (e.g. it could
                # not open the shared store and will recompute instead of
                # sharing warm entries): surface it, don't swallow it.
                warnings.warn(f"shard {shard_id}: "
                              f"{str(message.get('message', '')).strip()}",
                              RuntimeWarning, stacklevel=2)
                return
            task = self._tasks.get(seq)
            # Only the task's *current* owner may fail it: a stale error
            # from a previous owner (which died right after sending, with
            # the task already redispatched) must not burn a retry or
            # double-dispatch while the new owner's result is in flight.
            if task is not None and task.shard_id == shard_id:
                for entry in self._shards.values():
                    entry.pending.pop(seq, None)
                self._retry(task, exclude=shard_id,
                            reason=str(message.get("message", "")).strip())
        # "pong" (and unknown types) only needed the last_seen refresh above.

    def _heartbeat(self) -> None:
        """Probe silent shards; declare the unresponsive ones dead.

        With ``task_timeout`` set, additionally redispatches tasks whose
        result is overdue on a shard that still answers pings — the
        lost-frame stall (a dropped result or task frame leaves the shard
        healthy but the seq parked forever).  Duplicated execution is safe:
        the first result to arrive retires the seq.
        """
        now = time.monotonic()
        if self.task_timeout is not None:
            for shard in list(self._shards.values()):
                if not shard.alive:
                    continue
                overdue = [task for task in shard.pending.values()
                           if task.dispatched_at is not None
                           and now - task.dispatched_at > self.task_timeout]
                for task in overdue:
                    shard.pending.pop(task.seq, None)
                    self._retry(task, exclude=shard.id,
                                reason=f"no result within "
                                       f"task_timeout={self.task_timeout}s")
        for shard in list(self._shards.values()):
            if not shard.alive:
                continue
            if not shard.transport.is_alive():
                self._mark_dead(shard, kill=False)
                continue
            silent = now - shard.last_seen
            limit = self.heartbeat_timeout if shard.started \
                else max(self.heartbeat_timeout, self.startup_grace)
            if shard.pending and silent > limit:
                self._mark_dead(shard)
            elif silent > self.heartbeat_interval:
                self._next_ping += 1
                try:
                    shard.send({"type": "ping", "token": self._next_ping})
                except OSError:
                    self._mark_dead(shard)

    def _pump(self) -> None:
        """Process the next inbox message, or run a heartbeat pass on silence.

        The blocking inbox read happens *outside* the engine lock so
        concurrent streams are never serialized behind one stream's wait;
        only the state mutation that follows is locked.
        """
        try:
            shard_id, message = self._inbox.get(timeout=self.heartbeat_interval)
        except queue.Empty:
            with self._lock:
                self._heartbeat()
            return
        with self._lock:
            self._handle_message(shard_id, message)

    # ----------------------------------------------------------- engine proto

    def _effective_chunksize(self, count_hint: int | None) -> int:
        if self.chunksize is not None:
            return self.chunksize
        if count_hint is None or count_hint <= 0:
            return 1
        return max(1, min(_MAX_SHARDED_CHUNKSIZE,
                          count_hint // (4 * self.num_shards)))

    def _window(self, batch_size: int) -> int:
        if self.in_flight_window is not None:
            return max(self.in_flight_window, batch_size)
        return 2 * self.num_shards * batch_size

    def imap_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                    context: "ExecutionContext", *,
                    count_hint: int | None = None) -> Iterator[ChunkOutcome]:
        """Stream outcomes in chunk order across the shard pool.

        Identical contract to every other engine's ``imap_chunks``; see the
        class docstring for scheduling and fault-tolerance behaviour.
        """
        if count_hint is None and isinstance(chunks, Sized):
            count_hint = len(chunks)
        return self._imap(runner, iter(chunks), context, count_hint)

    def _imap(self, runner: "SandboxRunner", iterator: Iterator["Chunk"],
              context: "ExecutionContext", count_hint: int | None
              ) -> Iterator[ChunkOutcome]:
        first = next(iterator, None)
        if first is None:
            return
        second = next(iterator, None)
        if second is None:
            # Single-chunk streams run inline, like every pool engine.
            yield execute_chunk(runner, first, context)
            return
        with self._lock:
            self._ensure_shards()
        # Pipe-shard workers are children of this process, so they can
        # attach the shared-memory broadcast segment; TCP daemons may live
        # on another host and always get the file-based payload.
        broadcast = _TaskBroadcast(
            runner, context,
            use_shared_memory=None if self._transport_factories is None
            else False)
        batch_size = self._effective_chunksize(count_hint)
        window = self._window(batch_size)
        stream = chain((first, second), iterator)
        dispatched: deque[int] = deque()  # this stream's seqs, in yield order
        mine: set[int] = set()
        in_flight = 0  # chunks dispatched but not yet yielded
        exhausted = False
        try:
            while True:
                while not exhausted and in_flight < window:
                    batch: list["Chunk"] = []
                    while len(batch) < batch_size:
                        chunk = next(stream, None)
                        if chunk is None:
                            exhausted = True
                            break
                        batch.append(chunk)
                    if not batch:
                        break
                    specs = [broadcast.chunk_spec(chunk) for chunk in batch]
                    # Registering specs may have discovered new heavy
                    # objects; payload_ref() publishes a covering version.
                    ref = broadcast.payload_ref()
                    with self._lock:
                        seq = self._next_seq
                        self._next_seq += 1
                        task = _ShardTask(seq, specs, ref, len(batch))
                        self._dispatch(task)
                    dispatched.append(seq)
                    mine.add(seq)
                    in_flight += len(batch)
                # Drain every completed head seq in one locked pass, then
                # yield outside the lock (a consumer may block arbitrarily
                # long between rows — other streams must keep moving).
                completed: list[list[ChunkOutcome]] = []
                with self._lock:
                    while dispatched and dispatched[0] in self._ready:
                        seq = dispatched.popleft()
                        mine.discard(seq)
                        outcomes = self._ready.pop(seq)
                        in_flight -= len(outcomes)
                        completed.append(outcomes)
                    failure: str | None = None
                    if dispatched and dispatched[0] in self._failed:
                        failure = self._failed.pop(dispatched[0])
                for outcomes in completed:
                    yield from outcomes
                if failure is not None:
                    raise RemoteShardError(failure)
                if not dispatched:
                    if exhausted:
                        return
                    continue  # window drained by yields; refill before waiting
                with self._lock:
                    head_pending = dispatched[0] not in self._ready \
                        and dispatched[0] not in self._failed
                if head_pending:
                    self._pump()
        finally:
            # On early close, drop this stream's bookkeeping; late results
            # and errors for these seqs are ignored as stale.
            with self._lock:
                for seq in mine:
                    self._ready.pop(seq, None)
                    self._failed.pop(seq, None)
                    self._tasks.pop(seq, None)
                    for shard in self._shards.values():
                        shard.pending.pop(seq, None)
                self.dispatch_stats.broadcasts += broadcast.broadcasts
                self.dispatch_stats.broadcast_bytes += broadcast.broadcast_bytes
                self.dispatch_stats.shm_segments += broadcast.shm_segments
            broadcast.cleanup()

    def map_chunks(self, runner: "SandboxRunner", chunks: Iterable["Chunk"],
                   context: "ExecutionContext") -> list[ChunkOutcome]:
        """Run every chunk through the shard pool, in chunk order (batch)."""
        return list(self.imap_chunks(runner, chunks, context))

    # -------------------------------------------------------------- lifecycle

    def reset_dispatch_stats(self) -> None:
        """Zero the engine-wide and per-shard IPC counters."""
        with self._lock:
            self.dispatch_stats = DispatchStats()
            self.shard_cache_hits = 0
            self._shard_stats = {shard_id: DispatchStats()
                                 for shard_id in self._shard_stats}
            for shard in self._shards.values():
                shard.stats = self._shard_stats.setdefault(shard.id, DispatchStats())

    def set_fault_injector(self, injector: "FaultInjector | None") -> None:
        """Install a chaos fault plan on every transport this engine opens.

        Call before first use (or after :meth:`shutdown`): already-open
        transports are not retroactively wrapped.
        """
        with self._lock:
            self._fault_injector = injector

    def health(self) -> dict[str, Any]:
        """Shard-pool liveness snapshot for ``service.health()``.

        ``live_shards`` counts shards that are flagged alive *and* pass the
        transport's liveness probe; ``degraded`` is True once the pool has
        been used and is below strength, or any endpoint breaker is not
        closed.  Before first use (``started`` False) an empty pool is
        normal, not degraded — shards spawn lazily.
        """
        with self._lock:
            live = sum(1 for shard in self._shards.values()
                       if shard.alive and shard.transport.is_alive())
            pending = sum(len(shard.pending) for shard in self._shards.values())
            breakers = {label: breaker.state_dict()
                        for label, breaker in sorted(self._breakers.items())}
            started = self._next_shard_id > 0
            degraded = (started and live < self.num_shards) or any(
                entry["state"] != "closed" for entry in breakers.values())
            return {"engine": self.name, "num_shards": self.num_shards,
                    "live_shards": live, "pending_tasks": pending,
                    "started": started, "degraded": degraded,
                    "breakers": breakers}

    def dispatch_stats_dict(self) -> dict[str, Any]:
        """Engine-wide dispatch counters plus a ``per_shard`` breakdown.

        Per-shard entries survive shard death and replacement, so the dict
        records where every byte of a sweep actually went (the
        ``sharded_dispatch`` section of ``BENCH_pipeline.json``).
        ``shard_cache_hits`` counts chunks a shard answered from its local
        view of the shared store without executing; ``breakers`` is the
        per-endpoint circuit-breaker state (empty until shards spawn).
        """
        with self._lock:
            return {**self.dispatch_stats.as_dict(),
                    "shard_cache_hits": self.shard_cache_hits,
                    "per_shard": {str(shard_id): stats.as_dict()
                                  for shard_id, stats in sorted(self._shard_stats.items())
                                  if stats.dispatches or stats.chunks},
                    "breakers": {label: breaker.state_dict()
                                 for label, breaker in sorted(self._breakers.items())}}

    def shutdown(self) -> None:
        """Terminate every shard worker (the pool respawns on next use)."""
        with self._lock:
            for shard in self._shards.values():
                shard.close()
            self._shards.clear()
            while True:
                try:
                    self._inbox.get_nowait()
                except queue.Empty:
                    break

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()


def sharded_engine_from_spec(suffix: int | str | None) -> ShardedEngine:
    """Build a :class:`ShardedEngine` from the ``sharded:`` spec suffix.

    * ``None`` / ``N`` — N pipe-transport worker subprocesses (``sharded``,
      ``sharded:4``);
    * ``tcp`` / ``tcp:N`` — N locally spawned TCP daemons (``sharded:tcp:2``);
    * ``HOST:PORT[,HOST:PORT...]`` — connect to already-running daemons
      (``sharded:hostA:9101,hostB:9101``).  Addresses are parsed eagerly
      (typos fail fast) but dialed lazily at first use.
    """
    if suffix is None or isinstance(suffix, int):
        return ShardedEngine(suffix)
    if suffix == "tcp":
        return ShardedEngine.local_tcp()
    if suffix.startswith("tcp:"):
        count_text = suffix[len("tcp:"):]
        try:
            count = int(count_text)
        except ValueError:
            raise ValueError(
                f"invalid sharded:tcp worker count {count_text!r}") from None
        return ShardedEngine.local_tcp(count)
    addresses = [part.strip() for part in suffix.split(",") if part.strip()]
    if not addresses:
        raise ValueError(f"invalid sharded engine spec suffix {suffix!r}")
    return ShardedEngine.connect(addresses)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    main()
