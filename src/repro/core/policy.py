"""Privacy policies: the (rho, K) bound a video owner commits to protect.

A policy says: any event visible for at most K segments of at most rho
seconds each is protected with the camera's epsilon-DP guarantee
(Definition 5.3).  The video owner chooses (rho, K) per camera — typically
from CV-estimated maximum durations (Section 5.2) — and may release a *map*
from masks to tighter policies (Section 7.1) so analysts can trade masked
area for lower noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MaskError, PolicyError
from repro.video.chunking import num_chunks_spanned
from repro.video.masking import EMPTY_MASK, Mask


@dataclass(frozen=True)
class PrivacyPolicy:
    """A (rho, K) event bound.

    ``rho`` is the maximum duration (seconds) of a single protected segment
    and ``k_segments`` the maximum number of segments.  ``rho = 0`` is legal
    and means "nothing private is ever visible" (e.g. after masking
    everything except a traffic light, Case 4 of the evaluation).
    """

    rho: float
    k_segments: int = 1

    def __post_init__(self) -> None:
        if self.rho < 0:
            raise PolicyError("rho must be non-negative")
        if self.k_segments < 1:
            raise PolicyError("K must be at least 1")

    def max_chunks(self, chunk_duration: float) -> int:
        """Equation 6.1: chunks one protected segment can span."""
        return num_chunks_spanned(self.rho, chunk_duration)

    def table_delta(self, max_rows: int, chunk_duration: float) -> float:
        """Equation 6.2: intermediate-table rows a protected event can influence.

        A policy with ``rho = 0`` means no protected event is ever visible
        (everything private is masked away, as in the red-light queries of
        Case 4), so such an event cannot influence any rows and the delta is
        zero — which is why those queries need no noise at all.
        """
        if max_rows <= 0:
            raise PolicyError("max_rows must be positive")
        if self.rho == 0:
            return 0.0
        return float(max_rows * self.k_segments * self.max_chunks(chunk_duration))

    def covers(self, rho: float, k_segments: int) -> bool:
        """True if an event with the given bound is protected by this policy."""
        return rho <= self.rho and k_segments <= self.k_segments

    def scaled(self, *, rho_factor: float = 1.0, k_factor: float = 1.0) -> "PrivacyPolicy":
        """A policy with rho and K scaled (used by what-if analyses and tests)."""
        return PrivacyPolicy(rho=self.rho * rho_factor,
                             k_segments=max(1, int(round(self.k_segments * k_factor))))


@dataclass
class MaskPolicyMap:
    """The owner-released map from masks to the (rho, K) each one permits.

    At camera-registration time the owner analyses historical video once per
    candidate mask (Section 7.1) and publishes this map; at query time the
    analyst picks whichever mask least disturbs their query while giving the
    lowest rho.  Entry ``"none"`` (the empty mask) must always exist — it is
    the policy used when the analyst opts out of masking.
    """

    entries: dict[str, tuple[Mask, PrivacyPolicy]] = field(default_factory=dict)

    NO_MASK = "none"

    def __post_init__(self) -> None:
        if self.NO_MASK not in self.entries:
            raise PolicyError('a MaskPolicyMap must contain a "none" entry (the unmasked policy)')

    @classmethod
    def unmasked(cls, policy: PrivacyPolicy) -> "MaskPolicyMap":
        """A map offering only the unmasked policy."""
        return cls(entries={cls.NO_MASK: (EMPTY_MASK, policy)})

    def add(self, name: str, mask: Mask, policy: PrivacyPolicy) -> None:
        """Register an additional mask/policy pair."""
        if name in self.entries:
            raise MaskError(f"mask {name!r} is already registered")
        self.entries[name] = (mask, policy)

    def mask_names(self) -> list[str]:
        """Names of all registered masks."""
        return sorted(self.entries)

    def lookup(self, name: str | None) -> tuple[Mask, PrivacyPolicy]:
        """Mask and policy for a mask name (None means the unmasked entry)."""
        key = self.NO_MASK if name is None else name
        if key not in self.entries:
            raise MaskError(f"unknown mask {key!r}; available: {self.mask_names()}")
        return self.entries[key]

    def best_policy(self) -> PrivacyPolicy:
        """The policy with the smallest rho across all masks (ties by K)."""
        policies = [policy for _, policy in self.entries.values()]
        return min(policies, key=lambda policy: (policy.rho, policy.k_segments))
