"""Query results returned to the analyst.

A query produces one :class:`ReleaseResult` per data release (one for a plain
aggregation, several for a GROUP BY).  In a production deployment only the
noisy values would leave the system; the raw values are retained on the
result objects because the paper's evaluation needs them (the "Privid (No
Noise)" curves of Fig. 5 and all accuracy numbers of Table 3) — they are
clearly named so no caller mistakes them for safe outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.timebase import TimeInterval


@dataclass
class ReleaseResult:
    """One released datum with its noise accounting.

    ``interval`` is the smallest interval covering every frame the release
    drew budget from (it may include uncharged gaps between sources);
    ``source_intervals`` lists the exact charged intervals per camera,
    matching the ledger charges one for one.  ``candidates`` retains the raw
    per-key values of an ARGMAX release so noise re-sampling can redraw
    report-noisy-max — like ``raw_value_unsafe`` they are evaluation-only and
    never released.
    """

    label: str
    kind: str
    noisy_value: Any
    raw_value_unsafe: Any
    sensitivity: float
    epsilon: float
    noise_scale: float
    group_key: Any | None = None
    interval: TimeInterval | None = None
    source_intervals: dict[str, tuple[TimeInterval, ...]] | None = None
    candidates: dict[Any, float] | None = None

    @property
    def absolute_noise(self) -> float:
        """|noisy - raw| for numeric releases (0 for argmax releases)."""
        if isinstance(self.noisy_value, (int, float)) and isinstance(self.raw_value_unsafe,
                                                                     (int, float)):
            return abs(float(self.noisy_value) - float(self.raw_value_unsafe))
        return 0.0


@dataclass
class QueryResult:
    """All releases of one query plus aggregate accounting.

    ``budget_remaining`` reports, per contributing camera, the minimum
    remaining per-frame budget over the span this query charged — measured
    right after the charge, so under a shared service ledger it reflects
    every query admitted so far, not just this one.  ``None`` when the
    query ran with ``charge_budget=False``.
    """

    query_name: str
    releases: list[ReleaseResult] = field(default_factory=list)
    epsilon_consumed: float = 0.0
    metadata: dict[str, Any] = field(default_factory=dict)
    budget_remaining: dict[str, float] | None = None

    @property
    def num_releases(self) -> int:
        """Number of data releases the query produced."""
        return len(self.releases)

    def value(self) -> Any:
        """Noisy value of a single-release query (raises if there are several)."""
        if len(self.releases) != 1:
            raise ValueError(f"query produced {len(self.releases)} releases, not exactly one")
        return self.releases[0].noisy_value

    def series(self) -> list[tuple[Any, Any]]:
        """(group key, noisy value) pairs in release order (for grouped queries)."""
        return [(release.group_key, release.noisy_value) for release in self.releases]

    def raw_series_unsafe(self) -> list[tuple[Any, Any]]:
        """(group key, raw value) pairs — evaluation only, never released."""
        return [(release.group_key, release.raw_value_unsafe) for release in self.releases]

    def by_key(self) -> dict[Any, Any]:
        """Mapping from group key to noisy value."""
        return {release.group_key: release.noisy_value for release in self.releases}
