"""Privacy core: policies, the Laplace mechanism, budgets, and the executor."""

from repro.core.policy import MaskPolicyMap, PrivacyPolicy
from repro.core.noise import LaplaceMechanism
from repro.core.budget import BudgetRequest, FrameBudgetLedger
from repro.core.degradation import (
    detection_probability_bound,
    effective_epsilon,
    degradation_curve,
)
from repro.core.result import QueryResult, ReleaseResult
from repro.core.executor import CameraRegistration, PrividSystem

__all__ = [
    "PrivacyPolicy",
    "MaskPolicyMap",
    "LaplaceMechanism",
    "FrameBudgetLedger",
    "BudgetRequest",
    "detection_probability_bound",
    "effective_epsilon",
    "degradation_curve",
    "QueryResult",
    "ReleaseResult",
    "PrividSystem",
    "CameraRegistration",
]
