"""Privacy core: policies, the Laplace mechanism, budgets, and the executor."""

from repro.core.policy import MaskPolicyMap, PrivacyPolicy
from repro.core.noise import LaplaceMechanism
from repro.core.budget import (
    BudgetRequest,
    DurableServiceLedger,
    FrameBudgetLedger,
    ServiceLedger,
)
from repro.core.durability import QueryJournal, WriteAheadLog
from repro.core.cache import (
    CacheStats,
    ChunkResultCache,
    ChunkStore,
    DiskChunkStore,
    TieredChunkCache,
    create_cache,
    shared_spec,
    store_health,
)
from repro.core.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultRule,
    FaultyTransport,
    faulty_transport_factory,
)
from repro.core.resilience import (
    BreakerState,
    CancellationToken,
    CircuitBreaker,
    RetryPolicy,
)
from repro.core.engine import (
    ChunkOutcome,
    ExecutionEngine,
    ProcessPoolEngine,
    SerialEngine,
    ThreadPoolEngine,
    create_engine,
    engine_kinds,
    register_engine,
)
from repro.core.remote import PipeTransport, ShardedEngine, ShardTransport, TcpTransport
from repro.core.degradation import (
    detection_probability_bound,
    effective_epsilon,
    degradation_curve,
)
from repro.core.result import QueryResult, ReleaseResult
from repro.core.executor import CameraRegistration, PrividSystem

__all__ = [
    "PrivacyPolicy",
    "MaskPolicyMap",
    "LaplaceMechanism",
    "FrameBudgetLedger",
    "BudgetRequest",
    "ServiceLedger",
    "DurableServiceLedger",
    "WriteAheadLog",
    "QueryJournal",
    "CacheStats",
    "ChunkOutcome",
    "ChunkResultCache",
    "ChunkStore",
    "DiskChunkStore",
    "TieredChunkCache",
    "create_cache",
    "shared_spec",
    "store_health",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "FaultyTransport",
    "faulty_transport_factory",
    "BreakerState",
    "CancellationToken",
    "CircuitBreaker",
    "RetryPolicy",
    "ExecutionEngine",
    "SerialEngine",
    "ThreadPoolEngine",
    "ProcessPoolEngine",
    "ShardedEngine",
    "ShardTransport",
    "PipeTransport",
    "TcpTransport",
    "create_engine",
    "engine_kinds",
    "register_engine",
    "detection_probability_bound",
    "effective_epsilon",
    "degradation_curve",
    "QueryResult",
    "ReleaseResult",
    "PrividSystem",
    "CameraRegistration",
]
