"""The Laplace mechanism used to perturb every data release (Section 6.1).

Noise is drawn from a Laplace distribution with scale ``sensitivity /
epsilon``; the same mechanism powers plain numeric releases and the noisy
argmax used for ARGMAX aggregations (report-noisy-max).
"""

from __future__ import annotations

from typing import Any, Mapping

import numpy as np

from repro.errors import PolicyError
from repro.utils.rng import RandomSource


class LaplaceMechanism:
    """Draws calibrated Laplace noise from a dedicated random stream."""

    def __init__(self, random_source: RandomSource | None = None, *, seed: int = 0) -> None:
        source = random_source if random_source is not None else RandomSource(seed)
        self._rng = source.stream("laplace-mechanism")

    @staticmethod
    def scale(sensitivity: float, epsilon: float) -> float:
        """Laplace scale parameter b = sensitivity / epsilon."""
        if epsilon <= 0:
            raise PolicyError("epsilon must be positive")
        if sensitivity < 0:
            raise PolicyError("sensitivity must be non-negative")
        return sensitivity / epsilon

    def sample(self, sensitivity: float, epsilon: float) -> float:
        """One noise sample for the given sensitivity and epsilon."""
        scale = self.scale(sensitivity, epsilon)
        if scale == 0:
            return 0.0
        return float(self._rng.laplace(0.0, scale))

    def add_noise(self, value: float, sensitivity: float, epsilon: float) -> float:
        """Return ``value`` perturbed with calibrated Laplace noise."""
        return float(value) + self.sample(sensitivity, epsilon)

    def noisy_argmax(self, candidates: Mapping[Any, float], sensitivity: float,
                     epsilon: float) -> Any:
        """Report-noisy-max over a set of candidate values.

        Each candidate's value receives an independent Laplace sample of
        scale ``sensitivity / epsilon`` and the key of the largest noisy
        value is returned.  Only the winning key is released.
        """
        if not candidates:
            raise PolicyError("noisy_argmax requires at least one candidate")
        best_key = None
        best_value = -np.inf
        for key in sorted(candidates, key=str):
            noisy = candidates[key] + self.sample(sensitivity, epsilon)
            if noisy > best_value:
                best_value = noisy
                best_key = key
        return best_key

    @staticmethod
    def confidence_interval(sensitivity: float, epsilon: float,
                            confidence: float = 0.99) -> float:
        """Half-width of the symmetric noise interval at the given confidence.

        Used to draw the noise ribbon of Fig. 5: the noisy output falls within
        ``raw +- half_width`` with probability ``confidence``.
        """
        if not 0.0 < confidence < 1.0:
            raise PolicyError("confidence must be in (0, 1)")
        scale = LaplaceMechanism.scale(sensitivity, epsilon)
        return float(-scale * np.log(1.0 - confidence))
