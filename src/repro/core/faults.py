"""Deterministic, seeded fault injection for chaos testing the deployment.

Resilience claims need systematic, *repeatable* failure experiments — a bug
that only shows up when a shard dies between seq 7 and 8 is useless anecdote
unless the same crash can be replayed on demand.  This module provides that
seam: a :class:`FaultPlan` is a declarative schedule of faults, and a
:class:`FaultInjector` evaluates it at well-defined *sites* threaded through
the transports (:class:`FaultyTransport` around any
:class:`~repro.core.remote.ShardTransport`), the disk store
(:class:`~repro.core.cache.DiskChunkStore` consults ``store.get`` /
``store.put``), and shard spawning (:func:`faulty_transport_factory` polls
``*.connect``).  Production code never imports a plan; a ``None`` injector
is free.

Determinism
===========

Fault decisions use the exact splitmix64 discipline of the noise streams
(:mod:`repro.utils.hashing`): whether a probabilistic rule fires at a site is
``unit_draw(stream_key(plan.seed, site, kind), lane) < probability`` where
the *lane* is the injector's per-site operation counter — or, when the
caller passes a content ``token`` (the disk store passes the entry key), a
pure function of that identity.  Scheduled rules (``at`` indices,
``after_seq``) do not draw at all.  Consequences:

* the *decision* for a given (site, lane) is a pure function of the plan —
  never of wall-clock time or a global RNG;
* sites polled from a single driving thread (task dispatch, connects, store
  operations under a sequential query drive) therefore replay their fault
  sequence bit-identically across runs;
* sites polled from reader threads (result frames) have deterministic
  per-decision draws but an arrival order the OS scheduler picks, so their
  realized sequence is only guaranteed to replay under a sequential drive
  with deterministic shard assignment.  The chaos harness asserts exact
  replay on the former class and byte-identity-of-results on all of them.

Heartbeat traffic (``ping``/``pong``) is deliberately *exempt* from
injection: pings fire on wall-clock silence, so polling the injector for
them would make every other site's operation counters timing-dependent and
destroy replay.

Fault taxonomy (:class:`FaultKind`)
===================================

``TORN_FRAME``    a result frame is lost mid-read and the connection torn
                  down (reads as shard death; pending work is redispatched).
``DROP_FRAME``    a frame silently vanishes (written into the void, or read
                  and discarded) while the connection stays up — the stall
                  only ``task_timeout`` redispatch recovers from.
``CONNECT_REFUSED`` a transport factory raises ``ConnectionRefusedError``
                  (feeds dial retry and the per-endpoint circuit breakers).
``CRASH``         the far end is killed right after accepting a task frame
                  (``after_seq`` schedules "crash at seq N"; pair with
                  ``max_fires`` so the respawned shard survives the retry).
``DELAY``         the operation sleeps ``delay`` seconds, then proceeds.
``IO_ERROR``      the operation raises :class:`OSError` (store reads/writes
                  degrade to misses; task writes mark the shard dead).
``CORRUPT``       the store entry is scribbled over before the read, so the
                  store's corrupt-entry self-heal path runs for real.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from enum import Enum
from fnmatch import fnmatchcase
from typing import Any

from repro.utils.hashing import stream_key, string_token, unit_draw


class FaultKind(str, Enum):
    """What happens when a rule fires (see the module taxonomy table)."""

    TORN_FRAME = "torn_frame"
    DROP_FRAME = "drop_frame"
    CONNECT_REFUSED = "connect_refused"
    CRASH = "crash"
    DELAY = "delay"
    IO_ERROR = "io_error"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: *where* (site pattern), *what* (kind), *when*.

    ``site`` is an ``fnmatch`` pattern over site names
    (``"transport.*.task"``, ``"store.get"``).  Exactly one trigger should
    be meaningful: ``probability`` draws per operation from the plan's
    seeded stream, ``at`` fires at explicit per-site operation indices,
    ``after_seq`` fires once the polled ``seq`` reaches a threshold (the
    "crash at seq N" schedule — it defaults ``max_fires`` to 1, since every
    later seq would match too).  ``max_fires`` caps total firings of the
    rule across all sites; ``delay`` is the sleep of DELAY faults.
    """

    site: str
    kind: FaultKind
    probability: float = 0.0
    at: tuple[int, ...] = ()
    after_seq: int | None = None
    delay: float = 0.0
    max_fires: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.probability == 0.0 and not self.at and self.after_seq is None:
            raise ValueError(
                "a FaultRule needs a trigger: probability, at, or after_seq")
        if self.delay < 0:
            raise ValueError("delay must be non-negative")
        if self.max_fires is not None and self.max_fires < 1:
            raise ValueError("max_fires must be at least 1")
        if self.after_seq is not None and self.max_fires is None:
            # Every seq past the threshold matches, so an unbounded
            # crash-at-seq rule would kill the respawned shard on the very
            # retry that was meant to recover.  One firing is the schedule
            # people mean by "crash at seq N".
            object.__setattr__(self, "max_fires", 1)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded schedule of faults — the unit a chaos run replays."""

    rules: tuple[FaultRule, ...]
    seed: int = 0
    name: str = "fault-plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def injector(self) -> "FaultInjector":
        """A fresh injector (fresh counters) evaluating this plan."""
        return FaultInjector(self)


@dataclass(frozen=True)
class FaultEvent:
    """One firing, recorded for replay assertions: where, what, which op."""

    site: str
    kind: FaultKind
    index: int
    seq: int | None = None
    token: str | None = None

    def describe(self) -> str:
        parts = [f"{self.site}#{self.index}", self.kind.value]
        if self.seq is not None:
            parts.append(f"seq={self.seq}")
        if self.token is not None:
            parts.append(f"token={self.token[:12]}")
        return " ".join(parts)


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at injection sites; thread-safe.

    One injector per chaos run: it owns the per-site operation counters and
    the ``fired`` log.  ``poll(site)`` advances the site's counter and
    returns the first matching rule that fires (or None), recording a
    :class:`FaultEvent`.  Pass ``seq`` at sites with a protocol sequence
    number (task writes) so ``after_seq`` rules can trigger, and ``token``
    at content-addressed sites (store entries) so decisions are pure
    functions of the entry identity rather than arrival order.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._op_counts: dict[str, int] = {}
        self._rule_fires: dict[int, int] = {}
        self._fired: list[FaultEvent] = []

    @property
    def fired(self) -> list[FaultEvent]:
        """A snapshot of the fired events, safe to iterate while polling.

        One injector is shared by the engine, the store, and the WAL, all of
        which may poll from concurrent query threads — so the backing list
        mutates under readers.  Returning a copy taken under the lock keeps
        ``len(injector.fired)`` and iteration race-free; appends happen only
        inside :meth:`poll`, which already holds the same lock.
        """
        with self._lock:
            return list(self._fired)

    def poll(self, site: str, *, seq: int | None = None,
             token: str | None = None) -> FaultRule | None:
        """Evaluate the plan for one operation at ``site``."""
        with self._lock:
            index = self._op_counts.get(site, 0)
            self._op_counts[site] = index + 1
            for rule_index, rule in enumerate(self.plan.rules):
                if not fnmatchcase(site, rule.site):
                    continue
                if (rule.max_fires is not None
                        and self._rule_fires.get(rule_index, 0) >= rule.max_fires):
                    continue
                if not self._rule_fires_now(rule, site, index, seq, token):
                    continue
                self._rule_fires[rule_index] = self._rule_fires.get(rule_index, 0) + 1
                self._fired.append(FaultEvent(site=site, kind=rule.kind,
                                              index=index, seq=seq, token=token))
                return rule
            return None

    def _rule_fires_now(self, rule: FaultRule, site: str, index: int,
                        seq: int | None, token: str | None) -> bool:
        if rule.after_seq is not None:
            return seq is not None and seq >= rule.after_seq
        if index in rule.at:
            return True
        if rule.probability <= 0.0:
            return False
        if rule.probability >= 1.0:
            return True
        lane = string_token(token) if token is not None else index
        key = stream_key(self.plan.seed, string_token(site),
                         string_token(rule.kind.value))
        return unit_draw(key, lane) < rule.probability

    def op_count(self, site: str) -> int:
        """Operations polled at ``site`` so far."""
        with self._lock:
            return self._op_counts.get(site, 0)

    def log(self) -> tuple[str, ...]:
        """The fired events as stable strings, for replay comparison."""
        with self._lock:
            return tuple(event.describe() for event in self._fired)

    def summary(self) -> dict[str, int]:
        """Fired-event counts by (site, kind) — the chaos report shape."""
        with self._lock:
            counts: dict[str, int] = {}
            for event in self._fired:
                label = f"{event.site}:{event.kind.value}"
                counts[label] = counts.get(label, 0) + 1
            return counts


# ---------------------------------------------------------------- transports


def _frame_bytes(message: dict[str, Any]) -> int:
    """Wire size a frame would have had (for faults that swallow writes)."""
    return 4 + len(json.dumps(message, separators=(",", ":")).encode("utf-8"))


class FaultyTransport:
    """Wraps a :class:`~repro.core.remote.ShardTransport`, injecting faults.

    Polls the injector only on the *deterministic* protocol events — task
    frames on the write side (site ``{site}.task``, with the task's seq) and
    result frames on the read side (site ``{site}.result``) — so heartbeat
    timing never perturbs the operation counters.  All other behaviour
    delegates to the wrapped transport.
    """

    def __init__(self, inner: Any, injector: FaultInjector, site: str) -> None:
        self.inner = inner
        self.injector = injector
        self.site = site
        self.description = f"faulty({inner.description})"

    @property
    def process(self) -> Any:
        return self.inner.process

    def read(self) -> dict[str, Any] | None:
        while True:
            message = self.inner.read()
            if message is None or message.get("type") != "result":
                return message
            rule = self.injector.poll(f"{self.site}.result",
                                      seq=message.get("seq"))
            if rule is None:
                return message
            if rule.kind is FaultKind.DELAY:
                time.sleep(rule.delay)
                return message
            if rule.kind is FaultKind.DROP_FRAME:
                continue  # the frame vanished in transit; keep reading
            if rule.kind is FaultKind.TORN_FRAME:
                # The stream tore mid-frame: unrecoverable on a byte
                # transport, so the connection dies with it.
                self.inner.kill()
                return None
            return message

    def write(self, message: dict[str, Any]) -> int:
        if message.get("type") != "task":
            return self.inner.write(message)
        rule = self.injector.poll(f"{self.site}.task", seq=message.get("seq"))
        if rule is None:
            return self.inner.write(message)
        if rule.kind is FaultKind.DELAY:
            time.sleep(rule.delay)
            return self.inner.write(message)
        if rule.kind is FaultKind.IO_ERROR:
            raise OSError(f"injected task write failure at {self.site}")
        if rule.kind is FaultKind.DROP_FRAME:
            # Written into the void: the caller sees success, the far end
            # sees nothing — the pure stall only task timeouts recover from.
            return _frame_bytes(message)
        if rule.kind is FaultKind.CRASH:
            # The far end dies right after accepting the task.
            try:
                sent = self.inner.write(message)
            except OSError:
                sent = _frame_bytes(message)
            self.inner.kill()
            return sent
        return self.inner.write(message)

    def is_alive(self) -> bool:
        return self.inner.is_alive()

    def kill(self) -> None:
        self.inner.kill()

    def close(self, timeout: float = 5.0) -> None:
        self.inner.close(timeout)


def faulty_transport_factory(factory: Any, injector: FaultInjector,
                             site: str) -> Any:
    """Wrap a transport factory so connects and frames go through the plan.

    Polls ``{site}.connect`` before construction (CONNECT_REFUSED raises
    :class:`ConnectionRefusedError`, DELAY sleeps first — both feed the dial
    retry and circuit-breaker paths exactly like a real refusing endpoint),
    then wraps the built transport in a :class:`FaultyTransport`.
    """

    def build() -> FaultyTransport:
        rule = injector.poll(f"{site}.connect")
        if rule is not None:
            if rule.kind is FaultKind.DELAY:
                time.sleep(rule.delay)
            elif rule.kind is FaultKind.CONNECT_REFUSED:
                raise ConnectionRefusedError(
                    f"injected connection refusal at {site}")
        return FaultyTransport(factory(), injector, site)

    return build
