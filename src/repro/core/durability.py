"""Crash-consistent durability: a write-ahead log and the per-query journal.

The privacy guarantee is only as strong as the budget accounting, and until
this module existed the accounting lived purely in memory: a ``kill -9`` of
an always-on :class:`~repro.service.QueryService` reset every camera's
budget, letting an adversary replay queries past epsilon.  This module makes
the accounting survive process death:

* :class:`WriteAheadLog` — an append-only, fsync-disciplined log of
  CRC-framed JSON records.  Mutations are logged (and flushed to stable
  storage) *before* they take effect in memory, so recovery replays exactly
  the mutations that were acknowledged.  The tail of the log may be torn by
  a crash mid-write; recovery stops at the first damaged frame, repairs the
  file back to its last intact record, and reports what was dropped.
  :meth:`~WriteAheadLog.compact` folds the applied state into an atomically
  renamed snapshot and truncates the log, bounding replay time.
* :class:`QueryJournal` — per-query progress over the same log: which query
  seq a resume token maps to, how many chunks completed, whether the charge
  landed, whether the query finished.  ``submit(..., resume_token=)``
  resumes an interrupted query from this state.

The ledger side lives in :class:`repro.core.budget.DurableServiceLedger`,
which owns WAL replay and dispatches journal records here.

Record framing
==============

Each record is ``<u32 payload length><u32 CRC-32 of payload><payload>`` with
a little-endian header and a UTF-8 JSON payload carrying its monotonically
increasing ``seq``.  Decoding stops — without raising — at the first frame
that is short, oversized, fails its CRC, or does not parse: a crash tears at
most the *tail* of an append-only file, so everything before the damage is
trustworthy and everything after it is not (a flipped byte mid-file
invalidates its frame and all framing after it).  Snapshots are whole JSON
files written to a temp name, fsynced, and atomically renamed, so they are
either entirely old or entirely new; a snapshot that fails to parse is
raised as :class:`~repro.errors.DurabilityError` — unlike a torn tail it
means acknowledged charges may be gone, which must never pass silently.

Fsync discipline
================

``append(..., sync=True)`` (the default, used for registrations, charges,
and journal start/finish) returns only after ``os.fsync``; ``sync=False``
(chunk-progress checkpoints) writes through the OS cache — losing a
progress record costs re-executing a warm chunk, never a budget.

Fault sites
===========

``wal.append`` / ``wal.fsync`` / ``wal.read`` are polled on the configured
:class:`~repro.core.faults.FaultInjector` (IO_ERROR raises :class:`OSError`,
DELAY sleeps, CORRUPT flips a byte of the loaded log image), and
``service.crash_at_seq`` is polled after every durable append with the
record's seq — a CRASH rule there invokes :attr:`WriteAheadLog.crash_hook`
(default: raise :class:`~repro.errors.SimulatedCrashError`; the chaos
harness installs a real ``SIGKILL``), which is how the PR-7 fault machinery
deterministically kills the service at an exact WAL position.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from pathlib import Path
from typing import Any, Callable

from repro.errors import DurabilityError, ResumeMismatchError, \
    SimulatedCrashError

_HEADER = struct.Struct("<II")

#: Sanity bound on one record's payload: a length field larger than this is
#: framing garbage, not a record that has not finished arriving.
MAX_RECORD_BYTES = 16 * 1024 * 1024


def encode_record(payload: dict[str, Any]) -> bytes:
    """One CRC-framed WAL record: ``<len><crc32><canonical JSON>``."""
    try:
        body = json.dumps(payload, sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise DurabilityError(f"WAL payload is not JSON-serializable: {exc}") from exc
    if len(body) > MAX_RECORD_BYTES:
        raise DurabilityError(
            f"WAL payload of {len(body)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte record bound")
    return _HEADER.pack(len(body), zlib.crc32(body)) + body


def decode_records(data: bytes) -> tuple[list[dict[str, Any]], int]:
    """Decode a log image, tolerating a torn or garbage tail.

    Returns ``(records, clean_offset)``: every intact record in order, and
    the byte offset of the first damage (== ``len(data)`` for a clean log).
    Never raises on damaged input — a short header, an insane length, a CRC
    mismatch, or unparseable JSON all end the trustworthy prefix, exactly
    the failure an append torn by a crash leaves behind.
    """
    records: list[dict[str, Any]] = []
    offset = 0
    while offset + _HEADER.size <= len(data):
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        if length > MAX_RECORD_BYTES or start + length > len(data):
            break
        body = data[start:start + length]
        if zlib.crc32(body) != crc:
            break
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            break
        if not isinstance(payload, dict):
            break
        records.append(payload)
        offset = start + length
    return records, offset


def _default_crash_hook() -> None:
    raise SimulatedCrashError(
        "injected crash at service.crash_at_seq (kill -9 stand-in); "
        "abandon this instance and recover over the same WAL directory")


class WriteAheadLog:
    """Append-only, fsync-disciplined record log with snapshot compaction.

    One instance owns one directory holding ``wal.log`` (the live segment)
    and ``snapshot.json`` (the last compaction).  Opening the directory *is*
    recovery: the snapshot state (if any) is exposed as
    :attr:`snapshot_state`, the intact log records appended after it as
    :attr:`pending_records`, a torn tail is truncated away so new appends
    never follow damage, and :attr:`recovery_info` reports what happened.
    Thread-safe; record seqs increase monotonically across compactions and
    reopenings.
    """

    def __init__(self, directory: str | Path, *, fsync: bool = True,
                 fault_injector: Any = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.log_path = self.directory / "wal.log"
        self.snapshot_path = self.directory / "snapshot.json"
        self.fsync_enabled = fsync
        self._lock = threading.RLock()
        # Set before recovery so open-time reads poll ``wal.read`` too.
        self._injector: Any = fault_injector
        self._closed = False
        #: Invoked when a ``service.crash_at_seq`` CRASH rule fires; the
        #: default raises SimulatedCrashError, the chaos driver installs
        #: ``os.kill(os.getpid(), SIGKILL)`` for a genuine dirty death.
        self.crash_hook: Callable[[], None] = _default_crash_hook
        self.appends = 0
        self.fsyncs = 0
        self.compactions = 0
        self.appends_since_compact = 0

        self.snapshot_state, snapshot_seq = self._load_snapshot()
        records, clean_offset, durable_records, durable_clean, log_bytes = \
            self._load_log()
        #: Records appended after the snapshot, awaiting replay by the owner.
        self.pending_records = [record for record in records
                                if record.get("seq", 0) > snapshot_seq]
        # Seqs are allocated past every record on the *real* file, not the
        # possibly chaos-doctored replay image: an injected mid-file flip
        # drops records from this run's replay, but they are still framed on
        # disk and a reused seq would collide with them at the next open.
        seqs = [snapshot_seq] + [record.get("seq", 0)
                                 for record in durable_records]
        self._next_seq = max(seqs) + 1
        self._snapshot_seq = snapshot_seq
        self.recovery_info = {
            "snapshot_loaded": self.snapshot_state is not None,
            "snapshot_seq": snapshot_seq,
            "log_records": len(records),
            "pending_records": len(self.pending_records),
            "torn_bytes_dropped": log_bytes - durable_clean,
            "injected_damage_bytes": durable_clean - clean_offset,
        }
        # Open for append at the last intact record: a torn tail is cut off
        # here so the next append extends trustworthy framing, never garbage.
        # Only *genuine* on-disk damage is repaired — damage simulated by an
        # injected wal.read CORRUPT fault exists in the loaded image alone,
        # and truncating the file for it would permanently discard intact,
        # fsynced records (acknowledged charges included).
        self._file = open(self.log_path, "a+b")
        if durable_clean != log_bytes:
            self._file.truncate(durable_clean)
        self._file.seek(0, os.SEEK_END)

    # ------------------------------------------------------------- fault seam

    def set_fault_injector(self, injector: Any) -> None:
        """Adopt the deployment's shared injector (``wal.*`` sites)."""
        self._injector = injector

    def _poll(self, site: str, *, seq: int | None = None) -> Any:
        if self._injector is None:
            return None
        rule = self._injector.poll(site, seq=seq)
        if rule is None:
            return None
        kind = getattr(rule.kind, "value", rule.kind)
        if kind == "delay":
            time.sleep(rule.delay)
            return None
        if kind == "io_error":
            raise OSError(f"injected WAL failure at {site}")
        return rule

    # --------------------------------------------------------------- recovery

    def _load_snapshot(self) -> tuple[dict[str, Any] | None, int]:
        if not self.snapshot_path.exists():
            return None, 0
        try:
            snapshot = json.loads(self.snapshot_path.read_bytes().decode("utf-8"))
            state = snapshot["state"]
            seq = int(snapshot["wal_seq"])
        except (OSError, ValueError, KeyError, TypeError) as exc:
            # A snapshot is atomically renamed into place, so damage here is
            # not a torn write — acknowledged charges may be missing, and
            # silently starting fresh would refill spent budgets.
            raise DurabilityError(
                f"WAL snapshot {self.snapshot_path} is unreadable: {exc}") from exc
        return state, seq

    def _load_log(self) -> tuple[list[dict[str, Any]], int,
                                 list[dict[str, Any]], int, int]:
        """Load the log image, twice when chaos doctors it.

        Returns ``(records, clean_offset, durable_records, durable_clean,
        log_bytes)``.  ``records``/``clean_offset`` describe the image
        *recovery replays* — possibly doctored by an injected ``wal.read``
        CORRUPT fault, which flips a byte of the in-memory copy so the
        torn-prefix path runs against damage.  ``durable_records`` /
        ``durable_clean`` always describe the undoctored on-disk bytes:
        physical repair (truncation) and seq allocation must follow the real
        file, or a chaos plan against a live WAL directory would discard
        intact, fsynced charge records — silently refilling spent budgets —
        and hand out seqs that duplicate records still on disk.
        """
        rule = self._poll("wal.read")
        if not self.log_path.exists():
            return [], 0, [], 0, 0
        data = self.log_path.read_bytes()
        durable_records, durable_clean = decode_records(data)
        if rule is not None and getattr(rule.kind, "value",
                                        rule.kind) == "corrupt" and data:
            position = len(data) // 2
            doctored = data[:position] + bytes([data[position] ^ 0xFF]) \
                + data[position + 1:]
            records, clean_offset = decode_records(doctored)
        else:
            records, clean_offset = durable_records, durable_clean
        return records, clean_offset, durable_records, durable_clean, len(data)

    # ----------------------------------------------------------------- append

    def append(self, payload: dict[str, Any], *, sync: bool = True) -> int:
        """Durably append one record; returns its seq.

        The record is written (and, with ``sync``, fsynced) before this
        returns — the write-ahead contract callers rely on: *log first, then
        mutate memory*.  After a durable append the ``service.crash_at_seq``
        fault site is polled with the new seq, the deterministic kill point
        of the chaos plans.
        """
        with self._lock:
            if self._closed:
                raise DurabilityError("WriteAheadLog is closed")
            seq = self._next_seq
            record = dict(payload)
            record["seq"] = seq
            blob = encode_record(record)
            # Polled before anything touches the file: an injected IO_ERROR
            # here models open/write refusal, with nothing to roll back.
            self._poll("wal.append", seq=seq)
            offset = self._file.tell()
            try:
                self._file.write(blob)
                self._file.flush()
                if sync and self.fsync_enabled:
                    self._poll("wal.fsync", seq=seq)
                    os.fsync(self._file.fileno())
                    self.fsyncs += 1
            except BaseException:
                # The caller will treat this append as failed, but the bytes
                # may already be in the file (fsync raised after the write
                # landed, e.g. ENOSPC or an injected wal.fsync IO_ERROR).
                # Left in place they would replay on recovery as a phantom
                # mutation nobody acknowledged, so roll the file back to the
                # pre-write offset.  The seq is burned either way: if the
                # truncate itself fails the record may survive on disk, and
                # reusing its seq would frame a duplicate.
                self._next_seq = seq + 1
                try:
                    self._file.truncate(offset)
                    self._file.seek(offset)
                except OSError:  # pragma: no cover - rollback on a dead fd
                    pass
                raise
            self._next_seq = seq + 1
            self.appends += 1
            self.appends_since_compact += 1
            crash = self._poll("service.crash_at_seq", seq=seq)
            if crash is not None and getattr(crash.kind, "value",
                                             crash.kind) == "crash":
                self.crash_hook()
            return seq

    def sync(self) -> None:
        """Flush and fsync the log (group-commit for unsynced appends)."""
        with self._lock:
            if self._closed:
                return
            self._file.flush()
            self._poll("wal.fsync")
            os.fsync(self._file.fileno())
            self.fsyncs += 1

    # ------------------------------------------------------------- compaction

    def compact(self, state: dict[str, Any]) -> None:
        """Fold applied state into a snapshot and truncate the log.

        The snapshot (carrying ``wal_seq`` = the last appended record, so a
        crash between rename and truncate leaves only records the snapshot
        already covers — replay skips them by seq) is written to a temp
        file, fsynced, atomically renamed, and the directory fsynced before
        the log is truncated.  At no instant does stable storage lack a full
        account of every acknowledged mutation.
        """
        with self._lock:
            if self._closed:
                raise DurabilityError("WriteAheadLog is closed")
            last_seq = self._next_seq - 1
            body = json.dumps({"wal_seq": last_seq, "state": state},
                              sort_keys=True, separators=(",", ":")).encode("utf-8")
            temp_path = self.snapshot_path.with_name(self.snapshot_path.name + ".tmp")
            with open(temp_path, "wb") as handle:
                handle.write(body)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, self.snapshot_path)
            self._fsync_directory()
            self._file.truncate(0)
            self._file.seek(0)
            os.fsync(self._file.fileno())
            self._snapshot_seq = last_seq
            self.compactions += 1
            self.appends_since_compact = 0

    def _fsync_directory(self) -> None:
        try:
            directory_fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(directory_fd)
        finally:
            os.close(directory_fd)

    # ------------------------------------------------------------------ state

    def status(self) -> dict[str, Any]:
        """Ops snapshot for ``health()``: position, sizes, fsync accounting."""
        with self._lock:
            try:
                log_bytes = self.log_path.stat().st_size
            except OSError:
                log_bytes = 0
            return {"path": str(self.directory),
                    "last_seq": self._next_seq - 1,
                    "snapshot_seq": self._snapshot_seq,
                    "log_bytes": log_bytes,
                    "appends": self.appends,
                    "fsyncs": self.fsyncs,
                    "compactions": self.compactions,
                    "appends_since_compact": self.appends_since_compact,
                    "closed": self._closed}

    def close(self) -> None:
        """Release the log file handle.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            try:
                self._file.close()
            except OSError:  # pragma: no cover - close on a dead fd
                pass


class QueryJournal:
    """Per-query durable progress: the state ``resume_token`` resumes from.

    One entry per journaled query: its resume token, the query seq its noise
    stream is keyed by (resume must reuse it for byte-identity), completed
    chunk count, and the charged/finished flags.  Entries mutate through the
    WAL — :meth:`start` and :meth:`finish` are synced appends,
    :meth:`checkpoint` rides the OS cache (losing one costs a warm chunk
    re-execution, never a budget) — and are rebuilt on recovery by
    :meth:`apply` / :meth:`restore`, both idempotent.

    The ``charged`` flag is *not* journal-owned: the ledger's charge record
    is the ground truth, and :class:`~repro.core.budget.DurableServiceLedger`
    calls :meth:`mark_charged` when it applies one (live or during replay).
    """

    def __init__(self, wal: WriteAheadLog | None = None) -> None:
        self.wal = wal
        self._lock = threading.Lock()
        self._entries: dict[str, dict[str, Any]] = {}

    # ------------------------------------------------------------------ reads

    def entry(self, token: str) -> dict[str, Any] | None:
        """A snapshot of one journal entry, or None."""
        with self._lock:
            entry = self._entries.get(token)
            return dict(entry) if entry is not None else None

    def tokens(self) -> tuple[str, ...]:
        """Every journaled resume token, sorted."""
        with self._lock:
            return tuple(sorted(self._entries))

    def next_query_seq(self) -> int:
        """The first query seq no journaled query has used.

        A recovered service starts numbering here so a resumed query's
        reused seq can never collide with a fresh submission's — seq keys
        the per-query noise stream, and a collision would correlate noise
        across queries.
        """
        with self._lock:
            if not self._entries:
                return 0
            return max(entry["query_seq"] for entry in self._entries.values()) + 1

    # ------------------------------------------------------------- mutations

    def start(self, token: str, query_seq: int, query_name: str,
              fingerprint: str | None = None) -> dict[str, Any]:
        """Journal a query start; idempotent on resume (same token).

        ``fingerprint`` is the canonical hash of the query (AST plus the
        release-affecting execute options) journaled with the start record.
        A resume (existing token) whose fingerprint differs from the
        journaled one raises :class:`~repro.errors.ResumeMismatchError`
        *before* anything runs: the token's charge may already have landed
        idempotently, so letting a different query ride it would execute
        with zero budget charge and share the original noise stream — a
        privacy-budget bypass, given the analyst is the adversary.
        """
        with self._lock:
            existing = self._entries.get(token)
            if existing is not None:
                journaled = existing.get("fingerprint")
                if fingerprint is not None and journaled is not None \
                        and fingerprint != journaled:
                    raise ResumeMismatchError(
                        f"resume token {token!r} was journaled for a "
                        f"different query (fingerprint {journaled[:12]}..., "
                        f"resubmitted {fingerprint[:12]}...); a charged "
                        f"token admits only the exact query it charged")
                existing["resumes"] += 1
                snapshot = dict(existing)
            else:
                entry = {"token": token, "query_seq": query_seq,
                         "query": query_name, "fingerprint": fingerprint,
                         "chunks_done": 0, "charged": False,
                         "finished": False, "resumes": 0}
                self._entries[token] = entry
                snapshot = dict(entry)
        if existing is None:
            if self.wal is not None:
                self.wal.append({"op": "query_start", "token": token,
                                 "query_seq": query_seq, "query": query_name,
                                 "fingerprint": fingerprint})
        return snapshot

    def checkpoint(self, token: str, chunks_done: int) -> None:
        """Record chunk progress (unsynced — advisory, never budget-bearing)."""
        with self._lock:
            entry = self._entries.get(token)
            if entry is None:
                return
            entry["chunks_done"] = max(entry["chunks_done"], chunks_done)
        if self.wal is not None:
            self.wal.append({"op": "query_progress", "token": token,
                             "chunks_done": chunks_done}, sync=False)

    def mark_charged(self, token: str) -> None:
        """The ledger applied this query's charge (live or replayed)."""
        with self._lock:
            entry = self._entries.setdefault(
                token, {"token": token, "query_seq": -1, "query": "",
                        "fingerprint": None, "chunks_done": 0,
                        "charged": False, "finished": False, "resumes": 0})
            entry["charged"] = True

    def finish(self, token: str) -> None:
        """Journal successful completion (synced)."""
        with self._lock:
            entry = self._entries.get(token)
            if entry is None:
                return
            entry["finished"] = True
        if self.wal is not None:
            self.wal.append({"op": "query_finish", "token": token})

    # --------------------------------------------------------------- recovery

    def apply(self, record: dict[str, Any]) -> None:
        """Replay one journal record (idempotent; unknown ops are ignored)."""
        op = record.get("op")
        token = record.get("token")
        if not isinstance(token, str):
            return
        with self._lock:
            if op == "query_start":
                self._entries.setdefault(token, {
                    "token": token,
                    "query_seq": int(record.get("query_seq", -1)),
                    "query": record.get("query", ""),
                    "fingerprint": record.get("fingerprint"),
                    "chunks_done": 0, "charged": False,
                    "finished": False, "resumes": 0})
            elif op == "query_progress":
                entry = self._entries.get(token)
                if entry is not None:
                    entry["chunks_done"] = max(entry["chunks_done"],
                                               int(record.get("chunks_done", 0)))
            elif op == "query_finish":
                entry = self._entries.get(token)
                if entry is not None:
                    entry["finished"] = True

    def state_payload(self) -> dict[str, Any]:
        """JSON-safe journal state for snapshot compaction."""
        with self._lock:
            return {token: dict(entry)
                    for token, entry in sorted(self._entries.items())}

    def restore(self, state: dict[str, Any]) -> None:
        """Load journal state from a compaction snapshot."""
        with self._lock:
            self._entries = {token: dict(entry)
                             for token, entry in state.items()}
