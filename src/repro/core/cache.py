"""Memoization of per-chunk sandbox outputs.

Chunk processing is the dominant cost of every query, and it is a pure
function of the chunk's identity and the processing configuration: the same
(camera footage, chunk interval, mask, region, sample period) processed by the
same (executable, schema, max_rows, timeout) always yields the same rows,
because the sandbox builds a fresh executable instance and a freshly seeded
detector per chunk.  What-if sweeps (Fig. 6/7), repeated noise re-evaluations,
and overlapping query windows therefore re-process identical chunks over and
over; :class:`ChunkResultCache` memoizes those executions so only genuinely
new (chunk, configuration) pairs ever reach an execution engine.

The cache never affects privacy accounting — budgets are charged per release
by the executor regardless of whether the rows came from the cache — and it
stores only intermediate rows that never leave the system un-noised.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sandbox.environment import ExecutionContext, SandboxRunner
    from repro.video.chunking import Chunk

from repro.core.engine import ChunkRows


def canonical_value(value: Any) -> Any:
    """Reduce a configuration value to a stable, hashable-repr structure.

    Handles the value shapes that appear in executable/detector/tracker
    configurations: scalars, enums, (nested) sequences and mappings, and
    dataclasses.  Callables are identified by qualified name (their identity
    in a registry), anything else by ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, Enum):
        return (type(value).__name__, value.value)
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,
                tuple((spec.name, canonical_value(getattr(value, spec.name)))
                      for spec in fields(value)))
    if isinstance(value, Mapping):
        return tuple(sorted((str(key), canonical_value(item))
                            for key, item in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [canonical_value(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return tuple(items)
    if callable(value):
        return getattr(value, "__qualname__", repr(value))
    return repr(value)


def fingerprint(*parts: Any) -> str:
    """Stable hex digest of a sequence of canonicalized configuration parts."""
    canonical = repr(tuple(canonical_value(part) for part in parts))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def chunk_fingerprint(chunk: "Chunk") -> str:
    """Identity of one chunk's *visible content*.

    Footage is identified by the video's name and session-unique content
    token (a registered camera's footage is immutable for the lifetime of a
    deployment, and the token keeps distinct footage objects with equal
    names from colliding when a cache is shared), plus everything that
    restricts what the executable can see: the interval, the mask, the
    spatial region, and the frame sampling period.
    """
    return fingerprint(
        chunk.video.name,
        getattr(chunk.video, "content_token", 0),
        chunk.video.fps,
        chunk.video.duration,
        chunk.index,
        (chunk.interval.start, chunk.interval.end),
        chunk.mask,
        chunk.region,
        chunk.sample_period,
    )


def runner_fingerprint(runner: "SandboxRunner") -> str:
    """Identity of the processing configuration applied to every chunk."""
    executable = runner.executable
    return fingerprint(
        getattr(executable, "name", type(executable).__name__),
        executable.config_fingerprint(),
        runner.schema,
        runner.max_rows,
        runner.timeout_seconds,
        runner.enforce_wall_clock,
    )


def context_fingerprint(context: "ExecutionContext") -> str:
    """Identity of the chunk-independent execution inputs."""
    return fingerprint(
        context.camera,
        context.fps,
        context.detector_config,
        context.tracker_config,
        context.metadata,
        context.detector_seed,
    )


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ChunkResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """Counters plus hit rate, for benchmark tables and logs."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": round(self.hit_rate, 3)}


class ChunkResultCache:
    """LRU cache from (chunk, runner, context) identity to sandbox output rows.

    Rows are copied on the way in and on the way out so callers can mutate
    their tables without corrupting cached entries.  ``max_entries`` bounds
    memory; the least recently used entry is evicted first.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, tuple[dict[str, Any], ...]] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def key_for(self, runner: "SandboxRunner", chunk: "Chunk",
                context: "ExecutionContext") -> str:
        """Cache key of one chunk execution."""
        return fingerprint(chunk_fingerprint(chunk), runner_fingerprint(runner),
                           context_fingerprint(context))

    def get(self, key: str) -> ChunkRows | None:
        """Rows cached under ``key`` (a fresh copy), or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return [dict(row) for row in entry]

    def put(self, key: str, rows: ChunkRows) -> None:
        """Store the rows of one chunk execution under ``key``."""
        self._entries[key] = tuple(dict(row) for row in rows)
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counters are kept; use ``reset_stats`` for those)."""
        self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        self.stats = CacheStats()
