"""Memoization of per-chunk sandbox outputs (memory, disk, and tiered).

Chunk processing is the dominant cost of every query, and it is a pure
function of the chunk's identity and the processing configuration: the same
(camera footage, chunk interval, mask, region, sample period) processed by the
same (executable, schema, max_rows, timeout) always yields the same rows,
because the sandbox builds a fresh executable instance and a freshly seeded
detector per chunk.  What-if sweeps (Fig. 6/7), repeated noise re-evaluations,
and overlapping query windows therefore re-process identical chunks over and
over; these stores memoize those executions so only genuinely new
(chunk, configuration) pairs ever reach an execution engine.

Three stores are provided, selectable on ``PrividSystem`` via ``cache=``
(an instance or a spec string, see :func:`create_cache`):

* :class:`ChunkResultCache` (``"memory"``) — the in-process LRU hot tier;
* :class:`DiskChunkStore` (``"disk:PATH"``) — fingerprint-named binary
  columnar entry files under a directory (memory-mapped on the hit path;
  legacy JSON entries still read, and migrate to binary as they are hit),
  shared across ``PrividSystem`` instances *and* processes; keys embed the
  footage's stable content fingerprint
  (``SyntheticVideo.content_fingerprint``), so mutated footage can never hit
  a stale entry;
* :class:`TieredChunkCache` (``"tiered:PATH"``) — memory in front of disk,
  promoting disk hits into the hot tier.

Disk-backed stores are also the sharing substrate of sharded execution:
:func:`shared_spec` reduces a store to the spec string of its cross-process
portion, which the sharded engine ships to its executor shards so every
shard reads and extends the same warm directory
(:meth:`repro.core.remote.ShardedEngine.share_store`).

No store ever affects privacy accounting — budgets are charged per release
by the executor regardless of whether the rows came from a cache — and they
hold only intermediate rows that never leave the system un-noised.
"""

from __future__ import annotations

import hashlib
import heapq
import json
import mmap
import os
import struct
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass
from itertools import chain
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.faults import FaultInjector
    from repro.sandbox.environment import ExecutionContext, SandboxRunner
    from repro.video.chunking import Chunk

from repro.core.engine import ChunkRows
from repro.core.faults import FaultKind


def canonical_value(value: Any) -> Any:
    """Reduce a configuration value to a stable, hashable-repr structure.

    Handles the value shapes that appear in executable/detector/tracker
    configurations: scalars, enums, (nested) sequences and mappings, and
    dataclasses.  Callables are identified by qualified name (their identity
    in a registry), anything else by ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, Enum):
        return (type(value).__name__, value.value)
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,
                tuple((spec.name, canonical_value(getattr(value, spec.name)))
                      for spec in fields(value)))
    if isinstance(value, Mapping):
        return tuple(sorted((str(key), canonical_value(item))
                            for key, item in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [canonical_value(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return tuple(items)
    if callable(value):
        return getattr(value, "__qualname__", repr(value))
    return repr(value)


def fingerprint(*parts: Any) -> str:
    """Stable hex digest of a sequence of canonicalized configuration parts."""
    canonical = repr(tuple(canonical_value(part) for part in parts))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def chunk_fingerprint(chunk: "Chunk") -> str:
    """Identity of one chunk's *visible content*.

    Footage is identified by the video's name and its stable content
    fingerprint — a digest of the ground-truth scene itself, identical
    across processes for identical footage and changed by any mutation
    (``SyntheticVideo.content_fingerprint``), which keeps distinct footage
    objects with equal names from colliding when a cache is shared and is
    the invalidation story for the on-disk store — plus everything that
    restricts what the executable can see: the interval, the mask, the
    spatial region, and the frame sampling period.  Footage objects without
    a content fingerprint fall back to the session-unique ``content_token``
    (entries for those are only valid within one process).
    """
    footage_fingerprint = getattr(chunk.video, "content_fingerprint", None)
    footage_identity: Any = (footage_fingerprint() if callable(footage_fingerprint)
                             else getattr(chunk.video, "content_token", 0))
    return fingerprint(
        chunk.video.name,
        footage_identity,
        chunk.video.fps,
        chunk.video.duration,
        chunk.index,
        (chunk.interval.start, chunk.interval.end),
        chunk.mask,
        chunk.region,
        chunk.sample_period,
    )


def runner_fingerprint(runner: "SandboxRunner") -> str:
    """Identity of the processing configuration applied to every chunk."""
    executable = runner.executable
    return fingerprint(
        getattr(executable, "name", type(executable).__name__),
        executable.config_fingerprint(),
        runner.schema,
        runner.max_rows,
        runner.timeout_seconds,
        runner.enforce_wall_clock,
    )


def context_fingerprint(context: "ExecutionContext") -> str:
    """Identity of the chunk-independent execution inputs."""
    return fingerprint(
        context.camera,
        context.fps,
        context.detector_config,
        context.tracker_config,
        context.metadata,
        context.detector_seed,
    )


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ChunkResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """Counters plus hit rate, for benchmark tables and logs."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": round(self.hit_rate, 3)}


def chunk_key(runner: "SandboxRunner", chunk: "Chunk",
              context: "ExecutionContext") -> str:
    """Cache key of one chunk execution, shared by every store tier."""
    return fingerprint(chunk_fingerprint(chunk), runner_fingerprint(runner),
                       context_fingerprint(context))


class ChunkResultCache:
    """LRU cache from (chunk, runner, context) identity to sandbox output rows.

    Rows are copied on the way in and on the way out so callers can mutate
    their tables without corrupting cached entries.  ``max_entries`` bounds
    memory; eviction is true LRU — a ``get`` refreshes the entry's recency
    (move-to-end), so a hot key survives any number of cold inserts.
    Thread-safe: a service deployment shares one memory tier across
    concurrent query threads, and LRU reordering during a concurrent insert
    would otherwise corrupt the OrderedDict.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, tuple[dict[str, Any], ...]] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def key_for(self, runner: "SandboxRunner", chunk: "Chunk",
                context: "ExecutionContext") -> str:
        """Cache key of one chunk execution."""
        return chunk_key(runner, chunk, context)

    def get(self, key: str) -> ChunkRows | None:
        """Rows cached under ``key`` (a fresh copy), or None on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
        return [dict(row) for row in entry]

    def put(self, key: str, rows: ChunkRows) -> None:
        """Store the rows of one chunk execution under ``key``."""
        entry = tuple(dict(row) for row in rows)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def promote(self, key: str, rows: ChunkRows) -> None:
        """Adopt rows already persisted elsewhere (this *is* the hot tier)."""
        self.put(key, rows)

    def clear(self) -> None:
        """Drop every entry (counters are kept; use ``reset_stats`` for those)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self.stats = CacheStats()

    def stats_dict(self) -> dict[str, Any]:
        """Counters plus the live entry count, for ``PrividSystem.cache_stats``."""
        with self._lock:
            return {**self.stats.as_dict(), "entries": len(self._entries)}

    def health(self) -> dict[str, Any]:
        """Liveness snapshot of the memory tier (always writable)."""
        with self._lock:
            return {"tier": "memory", "writable": True,
                    "entries": len(self._entries)}


#: On-disk JSON entry format version; bump on any change to the
#: serialization so stores written by older code read as misses instead of
#: wrong rows.  JSON is the *legacy* write format (and the fallback for rows
#: the columnar codec cannot represent exactly); new entries are written in
#: the binary columnar format below.
_DISK_FORMAT = 1

# --------------------------------------------------- binary columnar entries
#
# One chunk's rows as an npz-style single file: a struct-packed header, one
# descriptor per column (name, dtype tag, mask flags, buffer offset/length,
# value count), then 8-aligned dtype-tagged column buffers.  The hit path
# memory-maps the file and reads every buffer through ``np.frombuffer`` —
# no JSON (or pickle) parsing anywhere.
#
# Exactness contract: ``decode(encode(rows)) == rows`` including value
# *types* (bool vs int vs float vs str), ``None`` values, missing keys, and
# per-row key order.  Rows the codec cannot reproduce bit-for-bit (a column
# mixing ints and floats, ints beyond int64, key orders that disagree
# between rows) refuse to encode and fall back to the legacy JSON format.

#: Entry magic; the trailing digits are the binary format version.  Bump on
#: any layout change so older stores read as misses, exactly like
#: ``_DISK_FORMAT`` does for JSON entries.
_BINARY_MAGIC = b"PVCHNK02"

#: Fixed-size header: magic, column count, header size (bytes up to the end
#: of the descriptor table), row count, total file size (torn-write check).
_HEADER = struct.Struct("<8sIIQQ")

#: Per-column descriptor tail, after the length-prefixed utf-8 name:
#: dtype tag, mask flags, buffer offset, buffer length, encoded value count.
_DESCRIPTOR = struct.Struct("<BBQQQ")

#: Column dtype tags.
_TAG_FLOAT, _TAG_INT, _TAG_BOOL, _TAG_STR = 0, 1, 2, 3

#: Descriptor flag bits: the column carries a missing-key (presence) mask /
#: an explicit-``None`` mask, each stored as packed bits ahead of the values.
_FLAG_MISSING, _FLAG_NONE = 1, 2

_INT64_MIN, _INT64_MAX = -(2 ** 63), 2 ** 63 - 1

#: Below this many values a column decodes through ``struct.unpack_from``
#: instead of ``np.frombuffer`` — numpy's per-call setup (~µs) dominates
#: short columns, and typical chunk entries hold a handful of rows.
_SMALL_COLUMN_VALUES = 64

#: Entries smaller than this are read with one ``read()`` instead of
#: memory-mapping: below a few pages the mmap syscall plus page-fault cost
#: exceeds the copy it avoids.  Either way the decode is the same
#: zero-parse binary path.
_MMAP_MIN_BYTES = 1 << 14


def _column_order(rows: "list[dict[str, Any]]") -> "list[str] | None":
    """Global key order every row's key sequence is consistent with.

    Per-row key order must survive the columnar round trip (callers compare
    ``repr`` of rows).  Each row's key sequence is a chain of precedence
    constraints; any topological order of the union of those chains lists
    every row's keys as an in-order subsequence, so one exists exactly when
    the union is acyclic.  Rows with genuinely contradictory orders (``a``
    before ``b`` in one row, ``b`` before ``a`` in another) form a cycle and
    the entry falls back to JSON.  First-seen order breaks ties so uniform
    schemas keep their natural column order.
    """
    seen: dict[str, int] = {}
    successors: dict[str, set[str]] = {}
    for row in rows:
        previous = None
        for key in row:
            if type(key) is not str:
                return None
            if key not in seen:
                seen[key] = len(seen)
                successors[key] = set()
            if previous is not None:
                successors[previous].add(key)
            previous = key
    indegree = dict.fromkeys(seen, 0)
    for targets in successors.values():
        for key in targets:
            indegree[key] += 1
    ready = [(seen[key], key) for key, count in indegree.items() if not count]
    heapq.heapify(ready)
    order: list[str] = []
    while ready:
        _, key = heapq.heappop(ready)
        order.append(key)
        for target in successors[key]:
            indegree[target] -= 1
            if not indegree[target]:
                heapq.heappush(ready, (seen[target], target))
    if len(order) != len(seen):
        return None  # cyclic precedence: no single order reproduces all rows
    return order


def _encode_column(rows: "list[dict[str, Any]]", name: str
                   ) -> "tuple[int, int, int, bytes] | None":
    """One column as (tag, flags, num_values, region bytes), or None.

    The region is the column's self-contained buffer: packed presence/None
    masks (when needed), zero-padding to an 8-byte boundary, then the
    dtype-tagged values of the present-and-not-None rows.
    """
    _MISSING = object()
    raw = [row.get(name, _MISSING) for row in rows]
    present = [value is not _MISSING for value in raw]
    nones = [value is None for value in raw]
    values = [value for value in raw if value is not _MISSING and value is not None]
    flags = 0
    region = bytearray()
    if not all(present):
        flags |= _FLAG_MISSING
        region += np.packbits(np.array(present, dtype=bool)).tobytes()
    if any(nones):
        flags |= _FLAG_NONE
        region += np.packbits(np.array(nones, dtype=bool)).tobytes()
    kinds = {type(value) for value in values}
    if not kinds:
        tag, buffer = _TAG_FLOAT, b""
    elif kinds == {bool}:
        tag = _TAG_BOOL
        buffer = np.array(values, dtype=np.uint8).tobytes()
    elif kinds == {int}:
        if any(not _INT64_MIN <= value <= _INT64_MAX for value in values):
            return None
        tag = _TAG_INT
        buffer = np.array(values, dtype=np.int64).tobytes()
    elif kinds == {float}:
        tag = _TAG_FLOAT
        buffer = np.array(values, dtype=np.float64).tobytes()
    elif kinds == {str}:
        tag = _TAG_STR
        encoded = [value.encode("utf-8") for value in values]
        offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
        np.cumsum([len(piece) for piece in encoded], out=offsets[1:])
        buffer = offsets.tobytes() + b"".join(encoded)
    else:
        return None  # mixed-type column: only JSON reproduces it exactly
    if len(region) % 8:
        region += b"\x00" * (8 - len(region) % 8)
    region += buffer
    return tag, flags, len(values), bytes(region)


def encode_binary_entry(rows: "list[dict[str, Any]]") -> "bytes | None":
    """Serialize one entry's rows into the binary columnar format.

    Returns None when the rows are not representable exactly (the caller
    writes legacy JSON instead): non-dict rows, non-string or
    order-inconsistent keys, mixed-type columns, ints beyond int64.
    """
    if not all(type(row) is dict for row in rows):
        return None
    names = _column_order(rows)
    if names is None:
        return None
    columns = []
    for name in names:
        encoded = _encode_column(rows, name)
        if encoded is None:
            return None
        columns.append(encoded)
    encoded_names = [name.encode("utf-8") for name in names]
    header_size = _HEADER.size + sum(2 + len(name) + _DESCRIPTOR.size
                                     for name in encoded_names)
    data_start = header_size + (-header_size) % 8
    descriptors = bytearray()
    data = bytearray()
    for name, (tag, flags, num_values, region) in zip(encoded_names, columns):
        offset = data_start + len(data)
        descriptors += struct.pack("<H", len(name)) + name
        descriptors += _DESCRIPTOR.pack(tag, flags, offset, len(region), num_values)
        data += region
        if len(data) % 8:
            data += b"\x00" * (8 - len(data) % 8)
    file_size = data_start + len(data)
    header = _HEADER.pack(_BINARY_MAGIC, len(names), header_size,
                          len(rows), file_size)
    return header + descriptors + b"\x00" * (data_start - header_size) + data


def _decode_column(buf: "mmap.mmap | bytes", tag: int, flags: int,
                   num_rows: int, offset: int, length: int, num_values: int
                   ) -> "tuple[list[bool] | None, list[bool] | None, list[Any]]":
    """One column region back into (present flags, None flags, values)."""
    end = offset + length
    mask_bytes = (num_rows + 7) // 8
    present = nones = None
    if flags & _FLAG_MISSING:
        bits = np.frombuffer(buf, dtype=np.uint8, count=mask_bytes, offset=offset)
        present = np.unpackbits(bits, count=num_rows).astype(bool).tolist()
        offset += mask_bytes
    if flags & _FLAG_NONE:
        bits = np.frombuffer(buf, dtype=np.uint8, count=mask_bytes, offset=offset)
        nones = np.unpackbits(bits, count=num_rows).astype(bool).tolist()
        offset += mask_bytes
    offset += (-offset) % 8
    # Short columns decode through struct (numpy's per-call setup dominates
    # a handful of values); long ones through vectorized frombuffer.  Both
    # produce the same Python scalars as ``ndarray.tolist()``.
    small = num_values < _SMALL_COLUMN_VALUES
    if tag == _TAG_FLOAT:
        if end - offset < 8 * num_values:
            raise ValueError("binary entry column buffer out of bounds")
        if small:
            values = list(struct.unpack_from(f"<{num_values}d", buf, offset))
        else:
            values = np.frombuffer(buf, dtype=np.float64, count=num_values,
                                   offset=offset).tolist()
    elif tag == _TAG_INT:
        if end - offset < 8 * num_values:
            raise ValueError("binary entry column buffer out of bounds")
        if small:
            values = list(struct.unpack_from(f"<{num_values}q", buf, offset))
        else:
            values = np.frombuffer(buf, dtype=np.int64, count=num_values,
                                   offset=offset).tolist()
    elif tag == _TAG_BOOL:
        if end - offset < num_values:
            raise ValueError("binary entry column buffer out of bounds")
        if small:
            values = list(struct.unpack_from(f"<{num_values}?", buf, offset))
        else:
            values = np.frombuffer(buf, dtype=np.bool_, count=num_values,
                                   offset=offset).tolist()
    elif tag == _TAG_STR:
        table = 8 * (num_values + 1)
        if end - offset < table:
            raise ValueError("binary entry column buffer out of bounds")
        if small:
            offsets = struct.unpack_from(f"<{num_values + 1}q", buf, offset)
            bad = num_values and (
                offsets[0] != 0
                or any(offsets[i] > offsets[i + 1] for i in range(num_values))
                or offset + table + offsets[-1] > end)
        else:
            offsets = np.frombuffer(buf, dtype=np.int64, count=num_values + 1,
                                    offset=offset)
            bad = num_values and (offsets[0] != 0 or np.any(np.diff(offsets) < 0)
                                  or offset + table + int(offsets[-1]) > end)
        if bad:
            raise ValueError("binary entry string offsets out of bounds")
        blob_start = offset + table
        blob = bytes(buf[blob_start:blob_start + (int(offsets[-1]) if num_values else 0)])
        values = [blob[offsets[index]:offsets[index + 1]].decode("utf-8")
                  for index in range(num_values)]
    else:
        raise ValueError(f"unknown binary entry column tag {tag}")
    return present, nones, values


def decode_binary_entry(buf: "mmap.mmap | bytes") -> ChunkRows:
    """Deserialize a binary columnar entry back into its exact rows.

    Raises ValueError on any structural inconsistency (bad magic, torn
    write, out-of-bounds buffer) so the store's corrupt-entry self-heal path
    treats the entry as a miss.
    """
    if len(buf) < _HEADER.size:
        raise ValueError("binary entry too short for its header")
    magic, num_columns, header_size, num_rows, file_size = \
        _HEADER.unpack_from(buf, 0)
    if magic != _BINARY_MAGIC:
        raise ValueError("not a binary chunk entry")
    if file_size != len(buf) or header_size > file_size or num_columns > 65536:
        raise ValueError("binary entry header inconsistent with file size")
    rows: ChunkRows = [{} for _ in range(num_rows)]
    cursor = _HEADER.size
    for _ in range(num_columns):
        if cursor + 2 > header_size:
            raise ValueError("binary entry descriptor table overruns header")
        (name_len,) = struct.unpack_from("<H", buf, cursor)
        cursor += 2
        if cursor + name_len + _DESCRIPTOR.size > header_size:
            raise ValueError("binary entry descriptor table overruns header")
        name = bytes(buf[cursor:cursor + name_len]).decode("utf-8")
        cursor += name_len
        tag, flags, offset, length, num_values = _DESCRIPTOR.unpack_from(buf, cursor)
        cursor += _DESCRIPTOR.size
        if offset + length > file_size or num_values > num_rows:
            raise ValueError("binary entry column region out of bounds")
        present, nones, values = _decode_column(buf, tag, flags, num_rows,
                                                offset, length, num_values)
        if present is None and nones is None:
            if num_values != num_rows:
                raise ValueError("binary entry value count mismatch")
            for row, value in zip(rows, values):
                row[name] = value
            continue
        values_iter = iter(values)
        count = 0
        for index, row in enumerate(rows):
            if present is not None and not present[index]:
                continue
            if nones is not None and nones[index]:
                row[name] = None
                continue
            row[name] = next(values_iter, None)
            count += 1
        if count != num_values:
            raise ValueError("binary entry value count mismatch")
    return rows


def _read_json_entry(path: Path) -> ChunkRows:
    """Parse one legacy JSON entry (the only JSON parse in the store).

    Kept as a dedicated seam so tests can assert the warm binary hit path
    never reaches it (the no-json-load hook).
    """
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or payload.get("format") != _DISK_FORMAT:
        raise ValueError("unknown disk store format")
    return [dict(row) for row in payload["rows"]]


def _read_binary_entry(path: Path) -> ChunkRows:
    """Decode one binary entry (the zero-parse hit path).

    Entries below :data:`_MMAP_MIN_BYTES` are read whole; larger ones are
    memory-mapped so only the touched pages fault in.  Both routes feed the
    same :func:`decode_binary_entry`.
    """
    with open(path, "rb") as handle:
        size = os.fstat(handle.fileno()).st_size
        if size == 0:
            raise ValueError("empty binary entry")
        if size < _MMAP_MIN_BYTES:
            return decode_binary_entry(handle.read())
        mapped = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        try:
            return decode_binary_entry(mapped)
        finally:
            mapped.close()


class DiskChunkStore:
    """On-disk chunk result store: one fingerprint-named file per entry.

    The cold tier of the tiered cache, and a valid store on its own.  Because
    keys embed the footage's *stable* content fingerprint (not the
    session-unique token), a directory can be shared across ``PrividSystem``
    instances, processes and sessions: identical footage and configuration
    hash to the same file everywhere, while any footage mutation changes the
    fingerprint so stale entries simply stop being addressed.  Writes go
    through a temp file plus :func:`os.replace`, so concurrent readers and
    writers only ever observe complete entries.  Entries are sharded into
    256 subdirectories by key prefix to keep directory listings sane at
    millions of chunks.

    Entries are written in the binary columnar format (``KEY.bin``, see
    :func:`encode_binary_entry`) and memory-mapped on the hit path, so a
    warm hit pays zero JSON parsing; rows the codec cannot reproduce exactly
    — and every store with ``entry_format="json"`` — use the legacy JSON
    format (``KEY.json``) instead.  Both formats are read, counted, swept
    and self-healed identically, and a legacy JSON hit is migrated in place
    to binary (``migrations``), so warm directories survive the upgrade and
    converge to the new format as they are read.

    Unreadable or corrupt entries read as misses and are removed; write-side
    IO errors (ENOSPC, permission flips, a yanked mount) are *non-fatal* —
    the entry simply is not cached (counted in ``write_errors``), because a
    failing cold tier must degrade a deployment's hit rate, never its
    queries.  Temp files stranded by an interrupted writer are swept on
    store open — but only once they are old enough (``_STALE_TEMP_AGE``)
    that no live writer can own them, because several processes
    (coordinator, every shard daemon) open stores over the same directory
    while others are mid-write.
    """

    _STALE_TEMP_AGE = 60.0  # seconds; in-flight writes live for milliseconds

    #: Entry filename suffixes, one per on-disk format.
    _FORMATS = ("bin", "json")

    def __init__(self, directory: str | os.PathLike[str], *,
                 entry_format: str = "binary",
                 fault_injector: "FaultInjector | None" = None) -> None:
        if entry_format not in ("binary", "json"):
            raise ValueError(f"unknown entry format {entry_format!r}; "
                             "expected 'binary' or 'json'")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.entry_format = entry_format
        self.stats = CacheStats()
        self.writes = 0
        self.write_errors = 0
        self.read_errors = 0
        #: Legacy JSON entries parsed (each one is migrated to binary on the
        #: way out, so a warm directory converges to zero of these).
        self.legacy_json_reads = 0
        #: Legacy JSON entries rewritten as binary after a hit.
        self.migrations = 0
        self.fault_injector = fault_injector
        self.stale_temps_removed = self._sweep_stale_temps()

    def _sweep_stale_temps(self) -> int:
        """Remove temp files a crashed/interrupted writer left behind.

        Age-gated: a fresh temp file belongs to a concurrent writer in
        another process (shard daemons share this directory), and unlinking
        it would turn that writer's atomic rename into a silently dropped
        entry.
        """
        removed = 0
        horizon = time.time() - self._STALE_TEMP_AGE
        for stale in chain(self.directory.glob("*.tmp"),
                           self.directory.glob("*/*.tmp")):
            try:
                if stale.stat().st_mtime <= horizon:
                    stale.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def set_fault_injector(self, injector: "FaultInjector | None") -> None:
        """Route subsequent store operations through a fault plan (chaos)."""
        self.fault_injector = injector

    def _entry_paths(self):
        """Every stored entry, whichever format it was written in."""
        return chain.from_iterable(self.directory.glob(f"*/*.{suffix}")
                                   for suffix in self._FORMATS)

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_paths())

    def key_for(self, runner: "SandboxRunner", chunk: "Chunk",
                context: "ExecutionContext") -> str:
        """Cache key of one chunk execution (same scheme as every tier)."""
        return chunk_key(runner, chunk, context)

    def _path_for(self, key: str, suffix: str = "bin") -> Path:
        return self.directory / key[:2] / f"{key}.{suffix}"

    def _migrate_entry(self, key: str, rows: ChunkRows, json_path: Path) -> None:
        """Rewrite a legacy JSON hit as a binary entry (best-effort).

        The migration is an optimization, not a correctness step: any IO
        error leaves the JSON entry in place to be retried (or re-migrated)
        on the next hit.  The JSON file is removed only after the binary
        entry landed, so a reader always finds one complete entry.
        """
        encoded = encode_binary_entry(rows)
        if encoded is None:
            return
        if self._write_entry(self._path_for(key), encoded):
            self.migrations += 1
            try:
                os.unlink(json_path)
            except OSError:
                pass

    def get(self, key: str) -> ChunkRows | None:
        """Rows stored under ``key``, or None on a miss (or corrupt entry)."""
        path = self._path_for(key)
        json_path = self._path_for(key, "json")
        rule = self.fault_injector.poll("store.get", token=key) \
            if self.fault_injector is not None else None
        legacy = False
        try:
            if rule is not None:
                if rule.kind is FaultKind.DELAY:
                    time.sleep(rule.delay)
                elif rule.kind is FaultKind.IO_ERROR:
                    raise OSError(f"injected store read failure for {key[:12]}")
                elif rule.kind is FaultKind.CORRUPT:
                    # Scribble over the entry so the genuine corrupt-entry
                    # self-heal path below runs against real bytes.
                    if path.exists():
                        path.write_bytes(b"\x00corrupt")
                    elif json_path.exists():
                        json_path.write_bytes(b"\x00corrupt")
            try:
                rows = _read_binary_entry(path)
            except FileNotFoundError:
                legacy = True
                rows = _read_json_entry(json_path)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # A torn or foreign file: treat as a miss and drop it so the slot
            # can be rewritten cleanly.
            self.read_errors += 1
            for stale in (json_path, path) if legacy else (path,):
                try:
                    os.unlink(stale)
                except OSError:
                    pass
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        if legacy:
            # A warm directory written before the binary format: serve the
            # rows, then migrate the entry so the next hit is parse-free.
            # JSON-format stores leave their entries alone — for them JSON
            # is the configured format, not a legacy leftover.
            self.legacy_json_reads += 1
            if self.entry_format == "binary":
                self._migrate_entry(key, rows, json_path)
        return rows

    def _write_entry(self, path: Path, data: bytes) -> bool:
        """Atomically land one serialized entry at ``path`` (temp+replace).

        Returns False (and counts ``write_errors``) on IO failure: ENOSPC,
        EACCES, a vanished directory — non-fatal, the entry just stays cold
        and the next miss recomputes it.
        """
        handle = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = tempfile.NamedTemporaryFile(
                "wb", dir=path.parent, suffix=".tmp", delete=False)
            with handle:
                handle.write(data)
            os.replace(handle.name, path)
        except BaseException as exc:
            if handle is not None:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
            if isinstance(exc, OSError):
                self.write_errors += 1
                return False
            raise
        return True

    def put(self, key: str, rows: ChunkRows) -> None:
        """Persist the rows of one chunk execution under ``key`` (atomic).

        Binary-format stores encode the rows columnar; rows the codec cannot
        reproduce exactly (and every ``entry_format="json"`` store) are
        written as legacy JSON.  Whichever format lands, the other format's
        file for the same key is removed so a reader never finds a stale
        twin.  IO errors are swallowed and counted (``write_errors``): a
        store that cannot write behaves as a cache that never warms, not as
        a query failure.  Serialization bugs (non-JSON rows) still raise —
        those are programming errors, not environment faults.
        """
        rule = self.fault_injector.poll("store.put", token=key) \
            if self.fault_injector is not None else None
        if rule is not None and rule.kind is FaultKind.DELAY:
            time.sleep(rule.delay)
        if not isinstance(rows, list):
            # ColumnarRows (and any other sequence) serialize as the
            # equivalent dict rows.
            rows = [dict(row) for row in rows]
        encoded = encode_binary_entry(rows) if self.entry_format == "binary" \
            else None
        if encoded is not None:
            data, path = encoded, self._path_for(key)
            stale = self._path_for(key, "json")
        else:
            payload = {"format": _DISK_FORMAT, "rows": rows}
            data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            path, stale = self._path_for(key, "json"), self._path_for(key)
        if rule is not None and rule.kind is FaultKind.IO_ERROR:
            self.write_errors += 1
            return
        if self._write_entry(path, data):
            self.writes += 1
            try:
                os.unlink(stale)
            except OSError:
                pass

    def promote(self, key: str, rows: ChunkRows) -> None:
        """No-op: ``promote`` adopts rows a shard already wrote through to
        this very directory, so writing them again would only duplicate the
        atomic rename."""

    def clear(self) -> None:
        """Remove every stored entry, whichever format (counters are kept)."""
        for entry in self._entry_paths():
            try:
                entry.unlink()
            except OSError:
                pass

    def reset_stats(self) -> None:
        """Zero the hit/miss/write/error counters."""
        self.stats = CacheStats()
        self.writes = 0
        self.write_errors = 0
        self.read_errors = 0
        self.legacy_json_reads = 0
        self.migrations = 0

    def stats_dict(self) -> dict[str, Any]:
        """Counters plus write count and directory, for stats reporting."""
        stats = self.stats.as_dict()
        stats.pop("evictions", None)  # the disk tier never evicts
        return {**stats, "writes": self.writes,
                "write_errors": self.write_errors,
                "read_errors": self.read_errors,
                "legacy_json_reads": self.legacy_json_reads,
                "migrations": self.migrations,
                "entry_format": self.entry_format,
                "directory": str(self.directory)}

    def health(self) -> dict[str, Any]:
        """Liveness snapshot of the disk tier, for ``service.health()``."""
        writable = os.access(self.directory, os.W_OK | os.X_OK)
        return {"tier": "disk", "directory": str(self.directory),
                "writable": writable,
                "entry_format": self.entry_format,
                "write_errors": self.write_errors,
                "read_errors": self.read_errors,
                "stale_temps_removed": self.stale_temps_removed}


class TieredChunkCache:
    """Memory tier in front of a disk tier, sharing one fingerprint keyspace.

    ``get`` consults memory first and promotes disk hits into memory, so a
    warm working set is served at in-process LRU speed while the full
    history persists on disk; ``put`` writes through to both tiers.  The
    memory tier bounds residency (LRU eviction), the disk tier is the
    shared, durable record — the standard hot/cold split for this workload
    shape.
    """

    def __init__(self, memory: ChunkResultCache | None = None,
                 disk: DiskChunkStore | str | os.PathLike[str] = "privid-chunk-cache",
                 *, entry_format: str = "binary") -> None:
        self.memory = memory if memory is not None else ChunkResultCache()
        self.disk = disk if isinstance(disk, DiskChunkStore) \
            else DiskChunkStore(disk, entry_format=entry_format)

    def __len__(self) -> int:
        return len(self.memory)

    def key_for(self, runner: "SandboxRunner", chunk: "Chunk",
                context: "ExecutionContext") -> str:
        """Cache key of one chunk execution (same scheme as every tier)."""
        return chunk_key(runner, chunk, context)

    def set_fault_injector(self, injector: "FaultInjector | None") -> None:
        """Route the disk tier's operations through a fault plan (chaos)."""
        self.disk.set_fault_injector(injector)

    def health(self) -> dict[str, Any]:
        """Per-tier liveness; the tiered store is writable iff disk is."""
        disk = self.disk.health()
        return {"tier": "tiered", "writable": disk["writable"],
                "memory": self.memory.health(), "disk": disk}

    def get(self, key: str) -> ChunkRows | None:
        """Rows under ``key`` from the first tier that has them, or None."""
        rows = self.memory.get(key)
        if rows is not None:
            return rows
        rows = self.disk.get(key)
        if rows is not None:
            self.memory.put(key, rows)
        return rows

    def put(self, key: str, rows: ChunkRows) -> None:
        """Write the rows of one chunk execution through to both tiers."""
        self.memory.put(key, rows)
        self.disk.put(key, rows)

    def promote(self, key: str, rows: ChunkRows) -> None:
        """Adopt rows already persisted in the shared disk tier (e.g. by a
        sharded engine's write-through): hot-tier insert only, no second
        disk write."""
        self.memory.put(key, rows)

    def clear(self) -> None:
        """Drop every entry from both tiers."""
        self.memory.clear()
        self.disk.clear()

    def reset_stats(self) -> None:
        """Zero the counters of both tiers."""
        self.memory.reset_stats()
        self.disk.reset_stats()

    def stats_dict(self) -> dict[str, Any]:
        """Combined counters plus per-tier sub-stats.

        The top-level hits/misses describe the tiered store as one cache: a
        lookup is a hit if *either* tier served it, a miss only if both
        missed (every lookup starts at the memory tier, so memory lookups
        count the total).
        """
        memory = self.memory.stats_dict()
        disk = self.disk.stats_dict()
        hits = self.memory.stats.hits + self.disk.stats.hits
        lookups = self.memory.stats.lookups
        return {
            "hits": hits,
            "misses": lookups - hits,
            "hit_rate": round(hits / lookups, 3) if lookups else 0.0,
            "memory": memory,
            "disk": disk,
        }


#: Duck type accepted everywhere a chunk result cache is expected.
ChunkStore = ChunkResultCache | DiskChunkStore | TieredChunkCache


def shared_spec(store: "ChunkStore | None") -> str | None:
    """The spec string of a store's *cross-process shareable* portion.

    Reduces a store instance to the spec another process could open to see
    the same entries: a :class:`DiskChunkStore` (or the disk tier of a
    :class:`TieredChunkCache`) is addressed by its directory, so it reduces
    to ``"disk:DIR"`` / ``"tiered:DIR"``; a pure in-memory
    :class:`ChunkResultCache` lives in one process only and reduces to None.
    This is how the sharded engine points its executor shards at the store
    warm entries should be shared through
    (:meth:`repro.core.remote.ShardedEngine.share_store`): every shard gets
    its own handle — for a tiered spec its own memory LRU — over the same
    disk directory, the stand-in for shared storage across hosts.
    """
    if isinstance(store, DiskChunkStore):
        return f"{_format_spec('disk', store)}:{store.directory}"
    if isinstance(store, TieredChunkCache):
        return f"{_format_spec('tiered', store.disk)}:{store.disk.directory}"
    return None


def _format_spec(kind: str, disk: DiskChunkStore) -> str:
    """The spec kind token carrying a store's entry format.

    The default (binary) format stays the bare ``disk``/``tiered`` token so
    existing spec strings keep meaning what they meant; a JSON-format store
    reduces to ``disk+json``/``tiered+json`` so shard daemons opening the
    spec write the same entries the coordinator does.
    """
    return kind if disk.entry_format == "binary" else f"{kind}+{disk.entry_format}"


def store_health(store: "ChunkStore | None") -> dict[str, Any]:
    """Health snapshot of any store (``{"enabled": False}`` when off).

    The store half of :meth:`repro.service.QueryService.health`: stores that
    implement ``health()`` report their tier detail; anything else (a
    third-party duck-typed store) reports enabled-and-assumed-writable.
    """
    if store is None:
        return {"enabled": False}
    health = getattr(store, "health", None)
    if health is None:
        return {"enabled": True, "writable": True,
                "tier": type(store).__name__}
    return {"enabled": True, **health()}


def create_cache(spec: "str | ChunkStore | None") -> "ChunkStore | None":
    """Build a chunk result store from a spec string.

    ``None``, ``"off"`` and ``"none"`` disable caching; ``"memory"`` is the
    in-process LRU cache; ``"disk:PATH"`` the shared on-disk store;
    ``"tiered:PATH"`` memory in front of disk.  The disk-backed kinds accept
    an entry-format token (``"disk+json:PATH"``, ``"tiered+binary:PATH"``);
    the bare kind means the binary default.  A store instance passes through
    unchanged.  This is the value of the ``cache=`` argument of
    ``PrividSystem`` and of the ``PRIVID_CACHE`` benchmark knob.
    """
    if spec is None:
        return None
    if not isinstance(spec, str):
        return spec
    text = spec.strip()
    lowered = text.lower()
    if lowered in ("", "off", "none"):
        return None
    if lowered == "memory":
        return ChunkResultCache()
    kind, _, path = text.partition(":")
    kind, _, entry_format = kind.lower().partition("+")
    entry_format = entry_format or "binary"
    if kind in ("disk", "tiered") and entry_format not in ("binary", "json"):
        raise ValueError(f"cache spec {spec!r} has an unknown entry format "
                         f"{entry_format!r}; expected 'binary' or 'json'")
    if kind in ("disk", "tiered") and not path:
        raise ValueError(f"cache spec {spec!r} needs a directory: '{kind}:PATH'")
    if kind == "disk":
        return DiskChunkStore(path, entry_format=entry_format)
    if kind == "tiered":
        return TieredChunkCache(disk=path, entry_format=entry_format)
    raise ValueError(f"unknown cache spec {spec!r}; "
                     "expected 'off', 'memory', 'disk:PATH' or 'tiered:PATH'")
