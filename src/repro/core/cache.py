"""Memoization of per-chunk sandbox outputs (memory, disk, and tiered).

Chunk processing is the dominant cost of every query, and it is a pure
function of the chunk's identity and the processing configuration: the same
(camera footage, chunk interval, mask, region, sample period) processed by the
same (executable, schema, max_rows, timeout) always yields the same rows,
because the sandbox builds a fresh executable instance and a freshly seeded
detector per chunk.  What-if sweeps (Fig. 6/7), repeated noise re-evaluations,
and overlapping query windows therefore re-process identical chunks over and
over; these stores memoize those executions so only genuinely new
(chunk, configuration) pairs ever reach an execution engine.

Three stores are provided, selectable on ``PrividSystem`` via ``cache=``
(an instance or a spec string, see :func:`create_cache`):

* :class:`ChunkResultCache` (``"memory"``) — the in-process LRU hot tier;
* :class:`DiskChunkStore` (``"disk:PATH"``) — fingerprint-named JSON files
  under a directory, shared across ``PrividSystem`` instances *and*
  processes; keys embed the footage's stable content fingerprint
  (``SyntheticVideo.content_fingerprint``), so mutated footage can never hit
  a stale entry;
* :class:`TieredChunkCache` (``"tiered:PATH"``) — memory in front of disk,
  promoting disk hits into the hot tier.

Disk-backed stores are also the sharing substrate of sharded execution:
:func:`shared_spec` reduces a store to the spec string of its cross-process
portion, which the sharded engine ships to its executor shards so every
shard reads and extends the same warm directory
(:meth:`repro.core.remote.ShardedEngine.share_store`).

No store ever affects privacy accounting — budgets are charged per release
by the executor regardless of whether the rows came from a cache — and they
hold only intermediate rows that never leave the system un-noised.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, fields, is_dataclass
from itertools import chain
from enum import Enum
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.faults import FaultInjector
    from repro.sandbox.environment import ExecutionContext, SandboxRunner
    from repro.video.chunking import Chunk

from repro.core.engine import ChunkRows
from repro.core.faults import FaultKind


def canonical_value(value: Any) -> Any:
    """Reduce a configuration value to a stable, hashable-repr structure.

    Handles the value shapes that appear in executable/detector/tracker
    configurations: scalars, enums, (nested) sequences and mappings, and
    dataclasses.  Callables are identified by qualified name (their identity
    in a registry), anything else by ``repr``.
    """
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, Enum):
        return (type(value).__name__, value.value)
    if is_dataclass(value) and not isinstance(value, type):
        return (type(value).__name__,
                tuple((spec.name, canonical_value(getattr(value, spec.name)))
                      for spec in fields(value)))
    if isinstance(value, Mapping):
        return tuple(sorted((str(key), canonical_value(item))
                            for key, item in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [canonical_value(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return tuple(items)
    if callable(value):
        return getattr(value, "__qualname__", repr(value))
    return repr(value)


def fingerprint(*parts: Any) -> str:
    """Stable hex digest of a sequence of canonicalized configuration parts."""
    canonical = repr(tuple(canonical_value(part) for part in parts))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def chunk_fingerprint(chunk: "Chunk") -> str:
    """Identity of one chunk's *visible content*.

    Footage is identified by the video's name and its stable content
    fingerprint — a digest of the ground-truth scene itself, identical
    across processes for identical footage and changed by any mutation
    (``SyntheticVideo.content_fingerprint``), which keeps distinct footage
    objects with equal names from colliding when a cache is shared and is
    the invalidation story for the on-disk store — plus everything that
    restricts what the executable can see: the interval, the mask, the
    spatial region, and the frame sampling period.  Footage objects without
    a content fingerprint fall back to the session-unique ``content_token``
    (entries for those are only valid within one process).
    """
    footage_fingerprint = getattr(chunk.video, "content_fingerprint", None)
    footage_identity: Any = (footage_fingerprint() if callable(footage_fingerprint)
                             else getattr(chunk.video, "content_token", 0))
    return fingerprint(
        chunk.video.name,
        footage_identity,
        chunk.video.fps,
        chunk.video.duration,
        chunk.index,
        (chunk.interval.start, chunk.interval.end),
        chunk.mask,
        chunk.region,
        chunk.sample_period,
    )


def runner_fingerprint(runner: "SandboxRunner") -> str:
    """Identity of the processing configuration applied to every chunk."""
    executable = runner.executable
    return fingerprint(
        getattr(executable, "name", type(executable).__name__),
        executable.config_fingerprint(),
        runner.schema,
        runner.max_rows,
        runner.timeout_seconds,
        runner.enforce_wall_clock,
    )


def context_fingerprint(context: "ExecutionContext") -> str:
    """Identity of the chunk-independent execution inputs."""
    return fingerprint(
        context.camera,
        context.fps,
        context.detector_config,
        context.tracker_config,
        context.metadata,
        context.detector_seed,
    )


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one :class:`ChunkResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of cache lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, float]:
        """Counters plus hit rate, for benchmark tables and logs."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "hit_rate": round(self.hit_rate, 3)}


def chunk_key(runner: "SandboxRunner", chunk: "Chunk",
              context: "ExecutionContext") -> str:
    """Cache key of one chunk execution, shared by every store tier."""
    return fingerprint(chunk_fingerprint(chunk), runner_fingerprint(runner),
                       context_fingerprint(context))


class ChunkResultCache:
    """LRU cache from (chunk, runner, context) identity to sandbox output rows.

    Rows are copied on the way in and on the way out so callers can mutate
    their tables without corrupting cached entries.  ``max_entries`` bounds
    memory; eviction is true LRU — a ``get`` refreshes the entry's recency
    (move-to-end), so a hot key survives any number of cold inserts.
    Thread-safe: a service deployment shares one memory tier across
    concurrent query threads, and LRU reordering during a concurrent insert
    would otherwise corrupt the OrderedDict.
    """

    def __init__(self, max_entries: int = 100_000) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self._entries: OrderedDict[str, tuple[dict[str, Any], ...]] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def key_for(self, runner: "SandboxRunner", chunk: "Chunk",
                context: "ExecutionContext") -> str:
        """Cache key of one chunk execution."""
        return chunk_key(runner, chunk, context)

    def get(self, key: str) -> ChunkRows | None:
        """Rows cached under ``key`` (a fresh copy), or None on a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
        return [dict(row) for row in entry]

    def put(self, key: str, rows: ChunkRows) -> None:
        """Store the rows of one chunk execution under ``key``."""
        entry = tuple(dict(row) for row in rows)
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def promote(self, key: str, rows: ChunkRows) -> None:
        """Adopt rows already persisted elsewhere (this *is* the hot tier)."""
        self.put(key, rows)

    def clear(self) -> None:
        """Drop every entry (counters are kept; use ``reset_stats`` for those)."""
        with self._lock:
            self._entries.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters."""
        with self._lock:
            self.stats = CacheStats()

    def stats_dict(self) -> dict[str, Any]:
        """Counters plus the live entry count, for ``PrividSystem.cache_stats``."""
        with self._lock:
            return {**self.stats.as_dict(), "entries": len(self._entries)}

    def health(self) -> dict[str, Any]:
        """Liveness snapshot of the memory tier (always writable)."""
        with self._lock:
            return {"tier": "memory", "writable": True,
                    "entries": len(self._entries)}


#: On-disk entry format version; bump on any change to the serialization so
#: stores written by older code read as misses instead of wrong rows.
_DISK_FORMAT = 1


class DiskChunkStore:
    """On-disk chunk result store: one fingerprint-named JSON file per entry.

    The cold tier of the tiered cache, and a valid store on its own.  Because
    keys embed the footage's *stable* content fingerprint (not the
    session-unique token), a directory can be shared across ``PrividSystem``
    instances, processes and sessions: identical footage and configuration
    hash to the same file everywhere, while any footage mutation changes the
    fingerprint so stale entries simply stop being addressed.  Writes go
    through a temp file plus :func:`os.replace`, so concurrent readers and
    writers only ever observe complete entries.  Entries are sharded into
    256 subdirectories by key prefix to keep directory listings sane at
    millions of chunks.

    Rows must be JSON-serializable, which schema-coerced sandbox rows are by
    construction (strings and numbers only).  Unreadable or corrupt entries
    read as misses and are removed; write-side IO errors (ENOSPC, permission
    flips, a yanked mount) are *non-fatal* — the entry simply is not cached
    (counted in ``write_errors``), because a failing cold tier must degrade
    a deployment's hit rate, never its queries.  Temp files stranded by an
    interrupted writer are swept on store open — but only once they are old
    enough (``_STALE_TEMP_AGE``) that no live writer can own them, because
    several processes (coordinator, every shard daemon) open stores over the
    same directory while others are mid-write.
    """

    _STALE_TEMP_AGE = 60.0  # seconds; in-flight writes live for milliseconds

    def __init__(self, directory: str | os.PathLike[str], *,
                 fault_injector: "FaultInjector | None" = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()
        self.writes = 0
        self.write_errors = 0
        self.read_errors = 0
        self.fault_injector = fault_injector
        self.stale_temps_removed = self._sweep_stale_temps()

    def _sweep_stale_temps(self) -> int:
        """Remove temp files a crashed/interrupted writer left behind.

        Age-gated: a fresh temp file belongs to a concurrent writer in
        another process (shard daemons share this directory), and unlinking
        it would turn that writer's atomic rename into a silently dropped
        entry.
        """
        removed = 0
        horizon = time.time() - self._STALE_TEMP_AGE
        for stale in chain(self.directory.glob("*.tmp"),
                           self.directory.glob("*/*.tmp")):
            try:
                if stale.stat().st_mtime <= horizon:
                    stale.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def set_fault_injector(self, injector: "FaultInjector | None") -> None:
        """Route subsequent store operations through a fault plan (chaos)."""
        self.fault_injector = injector

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*/*.json"))

    def key_for(self, runner: "SandboxRunner", chunk: "Chunk",
                context: "ExecutionContext") -> str:
        """Cache key of one chunk execution (same scheme as every tier)."""
        return chunk_key(runner, chunk, context)

    def _path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> ChunkRows | None:
        """Rows stored under ``key``, or None on a miss (or corrupt entry)."""
        path = self._path_for(key)
        rule = self.fault_injector.poll("store.get", token=key) \
            if self.fault_injector is not None else None
        try:
            if rule is not None:
                if rule.kind is FaultKind.DELAY:
                    time.sleep(rule.delay)
                elif rule.kind is FaultKind.IO_ERROR:
                    raise OSError(f"injected store read failure for {key[:12]}")
                elif rule.kind is FaultKind.CORRUPT and path.exists():
                    # Scribble over the entry so the genuine corrupt-entry
                    # self-heal path below runs against real bytes.
                    path.write_bytes(b"\x00corrupt")
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict) or payload.get("format") != _DISK_FORMAT:
                raise ValueError("unknown disk store format")
            rows = [dict(row) for row in payload["rows"]]
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # A torn or foreign file: treat as a miss and drop it so the slot
            # can be rewritten cleanly.
            self.read_errors += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return rows

    def put(self, key: str, rows: ChunkRows) -> None:
        """Persist the rows of one chunk execution under ``key`` (atomic).

        IO errors are swallowed and counted (``write_errors``): a store that
        cannot write behaves as a cache that never warms, not as a query
        failure.  Serialization bugs (non-JSON rows) still raise — those are
        programming errors, not environment faults.
        """
        rule = self.fault_injector.poll("store.put", token=key) \
            if self.fault_injector is not None else None
        if rule is not None and rule.kind is FaultKind.DELAY:
            time.sleep(rule.delay)
        if not isinstance(rows, list):
            # ColumnarRows (and any other sequence) serialize as the
            # equivalent dict rows.
            rows = [dict(row) for row in rows]
        payload = {"format": _DISK_FORMAT, "rows": rows}
        path = self._path_for(key)
        handle = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            if rule is not None and rule.kind is FaultKind.IO_ERROR:
                raise OSError(f"injected store write failure for {key[:12]}")
            handle = tempfile.NamedTemporaryFile(
                "w", encoding="utf-8", dir=path.parent, suffix=".tmp",
                delete=False)
            with handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(handle.name, path)
        except BaseException as exc:
            if handle is not None:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
            if isinstance(exc, OSError):
                # ENOSPC, EACCES, a vanished directory: non-fatal — the
                # entry just stays cold and the next miss recomputes it.
                self.write_errors += 1
                return
            raise
        self.writes += 1

    def promote(self, key: str, rows: ChunkRows) -> None:
        """No-op: ``promote`` adopts rows a shard already wrote through to
        this very directory, so writing them again would only duplicate the
        atomic rename."""

    def clear(self) -> None:
        """Remove every stored entry (counters are kept)."""
        for entry in self.directory.glob("*/*.json"):
            try:
                entry.unlink()
            except OSError:
                pass

    def reset_stats(self) -> None:
        """Zero the hit/miss/write/error counters."""
        self.stats = CacheStats()
        self.writes = 0
        self.write_errors = 0
        self.read_errors = 0

    def stats_dict(self) -> dict[str, Any]:
        """Counters plus write count and directory, for stats reporting."""
        stats = self.stats.as_dict()
        stats.pop("evictions", None)  # the disk tier never evicts
        return {**stats, "writes": self.writes,
                "write_errors": self.write_errors,
                "read_errors": self.read_errors,
                "directory": str(self.directory)}

    def health(self) -> dict[str, Any]:
        """Liveness snapshot of the disk tier, for ``service.health()``."""
        writable = os.access(self.directory, os.W_OK | os.X_OK)
        return {"tier": "disk", "directory": str(self.directory),
                "writable": writable,
                "write_errors": self.write_errors,
                "read_errors": self.read_errors,
                "stale_temps_removed": self.stale_temps_removed}


class TieredChunkCache:
    """Memory tier in front of a disk tier, sharing one fingerprint keyspace.

    ``get`` consults memory first and promotes disk hits into memory, so a
    warm working set is served at in-process LRU speed while the full
    history persists on disk; ``put`` writes through to both tiers.  The
    memory tier bounds residency (LRU eviction), the disk tier is the
    shared, durable record — the standard hot/cold split for this workload
    shape.
    """

    def __init__(self, memory: ChunkResultCache | None = None,
                 disk: DiskChunkStore | str | os.PathLike[str] = "privid-chunk-cache") -> None:
        self.memory = memory if memory is not None else ChunkResultCache()
        self.disk = disk if isinstance(disk, DiskChunkStore) else DiskChunkStore(disk)

    def __len__(self) -> int:
        return len(self.memory)

    def key_for(self, runner: "SandboxRunner", chunk: "Chunk",
                context: "ExecutionContext") -> str:
        """Cache key of one chunk execution (same scheme as every tier)."""
        return chunk_key(runner, chunk, context)

    def set_fault_injector(self, injector: "FaultInjector | None") -> None:
        """Route the disk tier's operations through a fault plan (chaos)."""
        self.disk.set_fault_injector(injector)

    def health(self) -> dict[str, Any]:
        """Per-tier liveness; the tiered store is writable iff disk is."""
        disk = self.disk.health()
        return {"tier": "tiered", "writable": disk["writable"],
                "memory": self.memory.health(), "disk": disk}

    def get(self, key: str) -> ChunkRows | None:
        """Rows under ``key`` from the first tier that has them, or None."""
        rows = self.memory.get(key)
        if rows is not None:
            return rows
        rows = self.disk.get(key)
        if rows is not None:
            self.memory.put(key, rows)
        return rows

    def put(self, key: str, rows: ChunkRows) -> None:
        """Write the rows of one chunk execution through to both tiers."""
        self.memory.put(key, rows)
        self.disk.put(key, rows)

    def promote(self, key: str, rows: ChunkRows) -> None:
        """Adopt rows already persisted in the shared disk tier (e.g. by a
        sharded engine's write-through): hot-tier insert only, no second
        disk write."""
        self.memory.put(key, rows)

    def clear(self) -> None:
        """Drop every entry from both tiers."""
        self.memory.clear()
        self.disk.clear()

    def reset_stats(self) -> None:
        """Zero the counters of both tiers."""
        self.memory.reset_stats()
        self.disk.reset_stats()

    def stats_dict(self) -> dict[str, Any]:
        """Combined counters plus per-tier sub-stats.

        The top-level hits/misses describe the tiered store as one cache: a
        lookup is a hit if *either* tier served it, a miss only if both
        missed (every lookup starts at the memory tier, so memory lookups
        count the total).
        """
        memory = self.memory.stats_dict()
        disk = self.disk.stats_dict()
        hits = self.memory.stats.hits + self.disk.stats.hits
        lookups = self.memory.stats.lookups
        return {
            "hits": hits,
            "misses": lookups - hits,
            "hit_rate": round(hits / lookups, 3) if lookups else 0.0,
            "memory": memory,
            "disk": disk,
        }


#: Duck type accepted everywhere a chunk result cache is expected.
ChunkStore = ChunkResultCache | DiskChunkStore | TieredChunkCache


def shared_spec(store: "ChunkStore | None") -> str | None:
    """The spec string of a store's *cross-process shareable* portion.

    Reduces a store instance to the spec another process could open to see
    the same entries: a :class:`DiskChunkStore` (or the disk tier of a
    :class:`TieredChunkCache`) is addressed by its directory, so it reduces
    to ``"disk:DIR"`` / ``"tiered:DIR"``; a pure in-memory
    :class:`ChunkResultCache` lives in one process only and reduces to None.
    This is how the sharded engine points its executor shards at the store
    warm entries should be shared through
    (:meth:`repro.core.remote.ShardedEngine.share_store`): every shard gets
    its own handle — for a tiered spec its own memory LRU — over the same
    disk directory, the stand-in for shared storage across hosts.
    """
    if isinstance(store, DiskChunkStore):
        return f"disk:{store.directory}"
    if isinstance(store, TieredChunkCache):
        return f"tiered:{store.disk.directory}"
    return None


def store_health(store: "ChunkStore | None") -> dict[str, Any]:
    """Health snapshot of any store (``{"enabled": False}`` when off).

    The store half of :meth:`repro.service.QueryService.health`: stores that
    implement ``health()`` report their tier detail; anything else (a
    third-party duck-typed store) reports enabled-and-assumed-writable.
    """
    if store is None:
        return {"enabled": False}
    health = getattr(store, "health", None)
    if health is None:
        return {"enabled": True, "writable": True,
                "tier": type(store).__name__}
    return {"enabled": True, **health()}


def create_cache(spec: "str | ChunkStore | None") -> "ChunkStore | None":
    """Build a chunk result store from a spec string.

    ``None``, ``"off"`` and ``"none"`` disable caching; ``"memory"`` is the
    in-process LRU cache; ``"disk:PATH"`` the shared on-disk store;
    ``"tiered:PATH"`` memory in front of disk.  A store instance passes
    through unchanged.  This is the value of the ``cache=`` argument of
    ``PrividSystem`` and of the ``PRIVID_CACHE`` benchmark knob.
    """
    if spec is None:
        return None
    if not isinstance(spec, str):
        return spec
    text = spec.strip()
    lowered = text.lower()
    if lowered in ("", "off", "none"):
        return None
    if lowered == "memory":
        return ChunkResultCache()
    kind, _, path = text.partition(":")
    kind = kind.lower()
    if kind in ("disk", "tiered") and not path:
        raise ValueError(f"cache spec {spec!r} needs a directory: '{kind}:PATH'")
    if kind == "disk":
        return DiskChunkStore(path)
    if kind == "tiered":
        return TieredChunkCache(disk=path)
    raise ValueError(f"unknown cache spec {spec!r}; "
                     "expected 'off', 'memory', 'disk:PATH' or 'tiered:PATH'")
