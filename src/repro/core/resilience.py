"""Self-healing primitives: retry with backoff, circuit breaking, deadlines.

The always-on deployment of :mod:`repro.service` has to survive the failures
a months-long camera installation actually sees — daemons restarting, hosts
unreachable for a while, queries wedged behind a dead shard.  This module
holds the three small mechanisms the service and the sharded engine build
their failure handling from:

* :class:`RetryPolicy` — bounded exponential backoff with *deterministic*
  jitter: the jitter of attempt ``i`` for token ``t`` is a splitmix64 draw
  (:mod:`repro.utils.hashing`), a pure function of ``(seed, token, i)``, so
  retry schedules replay bit-identically under the same fault plan instead
  of depending on a wall-clock RNG.
* :class:`CircuitBreaker` — the classic three-state breaker per endpoint:
  CLOSED until ``failure_threshold`` consecutive failures, then OPEN
  (requests refused without touching the endpoint) until ``reset_timeout``
  passes, then HALF_OPEN admitting a single probe whose outcome closes or
  re-opens the circuit.  Keeps a flapping daemon from absorbing a dial
  attempt (and its timeout) at every stream start.
* :class:`CancellationToken` — cooperative cancellation with an optional
  monotonic deadline.  Work that honours a token calls :meth:`~CancellationToken.check`
  at its natural yield points (the executor checks between chunks); a passed
  deadline raises :class:`~repro.errors.QueryTimeoutError`, a manual
  :meth:`~CancellationToken.cancel` raises
  :class:`~repro.errors.QueryCancelledError`.

All three are deliberately dependency-free and thread-safe: breakers are
shared between stream starts on different query threads, and a token is
armed by the submitting thread but checked by the pool thread running the
query.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable

from repro.errors import QueryCancelledError, QueryTimeoutError
from repro.utils.hashing import signed_draw, stream_key, string_token


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic splitmix64 jitter.

    ``delay(i)`` for attempt ``i`` (0-based, the delay *after* the i-th
    failure) is ``min(max_delay, base_delay * multiplier**i)``, scaled by
    ``1 + jitter * u`` where ``u`` is a signed draw in ``[-1, 1)`` keyed by
    ``(seed, "retry", token, i)`` — the same counter-based hashing the noise
    streams use, so two runs with the same plan sleep the same schedule.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay(self, attempt: int, token: str = "") -> float:
        """Sleep before retry ``attempt`` (0-based), jittered deterministically."""
        raw = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        if not self.jitter or not raw:
            return raw
        key = stream_key(self.seed, string_token("retry"), string_token(token))
        return max(0.0, raw * (1.0 + self.jitter * signed_draw(key, attempt)))

    def call(self, fn: Callable[[], Any], *,
             retry_on: "tuple[type[BaseException], ...]" = (OSError,),
             token: str = "",
             sleep: Callable[[float], None] = time.sleep,
             on_retry: "Callable[[int, BaseException], None] | None" = None) -> Any:
        """Invoke ``fn`` up to ``max_attempts`` times, backing off between.

        Only exceptions in ``retry_on`` are retried; the last one propagates
        once attempts are exhausted.  ``token`` keys the jitter stream (use
        the endpoint address so concurrent endpoints decorrelate);
        ``on_retry(attempt, exc)`` observes each failure before the sleep.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as exc:
                attempt += 1
                if attempt >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(self.delay(attempt - 1, token))


class BreakerState(str, Enum):
    """The three circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-endpoint circuit breaker: open after K consecutive failures.

    ``allow()`` gates an attempt: True in CLOSED, False in OPEN until
    ``reset_timeout`` has passed, at which point the breaker moves to
    HALF_OPEN and admits exactly one probe (further ``allow()`` calls return
    False until that probe reports).  ``record_success`` closes the circuit
    and zeroes the failure run; ``record_failure`` extends it — and any
    failure in HALF_OPEN re-opens immediately, restarting the reset clock.
    Thread-safe; the clock is injectable for tests.
    """

    def __init__(self, *, failure_threshold: int = 3, reset_timeout: float = 10.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self.opens = 0
        self.probes = 0

    @property
    def state(self) -> BreakerState:
        """Current state (OPEN reads as OPEN until a probe is *taken*)."""
        with self._lock:
            return self._state

    def allow(self) -> bool:
        """May an attempt proceed right now?  (Taking a HALF_OPEN probe.)"""
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                assert self._opened_at is not None
                if self._clock() - self._opened_at >= self.reset_timeout:
                    self._state = BreakerState.HALF_OPEN
                    self.probes += 1
                    return True
                return False
            # HALF_OPEN: one probe is already in flight; everyone else waits
            # for its verdict.
            return False

    def record_success(self) -> None:
        """An attempt succeeded: close the circuit, zero the failure run."""
        with self._lock:
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._opened_at = None

    def record_failure(self) -> None:
        """An attempt failed: extend the run, open at the threshold."""
        with self._lock:
            self._consecutive_failures += 1
            if (self._state is BreakerState.HALF_OPEN
                    or self._consecutive_failures >= self.failure_threshold):
                if self._state is not BreakerState.OPEN:
                    self.opens += 1
                self._state = BreakerState.OPEN
                self._opened_at = self._clock()

    def state_dict(self) -> dict[str, Any]:
        """Snapshot for ``stats()`` / ``health()`` reporting."""
        with self._lock:
            return {"state": self._state.value,
                    "consecutive_failures": self._consecutive_failures,
                    "opens": self.opens,
                    "probes": self.probes}


class CancellationToken:
    """Cooperative cancellation with an optional monotonic deadline.

    A token is shared between the thread that owns a query (which may
    :meth:`cancel` it) and the thread running it (which calls :meth:`check`
    at its yield points — the executor checks between chunks, so a stream
    stops within one chunk of the deadline).  Deadlines are armed with
    :meth:`set_timeout`; the earliest of several armed deadlines wins.
    """

    def __init__(self, *, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._deadline: float | None = None
        self._cancelled = False
        self._reason = "query cancelled"

    @classmethod
    def with_timeout(cls, seconds: float, *,
                     clock: Callable[[], float] = time.monotonic
                     ) -> "CancellationToken":
        """A fresh token whose deadline is ``seconds`` from now."""
        token = cls(clock=clock)
        token.set_timeout(seconds)
        return token

    def set_timeout(self, seconds: float) -> None:
        """Arm (or tighten) the deadline to ``seconds`` from now."""
        if seconds < 0:
            raise ValueError("timeout must be non-negative")
        deadline = self._clock() + seconds
        with self._lock:
            self._deadline = deadline if self._deadline is None \
                else min(self._deadline, deadline)

    def cancel(self, reason: str = "query cancelled") -> None:
        """Cancel manually; the running query raises at its next check."""
        with self._lock:
            self._cancelled = True
            self._reason = reason

    def remaining(self) -> float | None:
        """Seconds until the deadline (never negative), or None if unarmed."""
        with self._lock:
            deadline = self._deadline
        if deadline is None:
            return None
        return max(0.0, deadline - self._clock())

    @property
    def cancelled(self) -> bool:
        """True once cancelled manually or past the deadline."""
        with self._lock:
            if self._cancelled:
                return True
            return self._deadline is not None and self._clock() >= self._deadline

    def check(self) -> None:
        """Raise if cancelled: the cooperative yield point.

        :class:`~repro.errors.QueryTimeoutError` past the deadline,
        :class:`~repro.errors.QueryCancelledError` after a manual cancel.
        """
        with self._lock:
            if self._cancelled:
                raise QueryCancelledError(self._reason)
            if self._deadline is not None and self._clock() >= self._deadline:
                raise QueryTimeoutError(
                    "query exceeded its deadline and was cancelled between chunks")
