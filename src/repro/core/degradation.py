"""Graceful degradation of privacy beyond the (rho, K) bound (Appendix C).

Events that exceed the protected bound are not revealed outright; instead the
effective epsilon grows with how far they exceed it, and the probability that
an adversary can detect the event (at a chosen false-positive tolerance) is
bounded by the hypothesis-testing inequality of Kairouz et al. used in
Appendix C:

    P(detect) <= min( e^eps * alpha,  1 - e^-eps * (1 - alpha) )

This module provides the effective-epsilon calculation and the curve plotted
in Fig. 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import PolicyError
from repro.video.chunking import num_chunks_spanned


def detection_probability_bound(epsilon: float, alpha: float) -> float:
    """Maximum probability of correctly detecting an event under epsilon-DP.

    ``alpha`` is the adversary's acceptable false-positive probability.  The
    bound saturates at 1 for large epsilon.
    """
    if epsilon < 0:
        raise PolicyError("epsilon must be non-negative")
    if not 0.0 < alpha < 1.0:
        raise PolicyError("alpha must be in (0, 1)")
    first = math.exp(epsilon) * alpha
    second = 1.0 - math.exp(-epsilon) * (1.0 - alpha)
    return min(1.0, min(first, second))


def effective_epsilon(epsilon: float, *, actual_rho: float, bounded_rho: float,
                      chunk_duration: float, actual_k: int = 1, bounded_k: int = 1) -> float:
    """Effective epsilon experienced by an event that exceeds the (rho, K) bound.

    Following Section 5.3 and the proof of Theorem 6.2, the guarantee scales
    with the number of intermediate-table rows the event can actually touch
    relative to the number the mechanism budgeted for:

    * K scales linearly: a (rho, 2K)-bounded event gets 2 * epsilon;
    * rho scales through Equation 6.1's chunk count: the ratio
      ``max_chunks(actual_rho) / max_chunks(bounded_rho)``.

    Events within the bound experience at most ``epsilon`` (the ratio never
    drops below 1 because the mechanism's noise is fixed by the bound).
    """
    if epsilon < 0:
        raise PolicyError("epsilon must be non-negative")
    if actual_rho < 0 or bounded_rho < 0:
        raise PolicyError("durations must be non-negative")
    if actual_k < 1 or bounded_k < 1:
        raise PolicyError("segment counts must be at least 1")
    chunk_ratio = (num_chunks_spanned(actual_rho, chunk_duration)
                   / num_chunks_spanned(bounded_rho, chunk_duration))
    k_ratio = actual_k / bounded_k
    return epsilon * max(1.0, chunk_ratio) * max(1.0, k_ratio)


@dataclass(frozen=True)
class DegradationPoint:
    """One point of the Fig. 8 curve."""

    persistence_ratio: float
    effective_epsilon: float
    detection_probability: float


def degradation_curve(*, epsilon: float, bounded_rho: float, chunk_duration: float,
                      alpha: float, ratios: Sequence[float]) -> list[DegradationPoint]:
    """Fig. 8: detection probability as a function of actual/expected persistence.

    ``ratios`` are the x-axis values (actual persistence divided by the
    protected rho).  A ratio of 1.0 corresponds to an event exactly at the
    bound, protected with the nominal epsilon.
    """
    points: list[DegradationPoint] = []
    for ratio in ratios:
        if ratio < 0:
            raise PolicyError("persistence ratios must be non-negative")
        actual_rho = bounded_rho * ratio
        eps_eff = effective_epsilon(epsilon, actual_rho=actual_rho, bounded_rho=bounded_rho,
                                    chunk_duration=chunk_duration)
        points.append(DegradationPoint(
            persistence_ratio=ratio,
            effective_epsilon=eps_eff,
            detection_probability=detection_probability_bound(eps_eff, alpha),
        ))
    return points
