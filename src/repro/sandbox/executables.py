"""Library of analyst PROCESS executables used by the evaluation queries.

In the real system these would be arbitrary binaries shipping their own CNN
models; here they are small Python classes implementing the same *logic*
(detect, track within the chunk, emit rows) on top of the synthetic detector
and tracker.  Privid does not trust any of them: the sandbox coerces and
truncates whatever they return.

Each executable documents which evaluation queries it serves.
"""

from __future__ import annotations

import copy
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any, Sequence

from repro.cv.tracker import IoUTracker, Track, TrackView
from repro.relational.table import RowBatch
from repro.sandbox.environment import ExecutionContext
from repro.video.chunking import Chunk

#: Scalar field types whose values a shallow copy shares safely — an
#: executable whose configuration is made only of these needs no deep copy
#: per chunk.  Tuples are checked recursively (a tuple can hold a mutable);
#: frozensets only admit hashable — hence effectively immutable — elements.
_IMMUTABLE_FIELD_TYPES = (type(None), bool, int, float, str, bytes, frozenset)


def _is_immutable_config_value(value: Any) -> bool:
    """True if sharing ``value`` across executable instances is safe."""
    if isinstance(value, _IMMUTABLE_FIELD_TYPES):
        return True
    if isinstance(value, tuple):
        return all(_is_immutable_config_value(item) for item in value)
    return False

#: When True (the default), executables track chunks through the columnar
#: batch core (`IoUTracker.step_batch` + `TrackView` row emission); False
#: forces the scalar per-frame twin (`Detection` lists + `Track` objects).
#: The two paths are bit-identical — the flag exists so parity tests can run
#: whole queries through both and compare releases exactly.
USE_BATCH_TRACKER = True


class ProcessExecutable(ABC):
    """Interface every PROCESS executable implements.

    ``process`` receives one chunk and the chunk-independent context and
    returns its output rows — either a list of row dictionaries or a
    columnar :class:`~repro.relational.table.RowBatch` (the batch emission
    path; the sandbox coerces both identically).  Implementations must not
    keep state across calls (the sandbox runs a fresh instance per chunk to
    make cross-chunk state ineffective even if attempted).
    """

    name: str = "executable"

    @abstractmethod
    def process(self, chunk: Chunk, context: ExecutionContext
                ) -> "list[dict[str, Any]] | RowBatch":
        """Produce output rows for one chunk."""

    def fresh_instance(self) -> "ProcessExecutable":
        """A pristine copy of this executable for one chunk's isolated run.

        The registered executable acts as a factory: each chunk is processed
        by an instance carrying only the registered configuration, never state
        accumulated by a previous chunk.  Dataclass executables whose fields
        are all immutable values take a shallow copy (a deep copy per chunk
        costs more than small-chunk processing itself); anything with
        mutable configuration falls back to the always-correct deep copy.
        Implementations with expensive immutable assets (e.g. model weights)
        may override this to share them across instances.
        """
        shallow = getattr(self, "_fresh_shallow", None)
        if shallow is None:
            shallow = is_dataclass(self) and all(
                _is_immutable_config_value(getattr(self, spec.name))
                for spec in fields(self))
            try:
                # Memoized on the registered instance: its configuration is
                # fixed once registered (rebinding a field to a mutable value
                # afterwards is unsupported).
                object.__setattr__(self, "_fresh_shallow", shallow)
            except AttributeError:
                pass
        if shallow:
            return copy.copy(self)
        return copy.deepcopy(self)

    def config_fingerprint(self) -> Any:
        """A stable description of this executable's configuration.

        Used by :class:`~repro.core.cache.ChunkResultCache` to key memoized
        chunk outputs.  Dataclass executables fingerprint their fields; other
        implementations should override this if ``repr`` is not stable.
        """
        if is_dataclass(self):
            return (type(self).__name__,
                    tuple((spec.name, getattr(self, spec.name)) for spec in fields(self)))
        return (type(self).__name__, repr(self))


def _track_chunk(chunk: Chunk, context: ExecutionContext, *, categories: set[str] | None = None
                 ) -> Sequence[Track | TrackView]:
    """Detect and track objects within a single chunk (the common preamble).

    The chunk renders once as a columnar
    :class:`~repro.video.video.FrameBatch`, the detector computes every draw
    for the chunk in vectorized array ops, and the tracker advances the
    whole chunk through its batch core — tracks come back as cheap
    :class:`~repro.cv.tracker.TrackView` columns, with Python objects
    materialised only for the two boxes an executable actually reads.  With
    :data:`USE_BATCH_TRACKER` off, the scalar twin (per-frame ``Detection``
    lists into ``IoUTracker.step``) produces bit-identical ``Track`` objects
    instead.
    """
    detector = context.detector()
    tracker = IoUTracker(context.tracker_config)
    batch = chunk.frame_batch()
    detections = detector.detect_batch(batch, frame_width=chunk.video.width,
                                       frame_height=chunk.video.height,
                                       categories=categories)
    if USE_BATCH_TRACKER:
        tracker.step_batch(detections)
        return tracker.finalize_views()
    for frame_detections in detections.per_frame_detections():
        tracker.step(frame_detections)
    return tracker.finalize()


@dataclass
class EnteringObjectCounter(ProcessExecutable):
    """One row per object that *enters* the scene during the chunk.

    Used by Q1-Q3 (counting unique people/cars per hour).  Objects already
    visible at the start of the chunk are skipped so that each appearance
    contributes a single row across the whole query window (Section 6.2,
    "Interface limitations").  ``entry_margin_frames`` tolerates detector
    misses in the first frames of a chunk.
    """

    category: str = "person"
    entry_margin_frames: int = 2
    include_first_chunk: bool = True
    name: str = "entering_object_counter"

    def process(self, chunk: Chunk, context: ExecutionContext) -> RowBatch:
        tracks = _track_chunk(chunk, context, categories={self.category})
        margin = self.entry_margin_frames / context.fps
        threshold = chunk.interval.start + margin
        always = self.include_first_chunk and chunk.index == 0
        entered_ats: list[float] = []
        dxs: list[float] = []
        dys: list[float] = []
        for track in tracks:
            first_timestamp = track.first_timestamp
            if first_timestamp > threshold or always:
                first_center = track.first_box.center
                last_center = track.last_box.center
                entered_ats.append(first_timestamp)
                dxs.append(last_center.x - first_center.x)
                dys.append(last_center.y - first_center.y)
        return RowBatch(len(entered_ats), {
            "kind": [self.category] * len(entered_ats),
            "entered_at": entered_ats,
            "dx": dxs,
            "dy": dys,
        })


@dataclass
class UniqueVehicleReporter(ProcessExecutable):
    """One row per vehicle tracked in the chunk, with plate, colour and speed.

    Mirrors the ``model.py`` of Listing 1: the plate column enables the
    ``GROUP BY plate`` deduplication, and speed is estimated from the track's
    displacement using the owner-provided metres-per-pixel metadata.
    """

    category: str = "car"
    name: str = "unique_vehicle_reporter"

    def process(self, chunk: Chunk, context: ExecutionContext) -> RowBatch:
        tracks = _track_chunk(chunk, context, categories={self.category, "taxi"})
        meters_per_pixel = float(context.metadata.get("meters_per_pixel", 0.1))
        plates: list[Any] = []
        colors: list[Any] = []
        speeds: list[Any] = []
        for track in tracks:
            attribute_speed = track.majority_attribute("speed_kmh")
            if attribute_speed is None:
                duration = max(track.duration, 1.0 / context.fps)
                first_center = track.first_box.center
                last_center = track.last_box.center
                displacement = first_center.distance_to(last_center)
                attribute_speed = displacement * meters_per_pixel / duration * 3.6
            plates.append(track.majority_attribute("plate", default=""))
            colors.append(track.majority_attribute("color", default=""))
            speeds.append(attribute_speed)
        return RowBatch(len(plates), {"plate": plates, "color": colors, "speed": speeds})


@dataclass
class TreeLeafClassifier(ProcessExecutable):
    """One row per detected tree stating whether it currently has leaves.

    Used by Q7-Q9 (fraction of trees with leaves); designed for single-frame
    chunks, where each detected tree contributes one row.
    """

    name: str = "tree_leaf_classifier"

    def process(self, chunk: Chunk, context: ExecutionContext) -> RowBatch:
        detector = context.detector()
        # single-frame semantics even if the chunk holds more frames
        detections = detector.detect_batch(chunk.frame_batch(max_frames=1),
                                           frame_width=chunk.video.width,
                                           frame_height=chunk.video.height,
                                           categories={"tree"})
        column = detections.attributes.get("has_leaves")
        values: list[float] = []
        if column is not None:
            present, observed = column
            for index in present.nonzero()[0].tolist():
                value = observed[index]
                if value is None:
                    continue
                values.append(100.0 if value else 0.0)
        return RowBatch(len(values), {"has_leaves": values})


@dataclass
class RedLightObserver(ProcessExecutable):
    """One row per *completed* red phase observed within the chunk.

    Used by Q10-Q12 (average red-light duration).  The executable watches the
    traffic light's observed state frame by frame and emits the length of
    every red interval that both starts and ends inside the chunk, so a phase
    spanning a chunk boundary is simply not reported (rather than reported
    twice).
    """

    name: str = "red_light_observer"

    def process(self, chunk: Chunk, context: ExecutionContext) -> RowBatch:
        detector = context.detector()
        detections = detector.detect_batch(chunk.frame_batch(),
                                           frame_width=chunk.video.width,
                                           frame_height=chunk.video.height,
                                           categories={"traffic_light"})
        # Only each frame's *first* detection is consulted, mirroring the
        # per-frame loop's early break.
        transitions: list[tuple[float, str]] = []
        column = detections.attributes.get("light_state")
        if column is not None:
            present, observed = column
            _, first_indices = detections.first_index_per_frame()
            timestamps = detections.timestamps
            for index in first_indices.tolist():
                if present[index]:
                    transitions.append((float(timestamps[index]),
                                        str(observed[index])))
        durations: list[float] = []
        red_started: float | None = None
        saw_green_before = False
        for timestamp, state in transitions:
            if state == "RED":
                if red_started is None and saw_green_before:
                    red_started = timestamp
            else:
                saw_green_before = True
                if red_started is not None:
                    durations.append(timestamp - red_started)
                    red_started = None
        return RowBatch(len(durations), {"red_duration": durations})


@dataclass
class DirectionalCrossingCounter(ProcessExecutable):
    """One row per person entering during the chunk and moving in a direction.

    Used by Q13 (count people whose trajectory heads towards campus, i.e.
    enters from the south and exits to the north).  Requires chunks long
    enough to contain most of a crossing so the direction is observable —
    the "stateful query" case of the evaluation.
    """

    category: str = "person"
    direction: str = "north"
    min_displacement: float = 120.0
    entry_margin_frames: int = 2
    name: str = "directional_crossing_counter"

    def _moves_in_direction(self, track: Track | TrackView) -> bool:
        dx = track.last_box.center.x - track.first_box.center.x
        dy = track.last_box.center.y - track.first_box.center.y
        if self.direction == "north":
            return dy <= -self.min_displacement
        if self.direction == "south":
            return dy >= self.min_displacement
        if self.direction == "east":
            return dx >= self.min_displacement
        return dx <= -self.min_displacement

    def process(self, chunk: Chunk, context: ExecutionContext) -> RowBatch:
        tracks = _track_chunk(chunk, context, categories={self.category})
        margin = self.entry_margin_frames / context.fps
        threshold = chunk.interval.start + margin
        entered_ats: list[float] = []
        for track in tracks:
            entered = track.first_timestamp > threshold or chunk.index == 0
            if entered and self._moves_in_direction(track):
                entered_ats.append(track.first_timestamp)
        return RowBatch(len(entered_ats), {
            "matched": [1.0] * len(entered_ats),
            "entered_at": entered_ats,
        })


@dataclass
class TaxiSightingReporter(ProcessExecutable):
    """One row per taxi visible during the chunk (Porto queries Q4-Q6).

    The Porto footage is a coarse sightings log rather than dense frames, so
    the executable uses the chunk's object-visibility fast path; each row
    carries the plate (taxi id) and the camera name so multi-camera SELECTs
    can union and join tables.
    """

    name: str = "taxi_sighting_reporter"

    def process(self, chunk: Chunk, context: ExecutionContext) -> RowBatch:
        plates: list[Any] = []
        visible_seconds: list[float] = []
        for scene_object, overlap in chunk.visible_objects():
            if scene_object.category != "taxi":
                continue
            plates.append(scene_object.attributes.get("plate", ""))
            visible_seconds.append(overlap.duration)
        return RowBatch(len(plates), {
            "plate": plates,
            "camera": [context.camera] * len(plates),
            "visible_seconds": visible_seconds,
        })


@dataclass
class CrashingExecutable(ProcessExecutable):
    """Always raises — used to test that the sandbox substitutes default rows."""

    name: str = "crashing_executable"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        raise RuntimeError("intentional crash")


@dataclass
class SlowExecutable(ProcessExecutable):
    """Exceeds its declared runtime — used to test TIMEOUT enforcement.

    ``simulated_runtime`` lets tests exercise the timeout path without
    actually sleeping; ``real_sleep`` performs a genuine wall-clock sleep.
    """

    simulated_runtime: float = 10.0
    real_sleep: float = 0.0
    name: str = "slow_executable"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        if self.real_sleep > 0:
            time.sleep(self.real_sleep)
        return [{"value": 1.0}]


@dataclass
class RowFloodExecutable(ProcessExecutable):
    """Outputs far more rows than allowed — used to test max_rows truncation."""

    rows_to_emit: int = 1000
    name: str = "row_flood_executable"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        return [{"value": float(index)} for index in range(self.rows_to_emit)]


@dataclass
class ConstantExecutable(ProcessExecutable):
    """Outputs a fixed set of rows regardless of the chunk — used in tests."""

    rows: list[dict[str, Any]] = field(default_factory=lambda: [{"value": 1.0}])
    name: str = "constant_executable"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        return [dict(row) for row in self.rows]
