"""Library of analyst PROCESS executables used by the evaluation queries.

In the real system these would be arbitrary binaries shipping their own CNN
models; here they are small Python classes implementing the same *logic*
(detect, track within the chunk, emit rows) on top of the synthetic detector
and tracker.  Privid does not trust any of them: the sandbox coerces and
truncates whatever they return.

Each executable documents which evaluation queries it serves.
"""

from __future__ import annotations

import copy
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Any

from repro.cv.tracker import IoUTracker, Track
from repro.sandbox.environment import ExecutionContext
from repro.video.chunking import Chunk


class ProcessExecutable(ABC):
    """Interface every PROCESS executable implements.

    ``process`` receives one chunk and the chunk-independent context and
    returns a list of row dictionaries.  Implementations must not keep state
    across calls (the sandbox runs a fresh instance per chunk to make
    cross-chunk state ineffective even if attempted).
    """

    name: str = "executable"

    @abstractmethod
    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        """Produce output rows for one chunk."""

    def fresh_instance(self) -> "ProcessExecutable":
        """A pristine copy of this executable for one chunk's isolated run.

        The registered executable acts as a factory: each chunk is processed
        by an instance carrying only the registered configuration, never state
        accumulated by a previous chunk.  The default deep copy is correct for
        any executable; implementations with expensive immutable assets (e.g.
        model weights) may override this to share them across instances.
        """
        return copy.deepcopy(self)

    def config_fingerprint(self) -> Any:
        """A stable description of this executable's configuration.

        Used by :class:`~repro.core.cache.ChunkResultCache` to key memoized
        chunk outputs.  Dataclass executables fingerprint their fields; other
        implementations should override this if ``repr`` is not stable.
        """
        if is_dataclass(self):
            return (type(self).__name__,
                    tuple((spec.name, getattr(self, spec.name)) for spec in fields(self)))
        return (type(self).__name__, repr(self))


def _track_chunk(chunk: Chunk, context: ExecutionContext, *, categories: set[str] | None = None
                 ) -> list[Track]:
    """Detect and track objects within a single chunk (the common preamble).

    The chunk renders once as a columnar
    :class:`~repro.video.video.FrameBatch` and the detector computes every
    draw for the chunk in vectorized array ops; only the (cheap, stateful)
    tracker consumes the frames one at a time.
    """
    detector = context.detector()
    tracker = IoUTracker(context.tracker_config)
    batch = chunk.frame_batch()
    for detections in detector.detect_batch(batch, frame_width=chunk.video.width,
                                            frame_height=chunk.video.height,
                                            categories=categories):
        tracker.step(detections)
    return tracker.finalize()


@dataclass
class EnteringObjectCounter(ProcessExecutable):
    """One row per object that *enters* the scene during the chunk.

    Used by Q1-Q3 (counting unique people/cars per hour).  Objects already
    visible at the start of the chunk are skipped so that each appearance
    contributes a single row across the whole query window (Section 6.2,
    "Interface limitations").  ``entry_margin_frames`` tolerates detector
    misses in the first frames of a chunk.
    """

    category: str = "person"
    entry_margin_frames: int = 2
    include_first_chunk: bool = True
    name: str = "entering_object_counter"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        tracks = _track_chunk(chunk, context, categories={self.category})
        margin = self.entry_margin_frames / context.fps
        rows: list[dict[str, Any]] = []
        for track in tracks:
            entered_during_chunk = track.first_timestamp > chunk.interval.start + margin
            if entered_during_chunk or (self.include_first_chunk and chunk.index == 0):
                dy = track.last_box.center.y - track.observations[0].box.center.y
                dx = track.last_box.center.x - track.observations[0].box.center.x
                rows.append({
                    "kind": self.category,
                    "entered_at": track.first_timestamp,
                    "dx": dx,
                    "dy": dy,
                })
        return rows


@dataclass
class UniqueVehicleReporter(ProcessExecutable):
    """One row per vehicle tracked in the chunk, with plate, colour and speed.

    Mirrors the ``model.py`` of Listing 1: the plate column enables the
    ``GROUP BY plate`` deduplication, and speed is estimated from the track's
    displacement using the owner-provided metres-per-pixel metadata.
    """

    category: str = "car"
    name: str = "unique_vehicle_reporter"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        tracks = _track_chunk(chunk, context, categories={self.category, "taxi"})
        meters_per_pixel = float(context.metadata.get("meters_per_pixel", 0.1))
        rows: list[dict[str, Any]] = []
        for track in tracks:
            duration = max(track.duration, 1.0 / context.fps)
            displacement = track.observations[0].box.center.distance_to(track.last_box.center)
            estimated_speed = displacement * meters_per_pixel / duration * 3.6
            attribute_speed = track.majority_attribute("speed_kmh")
            rows.append({
                "plate": track.majority_attribute("plate", default=""),
                "color": track.majority_attribute("color", default=""),
                "speed": attribute_speed if attribute_speed is not None else estimated_speed,
            })
        return rows


@dataclass
class TreeLeafClassifier(ProcessExecutable):
    """One row per detected tree stating whether it currently has leaves.

    Used by Q7-Q9 (fraction of trees with leaves); designed for single-frame
    chunks, where each detected tree contributes one row.
    """

    name: str = "tree_leaf_classifier"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        detector = context.detector()
        # single-frame semantics even if the chunk holds more frames
        per_frame = detector.detect_batch(chunk.frame_batch(max_frames=1),
                                          frame_width=chunk.video.width,
                                          frame_height=chunk.video.height,
                                          categories={"tree"})
        rows: list[dict[str, Any]] = []
        for detection in per_frame[0] if per_frame else []:
            has_leaves = detection.attributes.get("has_leaves")
            if has_leaves is None:
                continue
            rows.append({"has_leaves": 100.0 if has_leaves else 0.0})
        return rows


@dataclass
class RedLightObserver(ProcessExecutable):
    """One row per *completed* red phase observed within the chunk.

    Used by Q10-Q12 (average red-light duration).  The executable watches the
    traffic light's observed state frame by frame and emits the length of
    every red interval that both starts and ends inside the chunk, so a phase
    spanning a chunk boundary is simply not reported (rather than reported
    twice).
    """

    name: str = "red_light_observer"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        detector = context.detector()
        transitions: list[tuple[float, str]] = []
        per_frame = detector.detect_batch(chunk.frame_batch(),
                                          frame_width=chunk.video.width,
                                          frame_height=chunk.video.height,
                                          categories={"traffic_light"})
        for detections in per_frame:
            for detection in detections:
                state = detection.attributes.get("light_state")
                if state is not None:
                    transitions.append((detection.timestamp, str(state)))
                break
        rows: list[dict[str, Any]] = []
        red_started: float | None = None
        saw_green_before = False
        for timestamp, state in transitions:
            if state == "RED":
                if red_started is None and saw_green_before:
                    red_started = timestamp
            else:
                saw_green_before = True
                if red_started is not None:
                    rows.append({"red_duration": timestamp - red_started})
                    red_started = None
        return rows


@dataclass
class DirectionalCrossingCounter(ProcessExecutable):
    """One row per person entering during the chunk and moving in a direction.

    Used by Q13 (count people whose trajectory heads towards campus, i.e.
    enters from the south and exits to the north).  Requires chunks long
    enough to contain most of a crossing so the direction is observable —
    the "stateful query" case of the evaluation.
    """

    category: str = "person"
    direction: str = "north"
    min_displacement: float = 120.0
    entry_margin_frames: int = 2
    name: str = "directional_crossing_counter"

    def _moves_in_direction(self, track: Track) -> bool:
        dx = track.last_box.center.x - track.observations[0].box.center.x
        dy = track.last_box.center.y - track.observations[0].box.center.y
        if self.direction == "north":
            return dy <= -self.min_displacement
        if self.direction == "south":
            return dy >= self.min_displacement
        if self.direction == "east":
            return dx >= self.min_displacement
        return dx <= -self.min_displacement

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        tracks = _track_chunk(chunk, context, categories={self.category})
        margin = self.entry_margin_frames / context.fps
        rows: list[dict[str, Any]] = []
        for track in tracks:
            entered = track.first_timestamp > chunk.interval.start + margin or chunk.index == 0
            if entered and self._moves_in_direction(track):
                rows.append({"matched": 1.0, "entered_at": track.first_timestamp})
        return rows


@dataclass
class TaxiSightingReporter(ProcessExecutable):
    """One row per taxi visible during the chunk (Porto queries Q4-Q6).

    The Porto footage is a coarse sightings log rather than dense frames, so
    the executable uses the chunk's object-visibility fast path; each row
    carries the plate (taxi id) and the camera name so multi-camera SELECTs
    can union and join tables.
    """

    name: str = "taxi_sighting_reporter"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        rows: list[dict[str, Any]] = []
        for scene_object, overlap in chunk.visible_objects():
            if scene_object.category != "taxi":
                continue
            rows.append({
                "plate": scene_object.attributes.get("plate", ""),
                "camera": context.camera,
                "visible_seconds": overlap.duration,
            })
        return rows


@dataclass
class CrashingExecutable(ProcessExecutable):
    """Always raises — used to test that the sandbox substitutes default rows."""

    name: str = "crashing_executable"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        raise RuntimeError("intentional crash")


@dataclass
class SlowExecutable(ProcessExecutable):
    """Exceeds its declared runtime — used to test TIMEOUT enforcement.

    ``simulated_runtime`` lets tests exercise the timeout path without
    actually sleeping; ``real_sleep`` performs a genuine wall-clock sleep.
    """

    simulated_runtime: float = 10.0
    real_sleep: float = 0.0
    name: str = "slow_executable"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        if self.real_sleep > 0:
            time.sleep(self.real_sleep)
        return [{"value": 1.0}]


@dataclass
class RowFloodExecutable(ProcessExecutable):
    """Outputs far more rows than allowed — used to test max_rows truncation."""

    rows_to_emit: int = 1000
    name: str = "row_flood_executable"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        return [{"value": float(index)} for index in range(self.rows_to_emit)]


@dataclass
class ConstantExecutable(ProcessExecutable):
    """Outputs a fixed set of rows regardless of the chunk — used in tests."""

    rows: list[dict[str, Any]] = field(default_factory=lambda: [{"value": 1.0}])
    name: str = "constant_executable"

    def process(self, chunk: Chunk, context: ExecutionContext) -> list[dict[str, Any]]:
        return [dict(row) for row in self.rows]
