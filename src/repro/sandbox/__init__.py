"""Isolated execution of analyst-provided processing code (Appendix B)."""

from repro.sandbox.environment import ExecutionContext, SandboxRunner
from repro.sandbox.executables import (
    CrashingExecutable,
    DirectionalCrossingCounter,
    EnteringObjectCounter,
    ProcessExecutable,
    RedLightObserver,
    RowFloodExecutable,
    SlowExecutable,
    TaxiSightingReporter,
    TreeLeafClassifier,
    UniqueVehicleReporter,
)
from repro.sandbox.registry import ExecutableRegistry, default_registry

__all__ = [
    "ExecutionContext",
    "SandboxRunner",
    "ProcessExecutable",
    "EnteringObjectCounter",
    "UniqueVehicleReporter",
    "TreeLeafClassifier",
    "RedLightObserver",
    "DirectionalCrossingCounter",
    "TaxiSightingReporter",
    "CrashingExecutable",
    "SlowExecutable",
    "RowFloodExecutable",
    "ExecutableRegistry",
    "default_registry",
]
