"""Registry mapping executable names (as referenced by PROCESS ... USING) to code.

The query language refers to executables by name (``USING model.py``); the
video owner's deployment resolves those names to the uploaded artifacts.  In
this reproduction the registry maps names to :class:`ProcessExecutable`
instances, and a default registry pre-registers the evaluation's executables
under stable names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnknownExecutableError
from repro.sandbox.executables import (
    DirectionalCrossingCounter,
    EnteringObjectCounter,
    ProcessExecutable,
    RedLightObserver,
    TaxiSightingReporter,
    TreeLeafClassifier,
    UniqueVehicleReporter,
)


@dataclass
class ExecutableRegistry:
    """Name -> executable mapping with helpful errors for unknown names."""

    executables: dict[str, ProcessExecutable] = field(default_factory=dict)

    def register(self, name: str, executable: ProcessExecutable, *, replace: bool = False) -> None:
        """Register an executable under ``name``."""
        if name in self.executables and not replace:
            raise UnknownExecutableError(f"executable {name!r} is already registered")
        self.executables[name] = executable

    def resolve(self, name: str) -> ProcessExecutable:
        """Look up an executable, raising a descriptive error if missing."""
        if name not in self.executables:
            raise UnknownExecutableError(
                f"unknown executable {name!r}; registered: {sorted(self.executables)}")
        return self.executables[name]

    def names(self) -> list[str]:
        """Registered executable names."""
        return sorted(self.executables)


def default_registry() -> ExecutableRegistry:
    """Registry with the evaluation's analyst executables pre-registered."""
    registry = ExecutableRegistry()
    registry.register("count_entering_people.py", EnteringObjectCounter(category="person"))
    registry.register("count_entering_cars.py", EnteringObjectCounter(category="car"))
    registry.register("vehicle_reporter.py", UniqueVehicleReporter())
    registry.register("tree_leaf_classifier.py", TreeLeafClassifier())
    registry.register("red_light_observer.py", RedLightObserver())
    registry.register("northbound_people.py", DirectionalCrossingCounter(direction="north"))
    registry.register("taxi_sightings.py", TaxiSightingReporter())
    return registry
