"""Greedy mask selection (Appendix F, Algorithm 2) and the mask -> policy map.

Algorithm 2 orders grid cells so that masking the first cell reduces the
maximum persistence the most, the second cell the second most, and so on.
Walking the ordered list produces the cumulative curves of Fig. 11 (maximum
persistence remaining and identities retained as a function of the fraction
of grid cells masked) and the per-video summary of Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.analysis.persistence import DEFAULT_SAMPLE_PERIOD
from repro.scene.objects import PRIVATE_CATEGORIES, SceneObject
from repro.video.geometry import GridSpec
from repro.video.masking import Mask, mask_from_grid_cells
from repro.video.video import SyntheticVideo


@dataclass(frozen=True)
class MaskOrderingStep:
    """State of the greedy procedure after masking one more grid cell."""

    cell_index: int
    cells_masked: int
    fraction_masked: float
    max_persistence: float
    identities_retained: int
    retention_fraction: float


@dataclass
class _TrackOccupancy:
    """Per-object bookkeeping: which cell the object occupies at each sample."""

    object_id: str
    samples: dict[int, set[int]]  # sample index -> cells occupied at that sample

    @property
    def persistence_samples(self) -> int:
        return len(self.samples)


def _build_occupancy(video: SyntheticVideo, grid: GridSpec, sample_period: float,
                     categories: Iterable[str] | None) -> list[_TrackOccupancy]:
    allowed = frozenset(categories) if categories is not None else PRIVATE_CATEGORIES
    occupancies: list[_TrackOccupancy] = []
    for scene_object in video.objects:
        if scene_object.category not in allowed:
            continue
        samples: dict[int, set[int]] = {}
        for appearance in scene_object.appearances:
            timestamp = appearance.interval.start
            while timestamp < appearance.interval.end:
                box = appearance.box_at(timestamp)
                if box is not None:
                    cells = set(grid.cells_covering(box))
                    if cells:
                        samples[int(timestamp / sample_period)] = cells
                timestamp += sample_period
        if samples:
            occupancies.append(_TrackOccupancy(object_id=scene_object.object_id, samples=samples))
    return occupancies


def greedy_mask_ordering(video: SyntheticVideo, *, cell_size: float = 64.0,
                         sample_period: float = DEFAULT_SAMPLE_PERIOD,
                         categories: Iterable[str] | None = None,
                         max_cells: int | None = None,
                         stop_when_persistence_below: float = 0.0
                         ) -> tuple[GridSpec, list[MaskOrderingStep]]:
    """Algorithm 2: order grid cells by how much masking them reduces persistence.

    Returns the grid used and one :class:`MaskOrderingStep` per masked cell.
    ``max_cells`` caps the number of cells masked (the curves of Fig. 11 only
    need the informative prefix); ``stop_when_persistence_below`` stops early
    once the maximum persistence has dropped below a threshold (seconds).
    """
    grid = GridSpec(frame_width=video.width, frame_height=video.height,
                    cell_width=cell_size, cell_height=cell_size)
    occupancies = _build_occupancy(video, grid, sample_period, categories)
    total_objects = len(occupancies)
    cell_limit = grid.num_cells if max_cells is None else min(max_cells, grid.num_cells)

    steps: list[MaskOrderingStep] = []
    masked_cells: set[int] = set()
    while len(masked_cells) < cell_limit:
        alive = [occupancy for occupancy in occupancies if occupancy.samples]
        if not alive:
            break
        longest = max(alive, key=lambda occupancy: occupancy.persistence_samples)
        if longest.persistence_samples * sample_period <= stop_when_persistence_below:
            break
        cell_counts: dict[int, int] = {}
        for cells in longest.samples.values():
            for cell in cells:
                if cell not in masked_cells:
                    cell_counts[cell] = cell_counts.get(cell, 0) + 1
        if not cell_counts:
            # Every cell the longest-lived object touches is already masked,
            # yet samples remain — cannot happen because masking removes the
            # samples, but guard against degenerate geometry.
            break
        best_cell = max(cell_counts, key=cell_counts.get)
        masked_cells.add(best_cell)
        for occupancy in occupancies:
            to_remove = []
            for sample_index, cells in occupancy.samples.items():
                cells.discard(best_cell)
                if not cells:
                    to_remove.append(sample_index)
            for sample_index in to_remove:
                del occupancy.samples[sample_index]
        remaining = [occupancy for occupancy in occupancies if occupancy.samples]
        max_persistence = max((occupancy.persistence_samples for occupancy in remaining),
                              default=0) * sample_period
        steps.append(MaskOrderingStep(
            cell_index=best_cell,
            cells_masked=len(masked_cells),
            fraction_masked=len(masked_cells) / grid.num_cells,
            max_persistence=max_persistence,
            identities_retained=len(remaining),
            retention_fraction=(len(remaining) / total_objects) if total_objects else 1.0,
        ))
    return grid, steps


def mask_from_ordering(grid: GridSpec, steps: list[MaskOrderingStep], *,
                       num_cells: int, name: str = "greedy-mask") -> Mask:
    """Materialise the mask consisting of the first ``num_cells`` greedy cells."""
    cells = [step.cell_index for step in steps[:num_cells]]
    return mask_from_grid_cells(grid, cells, name=name)


def choose_mask_for_target(grid: GridSpec, steps: list[MaskOrderingStep], *,
                           target_max_persistence: float,
                           name: str = "target-mask") -> tuple[Mask, MaskOrderingStep | None]:
    """Smallest greedy-prefix mask that brings max persistence under a target.

    Returns the mask and the step at which the target was reached, or the
    full ordering's mask (and None) if the target is unreachable.
    """
    for index, step in enumerate(steps):
        if step.max_persistence <= target_max_persistence:
            return mask_from_ordering(grid, steps, num_cells=index + 1, name=name), step
    return mask_from_ordering(grid, steps, num_cells=len(steps), name=name), None
