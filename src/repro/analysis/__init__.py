"""Video-owner analysis tools: persistence, masks, regions, policy estimation."""

from repro.analysis.persistence import (
    PersistenceHeatmap,
    masked_persistence,
    persistence_heatmap,
    persistence_histogram,
)
from repro.analysis.mask_policy import (
    MaskOrderingStep,
    greedy_mask_ordering,
    mask_from_ordering,
)
from repro.analysis.region_analysis import RegionRangeAnalysis, analyze_region_ranges
from repro.analysis.policy_estimation import (
    PolicyEstimate,
    build_mask_policy_map,
    estimate_policy,
)

__all__ = [
    "PersistenceHeatmap",
    "persistence_heatmap",
    "persistence_histogram",
    "masked_persistence",
    "MaskOrderingStep",
    "greedy_mask_ordering",
    "mask_from_ordering",
    "RegionRangeAnalysis",
    "analyze_region_ranges",
    "PolicyEstimate",
    "estimate_policy",
    "build_mask_policy_map",
]
