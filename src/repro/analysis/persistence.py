"""Persistence analysis: how long private objects stay visible, and where.

These are the video owner's offline tools behind Section 7.1: the per-cell
persistence heatmaps of Fig. 3, the heavy-tailed persistence histograms of
Fig. 4, and the effect of a candidate mask on the persistence distribution
(maximum duration reduction and identity retention).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.scene.objects import PRIVATE_CATEGORIES, SceneObject
from repro.video.geometry import GridSpec
from repro.video.masking import Mask
from repro.video.video import SyntheticVideo

#: Default sampling period (seconds) when walking object trajectories.  One
#: sample per second is plenty for durations measured in tens of seconds and
#: keeps full-day analyses fast.
DEFAULT_SAMPLE_PERIOD = 1.0


@dataclass(frozen=True)
class PersistenceHeatmap:
    """Per-grid-cell accumulated presence time (seconds)."""

    grid: GridSpec
    cell_seconds: np.ndarray  # shape (rows, columns)

    @property
    def max_cell_seconds(self) -> float:
        """Largest accumulated presence of any cell."""
        return float(self.cell_seconds.max()) if self.cell_seconds.size else 0.0

    def normalized(self) -> np.ndarray:
        """Heatmap scaled to [0, 1] (as rendered in Fig. 3)."""
        maximum = self.max_cell_seconds
        if maximum <= 0:
            return np.zeros_like(self.cell_seconds)
        return self.cell_seconds / maximum

    def hottest_cells(self, count: int) -> list[int]:
        """Flattened indices of the ``count`` cells with the most presence time."""
        flat = self.cell_seconds.reshape(-1)
        order = np.argsort(flat)[::-1]
        return [int(index) for index in order[:count] if flat[index] > 0]


def _private_objects(video: SyntheticVideo, categories: Iterable[str] | None) -> list[SceneObject]:
    allowed = frozenset(categories) if categories is not None else PRIVATE_CATEGORIES
    return [obj for obj in video.objects if obj.category in allowed]


def persistence_heatmap(video: SyntheticVideo, *, cell_size: float = 40.0,
                        sample_period: float = DEFAULT_SAMPLE_PERIOD,
                        categories: Iterable[str] | None = None) -> PersistenceHeatmap:
    """Accumulate how long private objects overlap each grid cell (Fig. 3, top row)."""
    grid = GridSpec(frame_width=video.width, frame_height=video.height,
                    cell_width=cell_size, cell_height=cell_size)
    cells = np.zeros(grid.num_cells, dtype=float)
    for scene_object in _private_objects(video, categories):
        for appearance in scene_object.appearances:
            timestamp = appearance.interval.start
            while timestamp < appearance.interval.end:
                box = appearance.box_at(timestamp)
                if box is not None:
                    for index in grid.cells_covering(box):
                        cells[index] += sample_period
                timestamp += sample_period
    return PersistenceHeatmap(grid=grid,
                              cell_seconds=cells.reshape(grid.rows, grid.columns))


def persistence_histogram(durations: Sequence[float], *, num_bins: int = 16,
                          log_base: float = np.e) -> tuple[np.ndarray, np.ndarray]:
    """Histogram of log-durations, as plotted in Fig. 4.

    Returns ``(bin_edges, relative_frequency)``; durations of zero are
    dropped (an object fully hidden by a mask has no persistence).
    """
    positive = np.asarray([d for d in durations if d > 0], dtype=float)
    if positive.size == 0:
        edges = np.linspace(0.0, 1.0, num_bins + 1)
        return edges, np.zeros(num_bins)
    logs = np.log(positive) / np.log(log_base)
    edges = np.linspace(0.0, max(1.0, float(np.ceil(logs.max() + 1e-9))), num_bins + 1)
    counts, edges = np.histogram(logs, bins=edges)
    frequency = counts / counts.sum() if counts.sum() else counts.astype(float)
    return edges, frequency


@dataclass(frozen=True)
class MaskedPersistence:
    """Effect of a mask on the persistence distribution (Fig. 4 annotations)."""

    original_durations: tuple[float, ...]
    masked_durations: tuple[float, ...]
    original_max: float
    masked_max: float
    objects_before: int
    objects_after: int

    @property
    def reduction_factor(self) -> float:
        """How much the mask reduces the maximum persistence (>= 1)."""
        if self.masked_max <= 0:
            return float("inf") if self.original_max > 0 else 1.0
        return self.original_max / self.masked_max

    @property
    def retention_fraction(self) -> float:
        """Fraction of private objects still observable after masking."""
        if self.objects_before == 0:
            return 1.0
        return self.objects_after / self.objects_before


def _masked_visible_seconds(scene_object: SceneObject, mask: Mask,
                            sample_period: float) -> float:
    """Longest contiguous visible run of an object once the mask is applied."""
    longest = 0.0
    for appearance in scene_object.appearances:
        current = 0.0
        timestamp = appearance.interval.start
        while timestamp < appearance.interval.end:
            box = appearance.box_at(timestamp)
            if box is not None and not mask.hides(box):
                current += sample_period
                longest = max(longest, current)
            else:
                current = 0.0
            timestamp += sample_period
    return longest


def masked_persistence(video: SyntheticVideo, mask: Mask, *,
                       sample_period: float = DEFAULT_SAMPLE_PERIOD,
                       categories: Iterable[str] | None = None) -> MaskedPersistence:
    """Compare persistence with and without a mask (Fig. 4 and Table 6).

    An object "survives" the mask if it remains observable for at least one
    sample; the masked maximum persistence is the longest contiguous
    observable run of any surviving object.
    """
    objects = _private_objects(video, categories)
    original: list[float] = []
    masked: list[float] = []
    for scene_object in objects:
        original.append(scene_object.max_appearance_duration)
        masked.append(_masked_visible_seconds(scene_object, mask, sample_period))
    surviving = [duration for duration in masked if duration > 0]
    return MaskedPersistence(
        original_durations=tuple(original),
        masked_durations=tuple(masked),
        original_max=max(original, default=0.0),
        masked_max=max(surviving, default=0.0),
        objects_before=len(objects),
        objects_after=len(surviving),
    )
