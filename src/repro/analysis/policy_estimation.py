"""Automatic (rho, K) policy estimation from imperfect CV (Section 5.2, Table 1).

The video owner runs detection + tracking over historical footage (optionally
with a candidate mask applied) and takes a conservative estimate of the
maximum persistence as rho.  Even with substantial detection misses the
estimate is conservative because the tracker bridges gaps and the estimate is
padded by the tracker's gap-bridging window on either side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.policy import MaskPolicyMap, PrivacyPolicy
from repro.cv.detector import DetectorConfig, SyntheticDetector
from repro.cv.duration import (
    DurationEstimate,
    compare_to_ground_truth,
    conservative_grace_period,
)
from repro.cv.tracker import IoUTracker, Track, TrackerConfig
from repro.scene.objects import PRIVATE_CATEGORIES
from repro.utils.timebase import TimeInterval
from repro.video.masking import EMPTY_MASK, Mask
from repro.video.video import FrameTruth, SyntheticVideo


@dataclass(frozen=True)
class PolicyEstimate:
    """Outcome of policy estimation: the estimate details and the policy chosen."""

    estimate: DurationEstimate
    policy: PrivacyPolicy
    mask_name: str


def _masked_frame(frame: FrameTruth, mask: Mask) -> FrameTruth:
    """Apply a mask to one ground-truth frame before detection."""
    if mask.is_empty:
        return frame
    visible = tuple(obj for obj in frame.visible if not mask.hides(obj.box))
    return FrameTruth(timestamp=frame.timestamp, frame_index=frame.frame_index, visible=visible)


def track_video(video: SyntheticVideo, *, detector_config: DetectorConfig,
                tracker_config: TrackerConfig, window: TimeInterval | None = None,
                mask: Mask = EMPTY_MASK, sample_period: float | None = None,
                detector_seed: int = 0,
                categories: Iterable[str] | None = None) -> tuple[list[Track], float]:
    """Detect and track a window of video; return private-category tracks and miss rate."""
    allowed = frozenset(categories) if categories is not None else PRIVATE_CATEGORIES
    detector = SyntheticDetector(detector_config, seed=detector_seed)
    tracker = IoUTracker(tracker_config)
    window = video.interval if window is None else window.clamp(video.interval)
    total = 0
    missed = 0
    for frame in video.frames(window, sample_period=sample_period):
        masked = _masked_frame(frame, mask)
        detections = detector.detect_frame(masked, frame_width=video.width,
                                           frame_height=video.height)
        for visible_object in masked.visible:
            if visible_object.category in allowed:
                total += 1
                if not any(det.attributes.get("false_positive") is None
                           and det.category == visible_object.category
                           and det.box.iou(visible_object.box) > 0.3 for det in detections):
                    missed += 1
        tracker.step([det for det in detections if det.category in allowed])
    tracks = tracker.finalize()
    miss_fraction = (missed / total) if total else 0.0
    return tracks, miss_fraction


def estimate_policy(video: SyntheticVideo, *, detector_config: DetectorConfig,
                    tracker_config: TrackerConfig, window: TimeInterval | None = None,
                    mask: Mask = EMPTY_MASK, mask_name: str = MaskPolicyMap.NO_MASK,
                    sample_period: float | None = None, detector_seed: int = 0,
                    k_segments: int = 2, safety_margin: float = 0.0,
                    categories: Iterable[str] | None = None) -> PolicyEstimate:
    """Estimate a conservative (rho, K) policy for a camera (optionally masked).

    ``k_segments`` comes from owner domain knowledge (how many times the same
    individual may reappear within a query window); trackers cannot observe it
    reliably because they do not re-identify across long gaps.
    ``safety_margin`` adds extra slack (seconds) on top of the tracker-derived
    grace period.
    """
    tracks, miss_fraction = track_video(
        video, detector_config=detector_config, tracker_config=tracker_config,
        window=window, mask=mask, sample_period=sample_period,
        detector_seed=detector_seed, categories=categories)
    effective_period = sample_period if sample_period is not None else video.frame_period
    effective_fps = 1.0 / effective_period
    grace = conservative_grace_period(tracker_config.max_age, effective_fps) + safety_margin
    allowed = frozenset(categories) if categories is not None else PRIVATE_CATEGORIES
    masked_objects = []
    window = video.interval if window is None else window.clamp(video.interval)
    for scene_object in video.objects_overlapping(window):
        if scene_object.category not in allowed:
            continue
        if mask.is_empty:
            masked_objects.append(scene_object)
            continue
        visible_anywhere = any(
            appearance.box_at((appearance.interval.start + appearance.interval.end) / 2.0)
            is not None and not mask.hides(
                appearance.box_at((appearance.interval.start + appearance.interval.end) / 2.0))
            for appearance in scene_object.appearances)
        if visible_anywhere:
            masked_objects.append(scene_object)
    estimate = compare_to_ground_truth(tracks, masked_objects, miss_fraction=miss_fraction,
                                       grace_period=grace, categories=allowed)
    rho = max(estimate.estimated_max, 0.0)
    policy = PrivacyPolicy(rho=rho, k_segments=k_segments)
    return PolicyEstimate(estimate=estimate, policy=policy, mask_name=mask_name)


def build_mask_policy_map(video: SyntheticVideo, *, detector_config: DetectorConfig,
                          tracker_config: TrackerConfig, masks: dict[str, Mask],
                          window: TimeInterval | None = None,
                          sample_period: float | None = None, detector_seed: int = 0,
                          k_segments: int = 2,
                          categories: Iterable[str] | None = None) -> MaskPolicyMap:
    """Build the owner's mask -> policy map for a camera (Section 7.1).

    The unmasked policy is always estimated; each entry of ``masks`` adds a
    masked alternative with its own (typically much smaller) rho.
    """
    unmasked = estimate_policy(video, detector_config=detector_config,
                               tracker_config=tracker_config, window=window,
                               sample_period=sample_period, detector_seed=detector_seed,
                               k_segments=k_segments, categories=categories)
    policy_map = MaskPolicyMap.unmasked(unmasked.policy)
    for name, mask in masks.items():
        masked = estimate_policy(video, detector_config=detector_config,
                                 tracker_config=tracker_config, window=window, mask=mask,
                                 mask_name=name, sample_period=sample_period,
                                 detector_seed=detector_seed, k_segments=k_segments,
                                 categories=categories)
        policy_map.add(name, mask, masked.policy)
    return policy_map
