"""Spatial-splitting analysis (Section 7.2, Table 2).

The benefit of splitting a frame into regions is that the per-chunk output
range (the number of objects an executable could report per chunk) shrinks:
noise is proportional to ``max(frame)`` without splitting and to
``max(region)`` with it.  This module computes both maxima from ground truth
for a given chunk duration and region scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.scene.objects import PRIVATE_CATEGORIES
from repro.utils.timebase import TimeInterval
from repro.video.regions import RegionScheme
from repro.video.video import SyntheticVideo


@dataclass(frozen=True)
class RegionRangeAnalysis:
    """Table 2 row: per-chunk object maxima with and without spatial splitting."""

    video_name: str
    chunk_duration: float
    max_per_frame: int
    max_per_region: int
    per_region_maxima: dict[str, int]

    @property
    def reduction_factor(self) -> float:
        """Noise-reduction factor enabled by splitting (max(frame)/max(region))."""
        if self.max_per_region <= 0:
            return float(self.max_per_frame) if self.max_per_frame > 0 else 1.0
        return self.max_per_frame / self.max_per_region


def analyze_region_ranges(video: SyntheticVideo, scheme: RegionScheme, *,
                          chunk_duration: float = 60.0,
                          window: TimeInterval | None = None,
                          categories: Iterable[str] | None = None) -> RegionRangeAnalysis:
    """Count, per chunk, objects present in the whole frame versus per region.

    An object is attributed to the region containing the midpoint of its
    overlap with the chunk, matching how a region-restricted executable would
    observe it.
    """
    allowed = frozenset(categories) if categories is not None else PRIVATE_CATEGORIES
    window = video.interval if window is None else window.clamp(video.interval)
    max_frame = 0
    per_region_max: dict[str, int] = {region.name: 0 for region in scheme.regions}
    for chunk_interval in window.split(chunk_duration):
        frame_count = 0
        region_counts = {region.name: 0 for region in scheme.regions}
        for scene_object in video.objects_overlapping(chunk_interval):
            if scene_object.category not in allowed:
                continue
            for appearance in scene_object.appearances_within(chunk_interval):
                overlap = appearance.interval.intersection(chunk_interval)
                if overlap is None:
                    continue
                frame_count += 1
                midpoint = (overlap.start + overlap.end) / 2.0
                box = appearance.box_at(midpoint)
                if box is None:
                    continue
                region = scheme.region_of(box)
                if region is not None:
                    region_counts[region.name] += 1
        max_frame = max(max_frame, frame_count)
        for name, count in region_counts.items():
            per_region_max[name] = max(per_region_max[name], count)
    max_region = max(per_region_max.values(), default=0)
    return RegionRangeAnalysis(
        video_name=video.name,
        chunk_duration=chunk_duration,
        max_per_frame=max_frame,
        max_per_region=max_region,
        per_region_maxima=per_region_max,
    )
