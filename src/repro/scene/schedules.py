"""Declarative time-varying attribute schedules.

Scene objects may carry observable attributes that change over time (a
traffic light's colour, a shop sign switching on).  Earlier revisions modeled
these as closures ``timestamp -> value``, which kept scenario scenes out of
:class:`~repro.core.engine.ProcessPoolEngine` (closures don't pickle) and out
of the vectorized detector (closures evaluate one frame at a time).  A
schedule is the declarative replacement: a small frozen dataclass that

* evaluates a single timestamp (:meth:`AttributeSchedule.value_at`),
* evaluates a whole batch of timestamps at once (:meth:`values_at`), and
* pickles, so every benchmark scene runs on every execution engine.

Schedules are also callable with a single timestamp, so any code written
against the old closure convention keeps working — and plain callables are
still accepted anywhere a schedule is (they simply fall back to per-frame
evaluation and keep the video thread/serial-only).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np


class AttributeSchedule(ABC):
    """A picklable mapping from timestamp to an observable attribute value."""

    @abstractmethod
    def value_at(self, timestamp: float) -> Any:
        """The attribute's value at ``timestamp`` (seconds from video start)."""

    def values_at(self, timestamps: np.ndarray) -> Sequence[Any]:
        """Values for a batch of timestamps (default: per-element fallback)."""
        return [self.value_at(timestamp) for timestamp in np.asarray(timestamps).tolist()]

    def __call__(self, timestamp: float) -> Any:
        """Closure-compatibility shim: a schedule can be used as ``fn(t)``."""
        return self.value_at(timestamp)


@dataclass(frozen=True)
class ConstantSchedule(AttributeSchedule):
    """An attribute that never changes (useful as an explicit placeholder)."""

    value: Any

    def value_at(self, timestamp: float) -> Any:
        return self.value

    def values_at(self, timestamps: np.ndarray) -> Sequence[Any]:
        return [self.value] * int(np.asarray(timestamps).size)


@dataclass(frozen=True)
class CyclicSchedule(AttributeSchedule):
    """An attribute cycling through fixed phases, e.g. a traffic light.

    ``phases`` is a sequence of ``(value, duration_seconds)`` pairs; the
    cycle repeats forever, optionally shifted by ``offset`` seconds.  A
    two-phase ``(("RED", 75.0), ("GREEN", 45.0))`` schedule reproduces the
    closure the scenarios used to build by hand.
    """

    phases: tuple[tuple[Any, float], ...]
    offset: float = 0.0

    def __post_init__(self) -> None:
        if not self.phases:
            raise ValueError("a cyclic schedule needs at least one phase")
        if any(duration <= 0 for _, duration in self.phases):
            raise ValueError("phase durations must be positive")

    @property
    def cycle_duration(self) -> float:
        """Length of one full cycle in seconds."""
        return sum(duration for _, duration in self.phases)

    def _phase_ends(self) -> list[float]:
        ends: list[float] = []
        total = 0.0
        for _, duration in self.phases:
            total += duration
            ends.append(total)
        return ends

    def value_at(self, timestamp: float) -> Any:
        position = (timestamp - self.offset) % self.cycle_duration
        for (value, _), end in zip(self.phases, self._phase_ends()):
            if position < end:
                return value
        return self.phases[-1][0]

    def values_at(self, timestamps: np.ndarray) -> Sequence[Any]:
        positions = (np.asarray(timestamps, dtype=np.float64) - self.offset) % self.cycle_duration
        ends = np.array(self._phase_ends(), dtype=np.float64)
        # side='right' puts position == end into the *next* phase, matching
        # the scalar `position < end` test.
        indices = np.minimum(np.searchsorted(ends, positions, side="right"),
                             len(self.phases) - 1)
        values = [value for value, _ in self.phases]
        return [values[index] for index in indices.tolist()]


def periodic_two_state(on_value: Any, on_duration: float,
                       off_value: Any, off_duration: float, *,
                       offset: float = 0.0) -> CyclicSchedule:
    """Convenience constructor for the common two-state cycle."""
    return CyclicSchedule(phases=((on_value, on_duration), (off_value, off_duration)),
                          offset=offset)
