"""Scenario presets standing in for the paper's evaluation videos.

Three primary scenarios mirror the paper's ``campus``, ``highway`` and
``urban`` streams (12 hours each, 6am-6pm); seven additional presets mirror
the BlazeIt and MIRIS videos used in the extended masking study (Appendix F).
Each preset bundles the generated video with the per-video configuration the
paper chooses by hand: detector quality, tracker hyperparameters, the owner's
mask (Fig. 3), the region scheme used for spatial splitting (Table 2), and
scene metadata such as the traffic-light location and cycle.

Scenario sizes are scaled down roughly tenfold from the paper's raw object
counts (48.7k cars in ``highway``) so that full pipelines run in seconds on a
laptop; the ``scale`` parameter restores any desired density.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.cv.detector import DetectorConfig
from repro.cv.tracker import TrackerConfig
from repro.scene.schedules import AttributeSchedule, CyclicSchedule
from repro.scene.simulator import (
    CrossingPopulation,
    LingerPopulation,
    Route,
    SceneConfig,
    SceneSimulator,
    StaticPopulation,
)
from repro.utils.timebase import SECONDS_PER_HOUR
from repro.video.geometry import BoundingBox
from repro.video.masking import Mask
from repro.video.regions import BoundaryType, Region, RegionScheme
from repro.video.video import SyntheticVideo

#: Diurnal arrival profile for a 12-hour (6am-6pm) window: quiet early, peaks
#: at the morning commute and lunchtime, tapering towards the evening.
DAYTIME_PROFILE = (0.4, 0.7, 1.0, 1.2, 1.1, 1.3, 1.5, 1.3, 1.1, 1.0, 0.9, 0.7)

CAR_COLORS = ("RED", "WHITE", "SILVER", "BLACK", "BLUE")


@dataclass
class Scenario:
    """A ready-to-query synthetic camera: video plus per-video configuration."""

    name: str
    video: SyntheticVideo
    detector_config: DetectorConfig
    tracker_config: TrackerConfig
    region_scheme: RegionScheme | None = None
    owner_mask: Mask | None = None
    linger_zones: tuple[BoundingBox, ...] = ()
    traffic_light_box: BoundingBox | None = None
    red_light_duration: float | None = None
    metadata: dict[str, Any] = field(default_factory=dict)


def _car_attribute_factory(prefix: str) -> Callable[[np.random.Generator, int], dict[str, Any]]:
    """Attribute factory for vehicles: colour, unique plate, cruise speed."""

    def factory(rng: np.random.Generator, index: int) -> dict[str, Any]:
        return {
            "color": str(rng.choice(CAR_COLORS)),
            "plate": f"{prefix}{index:06d}",
            "speed_kmh": float(rng.uniform(35.0, 110.0)),
        }

    return factory


def _traffic_light_factory(red_duration: float, green_duration: float
                           ) -> Callable[[int], dict[str, AttributeSchedule]]:
    """Dynamic-attribute factory producing the light's colour schedule.

    Declarative :class:`~repro.scene.schedules.CyclicSchedule` objects (not
    closures) keep scenario videos picklable, so every benchmark scene runs
    on the process-pool engine and the batched detector evaluates the light
    state for a whole chunk in one vectorized call.
    """
    schedule = CyclicSchedule(phases=(("RED", red_duration), ("GREEN", green_duration)))

    def factory(_index: int) -> dict[str, AttributeSchedule]:
        return {"light_state": schedule}

    return factory


def _tree_population(boxes: list[BoundingBox], with_leaves: int) -> StaticPopulation:
    """Trees, the first ``with_leaves`` of which have bloomed."""
    attributes = tuple({"has_leaves": index < with_leaves} for index in range(len(boxes)))
    return StaticPopulation(category="tree", boxes=tuple(boxes), attributes=attributes)


def _spread_boxes(count: int, y: float, width: float, box_size: float = 40.0,
                  frame_width: float = 1280.0) -> list[BoundingBox]:
    """Evenly spread ``count`` boxes along a horizontal band."""
    if count <= 0:
        return []
    spacing = (frame_width - 2 * width) / max(1, count)
    return [BoundingBox(width + index * spacing, y, box_size, box_size) for index in range(count)]


def campus_scenario(*, scale: float = 1.0, duration_hours: float = 12.0, seed: int = 7) -> Scenario:
    """Campus walkway: pedestrians crossing plus a bench area with lingerers.

    The paper's campus stream contains roughly 1.4k people over 12 hours with
    a masked maximum persistence of about 49 seconds and an unmasked maximum
    around five times larger (Fig. 4a).
    """
    duration = duration_hours * SECONDS_PER_HOUR
    width, height = 1280.0, 720.0
    bench_zone = BoundingBox(40.0, 420.0, 240.0, 260.0)
    light_box = BoundingBox(620.0, 40.0, 30.0, 70.0)
    red_duration, green_duration = 75.0, 45.0

    west_routes = (
        Route("west-south-north", BoundingBox(380.0, 660.0, 80.0, 50.0),
              BoundingBox(380.0, 10.0, 80.0, 50.0), 1.0, "south", "north"),
        Route("west-north-south", BoundingBox(380.0, 10.0, 80.0, 50.0),
              BoundingBox(380.0, 660.0, 80.0, 50.0), 1.0, "north", "south"),
    )
    east_routes = (
        Route("east-south-north", BoundingBox(820.0, 660.0, 80.0, 50.0),
              BoundingBox(820.0, 10.0, 80.0, 50.0), 1.0, "south", "north"),
        Route("east-north-south", BoundingBox(820.0, 10.0, 80.0, 50.0),
              BoundingBox(820.0, 660.0, 80.0, 50.0), 1.0, "north", "south"),
    )

    config = SceneConfig(
        name="campus",
        duration=duration,
        fps=2.0,
        width=width,
        height=height,
        crossings=[
            CrossingPopulation(
                category="person",
                expected_count=700.0 * scale * (duration_hours / 12.0),
                routes=west_routes,
                duration_range=(18.0, 49.0),
                hourly_weights=DAYTIME_PROFILE,
                revisit_probability=0.08,
                box_size=(30.0, 60.0),
                label="west-walkway",
            ),
            CrossingPopulation(
                category="person",
                expected_count=700.0 * scale * (duration_hours / 12.0),
                routes=east_routes,
                duration_range=(18.0, 49.0),
                hourly_weights=DAYTIME_PROFILE,
                revisit_probability=0.08,
                box_size=(30.0, 60.0),
                label="east-walkway",
            ),
        ],
        lingerers=[
            LingerPopulation(
                category="person",
                count=max(1, int(round(12 * scale * (duration_hours / 12.0)))),
                zone=bench_zone,
                duration_range=(130.0, 245.0),
                box_size=(30.0, 60.0),
                label="bench",
            ),
        ],
        statics=[
            _tree_population(_spread_boxes(15, 100.0, 60.0), with_leaves=15),
            StaticPopulation(category="traffic_light", boxes=(light_box,),
                             attributes=({"kind": "pedestrian"},),
                             dynamic_attribute_factory=_traffic_light_factory(
                                 red_duration, green_duration)),
        ],
        metadata={"meters_per_pixel": 0.05, "location": "campus walkway"},
    )
    video = SceneSimulator(config, seed=seed).generate()
    region_scheme = RegionScheme(
        name="crosswalks",
        regions=(
            Region("west-crosswalk", BoundingBox(0.0, 0.0, 640.0, height)),
            Region("east-crosswalk", BoundingBox(640.0, 0.0, 640.0, height)),
        ),
        boundary=BoundaryType.SOFT,
    )
    return Scenario(
        name="campus",
        video=video,
        detector_config=DetectorConfig(miss_rate=0.29, position_jitter=3.0),
        tracker_config=TrackerConfig(max_age=16, min_hits=2, iou_threshold=0.1),
        region_scheme=region_scheme,
        owner_mask=Mask(name="campus-bench-mask", regions=(bench_zone,)),
        linger_zones=(bench_zone,),
        traffic_light_box=light_box,
        red_light_duration=red_duration,
        metadata={"expected_people": 1400 * scale},
    )


def highway_scenario(*, scale: float = 1.0, duration_hours: float = 12.0, seed: int = 11) -> Scenario:
    """Highway camera: two directions of vehicle traffic plus a parking shoulder.

    Cars normally cross in 5-20 seconds; a congested minority takes several
    minutes, and cars parked on the shoulder are visible for hours — the
    source of the ~10x masked persistence reduction of Fig. 4b.
    """
    duration = duration_hours * SECONDS_PER_HOUR
    width, height = 1280.0, 720.0
    shoulder_zone = BoundingBox(0.0, 580.0, width, 140.0)
    light_box = BoundingBox(1180.0, 30.0, 30.0, 70.0)
    red_duration, green_duration = 50.0, 70.0

    eastbound = (
        Route("eastbound", BoundingBox(0.0, 180.0, 60.0, 60.0),
              BoundingBox(1220.0, 180.0, 60.0, 60.0), 1.0, "west", "east"),
    )
    westbound = (
        Route("westbound", BoundingBox(1220.0, 400.0, 60.0, 60.0),
              BoundingBox(0.0, 400.0, 60.0, 60.0), 1.0, "east", "west"),
    )
    car_factory = _car_attribute_factory("HWY")

    config = SceneConfig(
        name="highway",
        duration=duration,
        fps=2.0,
        width=width,
        height=height,
        crossings=[
            CrossingPopulation(
                category="car",
                expected_count=2500.0 * scale * (duration_hours / 12.0),
                routes=eastbound,
                duration_range=(5.0, 20.0),
                tail_probability=0.02,
                tail_duration_range=(60.0, 370.0),
                hourly_weights=DAYTIME_PROFILE,
                box_size=(70.0, 40.0),
                attribute_factory=car_factory,
                label="eastbound",
            ),
            CrossingPopulation(
                category="car",
                expected_count=2300.0 * scale * (duration_hours / 12.0),
                routes=westbound,
                duration_range=(5.0, 20.0),
                tail_probability=0.02,
                tail_duration_range=(60.0, 370.0),
                hourly_weights=DAYTIME_PROFILE,
                box_size=(70.0, 40.0),
                attribute_factory=car_factory,
                label="westbound",
            ),
        ],
        lingerers=[
            LingerPopulation(
                category="car",
                count=max(1, int(round(10 * scale * (duration_hours / 12.0)))),
                zone=shoulder_zone,
                duration_range=(1800.0, 3600.0),
                box_size=(70.0, 40.0),
                attribute_factory=car_factory,
                label="shoulder-parking",
            ),
        ],
        statics=[
            _tree_population(_spread_boxes(7, 60.0, 80.0), with_leaves=3),
            StaticPopulation(category="traffic_light", boxes=(light_box,),
                             attributes=({"kind": "ramp-meter"},),
                             dynamic_attribute_factory=_traffic_light_factory(
                                 red_duration, green_duration)),
        ],
        metadata={"meters_per_pixel": 0.12, "location": "highway overpass"},
    )
    video = SceneSimulator(config, seed=seed).generate()
    region_scheme = RegionScheme(
        name="directions",
        regions=(
            Region("eastbound", BoundingBox(0.0, 0.0, width, 360.0)),
            Region("westbound", BoundingBox(0.0, 360.0, width, 360.0)),
        ),
        boundary=BoundaryType.HARD,
    )
    return Scenario(
        name="highway",
        video=video,
        detector_config=DetectorConfig(miss_rate=0.05, position_jitter=3.0),
        tracker_config=TrackerConfig(max_age=8, min_hits=3, iou_threshold=0.1),
        region_scheme=region_scheme,
        owner_mask=Mask(name="highway-shoulder-mask", regions=(shoulder_zone,)),
        linger_zones=(shoulder_zone,),
        traffic_light_box=light_box,
        red_light_duration=red_duration,
        metadata={"expected_cars": 4800 * scale},
    )


def urban_scenario(*, scale: float = 1.0, duration_hours: float = 12.0, seed: int = 13) -> Scenario:
    """Urban intersection: four crosswalks, a plaza with lingerers, poor detection.

    The paper's urban stream is the hardest for the detector (76% of objects
    missed in a frame, Fig. 2) yet tracking still produces a conservative
    maximum-duration estimate (Table 1).
    """
    duration = duration_hours * SECONDS_PER_HOUR
    width, height = 1280.0, 720.0
    plaza_zone = BoundingBox(1000.0, 480.0, 280.0, 240.0)
    light_box = BoundingBox(640.0, 30.0, 30.0, 70.0)
    red_duration, green_duration = 100.0, 60.0

    crosswalk_routes = {
        "north": (
            Route("north-we", BoundingBox(320.0, 80.0, 60.0, 50.0),
                  BoundingBox(900.0, 80.0, 60.0, 50.0), 1.0, "west", "east"),
            Route("north-ew", BoundingBox(900.0, 80.0, 60.0, 50.0),
                  BoundingBox(320.0, 80.0, 60.0, 50.0), 1.0, "east", "west"),
        ),
        "south": (
            Route("south-we", BoundingBox(320.0, 600.0, 60.0, 50.0),
                  BoundingBox(900.0, 600.0, 60.0, 50.0), 1.0, "west", "east"),
            Route("south-ew", BoundingBox(900.0, 600.0, 60.0, 50.0),
                  BoundingBox(320.0, 600.0, 60.0, 50.0), 1.0, "east", "west"),
        ),
        "west": (
            Route("west-sn", BoundingBox(200.0, 560.0, 60.0, 50.0),
                  BoundingBox(200.0, 120.0, 60.0, 50.0), 1.0, "south", "north"),
            Route("west-ns", BoundingBox(200.0, 120.0, 60.0, 50.0),
                  BoundingBox(200.0, 560.0, 60.0, 50.0), 1.0, "north", "south"),
        ),
        "east": (
            Route("east-sn", BoundingBox(1020.0, 560.0, 60.0, 50.0),
                  BoundingBox(1020.0, 120.0, 60.0, 50.0), 1.0, "south", "north"),
            Route("east-ns", BoundingBox(1020.0, 120.0, 60.0, 50.0),
                  BoundingBox(1020.0, 560.0, 60.0, 50.0), 1.0, "north", "south"),
        ),
    }
    crossings = [
        CrossingPopulation(
            category="person",
            expected_count=1100.0 * scale * (duration_hours / 12.0),
            routes=routes,
            duration_range=(15.0, 200.0),
            hourly_weights=DAYTIME_PROFILE,
            revisit_probability=0.05,
            box_size=(28.0, 56.0),
            label=f"crosswalk-{name}",
        )
        for name, routes in crosswalk_routes.items()
    ]

    config = SceneConfig(
        name="urban",
        duration=duration,
        fps=2.0,
        width=width,
        height=height,
        crossings=crossings,
        lingerers=[
            LingerPopulation(
                category="person",
                count=max(1, int(round(25 * scale * (duration_hours / 12.0)))),
                zone=plaza_zone,
                duration_range=(220.0, 340.0),
                box_size=(28.0, 56.0),
                label="plaza",
            ),
        ],
        statics=[
            _tree_population(_spread_boxes(6, 10.0, 100.0), with_leaves=4),
            StaticPopulation(category="traffic_light", boxes=(light_box,),
                             attributes=({"kind": "intersection"},),
                             dynamic_attribute_factory=_traffic_light_factory(
                                 red_duration, green_duration)),
        ],
        metadata={"meters_per_pixel": 0.06, "location": "urban intersection"},
    )
    video = SceneSimulator(config, seed=seed).generate()
    region_scheme = RegionScheme(
        name="crosswalks",
        regions=(
            Region("north-crosswalk", BoundingBox(260.0, 0.0, 760.0, 180.0)),
            Region("south-crosswalk", BoundingBox(260.0, 540.0, 760.0, 180.0)),
            Region("west-crosswalk", BoundingBox(0.0, 0.0, 260.0, height)),
            Region("east-crosswalk", BoundingBox(1020.0, 0.0, 260.0, height)),
        ),
        boundary=BoundaryType.SOFT,
    )
    return Scenario(
        name="urban",
        video=video,
        detector_config=DetectorConfig(miss_rate=0.76, position_jitter=3.0),
        tracker_config=TrackerConfig(max_age=32, min_hits=2, iou_threshold=0.1),
        region_scheme=region_scheme,
        owner_mask=Mask(name="urban-plaza-mask", regions=(plaza_zone,)),
        linger_zones=(plaza_zone,),
        traffic_light_box=light_box,
        red_light_duration=red_duration,
        metadata={"expected_people": 4300 * scale},
    )


def _extended_scenario(name: str, *, category: str, expected_count: float,
                       crossing_range: tuple[float, float],
                       linger_count: int, linger_range: tuple[float, float],
                       linger_zone: BoundingBox, miss_rate: float,
                       duration_hours: float, seed: int) -> Scenario:
    """Shared builder for the BlazeIt / MIRIS style presets of Appendix F."""
    duration = duration_hours * SECONDS_PER_HOUR
    width, height = 1280.0, 720.0
    routes = (
        Route("left-right", BoundingBox(0.0, 300.0, 60.0, 60.0),
              BoundingBox(1220.0, 300.0, 60.0, 60.0), 1.0, "west", "east"),
        Route("right-left", BoundingBox(1220.0, 360.0, 60.0, 60.0),
              BoundingBox(0.0, 360.0, 60.0, 60.0), 1.0, "east", "west"),
    )
    attribute_factory = _car_attribute_factory(name.upper()[:3]) if category in ("car", "taxi") else None
    config = SceneConfig(
        name=name,
        duration=duration,
        fps=2.0,
        width=width,
        height=height,
        crossings=[
            CrossingPopulation(
                category=category,
                expected_count=expected_count,
                routes=routes,
                duration_range=crossing_range,
                hourly_weights=DAYTIME_PROFILE,
                box_size=(40.0, 50.0),
                attribute_factory=attribute_factory,
            ),
        ],
        lingerers=[
            LingerPopulation(
                category=category,
                count=linger_count,
                zone=linger_zone,
                duration_range=linger_range,
                box_size=(40.0, 50.0),
                attribute_factory=attribute_factory,
            ),
        ] if linger_count > 0 else [],
        metadata={"preset": "extended"},
    )
    video = SceneSimulator(config, seed=seed).generate()
    return Scenario(
        name=name,
        video=video,
        detector_config=DetectorConfig(miss_rate=miss_rate, position_jitter=3.0),
        tracker_config=TrackerConfig(max_age=16, min_hits=2, iou_threshold=0.1),
        owner_mask=Mask(name=f"{name}-linger-mask", regions=(linger_zone,)),
        linger_zones=(linger_zone,),
        metadata={"source": "extended-dataset"},
    )


def grand_canal_scenario(*, duration_hours: float = 2.0, seed: int = 21) -> Scenario:
    """BlazeIt ``venice-grand-canal``: slow boats, a large fraction linger (moored)."""
    return _extended_scenario(
        "grand-canal", category="car", expected_count=300.0 * duration_hours / 2.0,
        crossing_range=(60.0, 300.0), linger_count=int(200 * duration_hours / 2.0),
        linger_range=(900.0, 2400.0),
        linger_zone=BoundingBox(0.0, 300.0, 1280.0, 420.0),
        miss_rate=0.15, duration_hours=duration_hours, seed=seed)


def venice_rialto_scenario(*, duration_hours: float = 2.0, seed: int = 22) -> Scenario:
    """BlazeIt ``venice-rialto``: busy pedestrian bridge, small moored area."""
    return _extended_scenario(
        "venice-rialto", category="person", expected_count=1500.0 * duration_hours / 2.0,
        crossing_range=(30.0, 180.0), linger_count=int(30 * duration_hours / 2.0),
        linger_range=(1200.0, 3000.0),
        linger_zone=BoundingBox(1100.0, 500.0, 180.0, 220.0),
        miss_rate=0.2, duration_hours=duration_hours, seed=seed)


def taipei_scenario(*, duration_hours: float = 2.0, seed: int = 23) -> Scenario:
    """BlazeIt ``taipei-hires``: dense vehicle traffic, stopped vehicles at a light."""
    return _extended_scenario(
        "taipei", category="car", expected_count=2000.0 * duration_hours / 2.0,
        crossing_range=(8.0, 60.0), linger_count=int(15 * duration_hours / 2.0),
        linger_range=(600.0, 1800.0),
        linger_zone=BoundingBox(400.0, 500.0, 480.0, 220.0),
        miss_rate=0.1, duration_hours=duration_hours, seed=seed)


def shibuya_scenario(*, duration_hours: float = 2.0, seed: int = 24) -> Scenario:
    """MIRIS ``shibuya``: very busy crossing, short waits at the curb."""
    return _extended_scenario(
        "shibuya", category="person", expected_count=2500.0 * duration_hours / 2.0,
        crossing_range=(20.0, 90.0), linger_count=int(40 * duration_hours / 2.0),
        linger_range=(300.0, 1200.0),
        linger_zone=BoundingBox(0.0, 560.0, 300.0, 160.0),
        miss_rate=0.25, duration_hours=duration_hours, seed=seed)


def beach_scenario(*, duration_hours: float = 2.0, seed: int = 25) -> Scenario:
    """MIRIS ``beach``: strollers plus sunbathers staying put for a long time."""
    return _extended_scenario(
        "beach", category="person", expected_count=600.0 * duration_hours / 2.0,
        crossing_range=(60.0, 240.0), linger_count=int(30 * duration_hours / 2.0),
        linger_range=(1200.0, 2600.0),
        linger_zone=BoundingBox(200.0, 400.0, 400.0, 300.0),
        miss_rate=0.2, duration_hours=duration_hours, seed=seed)


def warsaw_scenario(*, duration_hours: float = 2.0, seed: int = 26) -> Scenario:
    """MIRIS ``warsaw``: vehicles at a junction with a stopped-traffic pocket."""
    return _extended_scenario(
        "warsaw", category="car", expected_count=1200.0 * duration_hours / 2.0,
        crossing_range=(10.0, 90.0), linger_count=int(20 * duration_hours / 2.0),
        linger_range=(900.0, 2000.0),
        linger_zone=BoundingBox(900.0, 100.0, 380.0, 260.0),
        miss_rate=0.12, duration_hours=duration_hours, seed=seed)


def uav_scenario(*, duration_hours: float = 1.0, seed: int = 27) -> Scenario:
    """MIRIS ``uav``: aerial footage, sparse objects, large lingering footprint."""
    return _extended_scenario(
        "uav", category="car", expected_count=200.0 * duration_hours,
        crossing_range=(20.0, 120.0), linger_count=int(40 * duration_hours),
        linger_range=(400.0, 1500.0),
        linger_zone=BoundingBox(200.0, 100.0, 900.0, 400.0),
        miss_rate=0.3, duration_hours=duration_hours, seed=seed)


_PRIMARY_BUILDERS: dict[str, Callable[..., Scenario]] = {
    "campus": campus_scenario,
    "highway": highway_scenario,
    "urban": urban_scenario,
}

_EXTENDED_BUILDERS: dict[str, Callable[..., Scenario]] = {
    "grand-canal": grand_canal_scenario,
    "venice-rialto": venice_rialto_scenario,
    "taipei": taipei_scenario,
    "shibuya": shibuya_scenario,
    "beach": beach_scenario,
    "warsaw": warsaw_scenario,
    "uav": uav_scenario,
}

SCENARIO_NAMES: tuple[str, ...] = tuple(_PRIMARY_BUILDERS) + tuple(_EXTENDED_BUILDERS)


def build_scenario(name: str, **kwargs: Any) -> Scenario:
    """Build any scenario preset by name."""
    builders = {**_PRIMARY_BUILDERS, **_EXTENDED_BUILDERS}
    if name not in builders:
        raise ValueError(f"unknown scenario {name!r}; choose from {sorted(builders)}")
    return builders[name](**kwargs)
