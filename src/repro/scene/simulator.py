"""Synthetic scene generator.

The simulator produces a :class:`repro.video.video.SyntheticVideo` populated
with ground-truth objects drawn from three kinds of populations:

* **crossing populations** — objects (people, cars, taxis) that enter along a
  route, traverse the scene, and leave; arrival times follow a diurnal
  profile, and durations follow a bounded distribution with an optional heavy
  tail (slow walkers, congested traffic);
* **lingering populations** — objects that stay in a fixed zone for a long
  time (people on benches, parked cars); these create the heavy-tailed
  persistence distributions of Fig. 4 and the motivation for masking;
* **static populations** — non-private scenery such as trees and traffic
  lights, with static or time-varying observable attributes.

Everything is generated from named random streams derived from a single seed
(see :mod:`repro.utils.rng`), so a scenario is fully reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from repro.scene.objects import Appearance, DynamicAttribute, SceneObject
from repro.scene.trajectory import LinearTrajectory, StationaryTrajectory
from repro.utils.rng import RandomSource
from repro.utils.timebase import SECONDS_PER_HOUR, TimeInterval
from repro.video.geometry import BoundingBox
from repro.video.video import SyntheticVideo

AttributeFactory = Callable[[np.random.Generator, int], dict[str, Any]]


@dataclass(frozen=True)
class Route:
    """A path through the scene from an entry box to an exit box."""

    label: str
    entry: BoundingBox
    exit: BoundingBox
    weight: float = 1.0
    entry_side: str = ""
    exit_side: str = ""


@dataclass(frozen=True)
class CrossingPopulation:
    """Objects that traverse the scene along one of a set of routes."""

    category: str
    expected_count: float
    routes: tuple[Route, ...]
    duration_range: tuple[float, float] = (10.0, 60.0)
    tail_probability: float = 0.0
    tail_duration_range: tuple[float, float] = (60.0, 300.0)
    hourly_weights: tuple[float, ...] | None = None
    revisit_probability: float = 0.0
    revisit_gap_range: tuple[float, float] = (1800.0, 14400.0)
    box_size: tuple[float, float] = (20.0, 45.0)
    attribute_factory: AttributeFactory | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.expected_count < 0:
            raise ValueError("expected_count must be non-negative")
        if not self.routes:
            raise ValueError("a crossing population needs at least one route")
        if self.duration_range[0] <= 0 or self.duration_range[1] < self.duration_range[0]:
            raise ValueError("invalid duration_range")


@dataclass(frozen=True)
class LingerPopulation:
    """Objects that remain within a fixed zone for a long time."""

    category: str
    count: int
    zone: BoundingBox
    duration_range: tuple[float, float] = (600.0, 3600.0)
    box_size: tuple[float, float] = (20.0, 45.0)
    attribute_factory: AttributeFactory | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("count must be non-negative")
        if self.duration_range[0] <= 0 or self.duration_range[1] < self.duration_range[0]:
            raise ValueError("invalid duration_range")


@dataclass(frozen=True)
class StaticPopulation:
    """Non-private scenery present for the whole video (trees, traffic lights)."""

    category: str
    boxes: tuple[BoundingBox, ...]
    attributes: tuple[dict[str, Any], ...] = ()
    #: Factory of declarative attribute schedules per object index (closures
    #: are still accepted, but make the resulting scene unpicklable).
    dynamic_attribute_factory: Callable[[int], dict[str, DynamicAttribute]] | None = None
    label: str = ""


@dataclass
class SceneConfig:
    """Full description of a synthetic scenario."""

    name: str
    duration: float
    fps: float = 2.0
    width: float = 1280.0
    height: float = 720.0
    crossings: list[CrossingPopulation] = field(default_factory=list)
    lingerers: list[LingerPopulation] = field(default_factory=list)
    statics: list[StaticPopulation] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)


def _sample_hour(rng: np.random.Generator, weights: Sequence[float] | None,
                 duration: float) -> float:
    """Sample an arrival time in [0, duration) following hourly weights."""
    if weights is None:
        return float(rng.uniform(0.0, duration))
    num_hours = max(1, int(np.ceil(duration / SECONDS_PER_HOUR)))
    hourly = np.asarray(list(weights), dtype=float)
    if hourly.size < num_hours:
        hourly = np.resize(hourly, num_hours)
    else:
        hourly = hourly[:num_hours]
    total = hourly.sum()
    if total <= 0:
        return float(rng.uniform(0.0, duration))
    hour = int(rng.choice(num_hours, p=hourly / total))
    hour_start = hour * SECONDS_PER_HOUR
    hour_end = min(duration, hour_start + SECONDS_PER_HOUR)
    return float(rng.uniform(hour_start, hour_end))


def _route_trajectory(route: Route, box_size: tuple[float, float], duration: float,
                      rng: np.random.Generator) -> LinearTrajectory:
    """Build a linear trajectory along a route with slight lateral variation."""
    width, height = box_size
    jitter_x = float(rng.uniform(-0.4, 0.4)) * max(route.entry.width, 1.0)
    jitter_y = float(rng.uniform(-0.4, 0.4)) * max(route.entry.height, 1.0)
    entry_center = route.entry.center
    exit_center = route.exit.center
    start = BoundingBox(entry_center.x - width / 2 + jitter_x,
                        entry_center.y - height / 2 + jitter_y, width, height)
    end = BoundingBox(exit_center.x - width / 2 + jitter_x,
                      exit_center.y - height / 2 + jitter_y, width, height)
    return LinearTrajectory(start=start, end=end, duration=duration)


class SceneSimulator:
    """Generate a :class:`SyntheticVideo` from a :class:`SceneConfig`."""

    def __init__(self, config: SceneConfig, *, seed: int = 0) -> None:
        self.config = config
        self.random = RandomSource(seed, path=f"scene/{config.name}")
        self._next_object_index = 0

    def _new_object_id(self, prefix: str) -> str:
        self._next_object_index += 1
        return f"{self.config.name}/{prefix}/{self._next_object_index:06d}"

    def _sample_duration(self, population: CrossingPopulation,
                         rng: np.random.Generator) -> float:
        """Sample a crossing duration, with an optional heavy tail."""
        if population.tail_probability > 0 and rng.random() < population.tail_probability:
            low, high = population.tail_duration_range
        else:
            low, high = population.duration_range
        return float(rng.uniform(low, high))

    def _pick_route(self, population: CrossingPopulation, rng: np.random.Generator) -> Route:
        weights = np.asarray([route.weight for route in population.routes], dtype=float)
        probabilities = weights / weights.sum()
        index = int(rng.choice(len(population.routes), p=probabilities))
        return population.routes[index]

    def _generate_crossings(self, population: CrossingPopulation) -> list[SceneObject]:
        stream_name = population.label or f"crossing/{population.category}"
        rng = self.random.stream(stream_name)
        count = int(rng.poisson(population.expected_count)) if population.expected_count > 0 else 0
        objects: list[SceneObject] = []
        for index in range(count):
            route = self._pick_route(population, rng)
            arrival = _sample_hour(rng, population.hourly_weights, self.config.duration)
            duration = self._sample_duration(population, rng)
            end = min(self.config.duration, arrival + duration)
            if end - arrival < 1e-6:
                continue
            appearances = [Appearance(
                interval=TimeInterval(arrival, end),
                trajectory=_route_trajectory(route, population.box_size, end - arrival, rng),
            )]
            if population.revisit_probability > 0 and rng.random() < population.revisit_probability:
                gap = float(rng.uniform(*population.revisit_gap_range))
                second_start = end + gap
                second_duration = self._sample_duration(population, rng)
                second_end = min(self.config.duration, second_start + second_duration)
                if second_end - second_start > 1e-6:
                    return_route = self._pick_route(population, rng)
                    appearances.append(Appearance(
                        interval=TimeInterval(second_start, second_end),
                        trajectory=_route_trajectory(return_route, population.box_size,
                                                     second_end - second_start, rng),
                    ))
            attributes: dict[str, Any] = {
                "route": route.label,
                "entry_side": route.entry_side,
                "exit_side": route.exit_side,
            }
            if population.attribute_factory is not None:
                attributes.update(population.attribute_factory(rng, index))
            objects.append(SceneObject(
                object_id=self._new_object_id(population.category),
                category=population.category,
                appearances=appearances,
                attributes=attributes,
            ))
        return objects

    def _generate_lingerers(self, population: LingerPopulation) -> list[SceneObject]:
        stream_name = population.label or f"linger/{population.category}"
        rng = self.random.stream(stream_name)
        objects: list[SceneObject] = []
        width, height = population.box_size
        for index in range(population.count):
            duration = float(rng.uniform(*population.duration_range))
            latest_start = max(0.0, self.config.duration - duration)
            start = float(rng.uniform(0.0, latest_start)) if latest_start > 0 else 0.0
            end = min(self.config.duration, start + duration)
            x = float(rng.uniform(population.zone.x,
                                  max(population.zone.x, population.zone.x2 - width)))
            y = float(rng.uniform(population.zone.y,
                                  max(population.zone.y, population.zone.y2 - height)))
            attributes: dict[str, Any] = {"lingering": True}
            if population.attribute_factory is not None:
                attributes.update(population.attribute_factory(rng, index))
            objects.append(SceneObject(
                object_id=self._new_object_id(f"linger-{population.category}"),
                category=population.category,
                appearances=[Appearance(
                    interval=TimeInterval(start, end),
                    trajectory=StationaryTrajectory(BoundingBox(x, y, width, height)),
                )],
                attributes=attributes,
            ))
        return objects

    def _generate_statics(self, population: StaticPopulation) -> list[SceneObject]:
        objects: list[SceneObject] = []
        for index, box in enumerate(population.boxes):
            attributes = dict(population.attributes[index]) if index < len(population.attributes) else {}
            dynamic = {}
            if population.dynamic_attribute_factory is not None:
                dynamic = population.dynamic_attribute_factory(index)
            objects.append(SceneObject(
                object_id=self._new_object_id(population.category),
                category=population.category,
                appearances=[Appearance(
                    interval=TimeInterval(0.0, self.config.duration),
                    trajectory=StationaryTrajectory(box),
                )],
                attributes=attributes,
                dynamic_attributes=dynamic,
            ))
        return objects

    def generate(self) -> SyntheticVideo:
        """Generate the full synthetic video for this configuration."""
        video = SyntheticVideo(
            name=self.config.name,
            fps=self.config.fps,
            width=self.config.width,
            height=self.config.height,
            duration=self.config.duration,
            metadata=dict(self.config.metadata),
        )
        objects: list[SceneObject] = []
        for population in self.config.crossings:
            objects.extend(self._generate_crossings(population))
        for population in self.config.lingerers:
            objects.extend(self._generate_lingerers(population))
        for population in self.config.statics:
            objects.extend(self._generate_statics(population))
        video.add_objects(objects)
        return video
