"""Synthetic scene substrate standing in for the paper's real videos."""

from repro.scene.objects import Appearance, SceneObject
from repro.scene.schedules import (
    AttributeSchedule,
    ConstantSchedule,
    CyclicSchedule,
    periodic_two_state,
)
from repro.scene.trajectory import (
    LinearTrajectory,
    StationaryTrajectory,
    Trajectory,
    WaypointTrajectory,
)
from repro.scene.simulator import SceneConfig, SceneSimulator
from repro.scene.scenarios import (
    SCENARIO_NAMES,
    build_scenario,
    campus_scenario,
    highway_scenario,
    urban_scenario,
)
from repro.scene.porto import PortoConfig, PortoDataset, generate_porto_dataset

__all__ = [
    "Appearance",
    "SceneObject",
    "AttributeSchedule",
    "ConstantSchedule",
    "CyclicSchedule",
    "periodic_two_state",
    "Trajectory",
    "LinearTrajectory",
    "StationaryTrajectory",
    "WaypointTrajectory",
    "SceneConfig",
    "SceneSimulator",
    "SCENARIO_NAMES",
    "build_scenario",
    "campus_scenario",
    "highway_scenario",
    "urban_scenario",
    "PortoConfig",
    "PortoDataset",
    "generate_porto_dataset",
]
