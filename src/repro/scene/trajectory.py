"""Trajectories describe where an object is within the frame over time.

A trajectory maps a timestamp (relative to the start of the *appearance* it
belongs to) to a bounding box.  Trajectories are purely geometric: visibility
windows are handled by :class:`repro.scene.objects.Appearance`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

from repro.video.geometry import BoundingBox, interpolate_boxes


class Trajectory(ABC):
    """Abstract mapping from elapsed time to a bounding box."""

    @abstractmethod
    def box_at(self, elapsed: float) -> BoundingBox:
        """Return the object's bounding box ``elapsed`` seconds into the appearance."""

    @abstractmethod
    def duration_hint(self) -> float | None:
        """Nominal duration the trajectory was designed for, if any."""


@dataclass(frozen=True)
class StationaryTrajectory(Trajectory):
    """An object that does not move (e.g. a parked car, a tree, a traffic light)."""

    box: BoundingBox

    def box_at(self, elapsed: float) -> BoundingBox:
        return self.box

    def duration_hint(self) -> float | None:
        return None


@dataclass(frozen=True)
class LinearTrajectory(Trajectory):
    """Constant-velocity motion between a start and end box over ``duration`` seconds.

    Before time zero the object sits at the start box and after ``duration``
    it sits at the end box; appearances normally clip to [0, duration].
    """

    start: BoundingBox
    end: BoundingBox
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("trajectory duration must be positive")

    def box_at(self, elapsed: float) -> BoundingBox:
        fraction = elapsed / self.duration
        return interpolate_boxes(self.start, self.end, fraction)

    def duration_hint(self) -> float | None:
        return self.duration

    def speed_pixels_per_second(self) -> float:
        """Speed of the box center in pixels per second."""
        return self.start.center.distance_to(self.end.center) / self.duration


@dataclass(frozen=True)
class WaypointTrajectory(Trajectory):
    """Piecewise-linear motion through a sequence of timed waypoints.

    ``waypoints`` is a sequence of ``(elapsed_seconds, box)`` pairs sorted by
    time; positions between waypoints are linearly interpolated, and positions
    outside the covered range clamp to the first/last waypoint.
    """

    waypoints: tuple[tuple[float, BoundingBox], ...]

    def __init__(self, waypoints: Sequence[tuple[float, BoundingBox]]) -> None:
        ordered = tuple(sorted(waypoints, key=lambda pair: pair[0]))
        if len(ordered) < 2:
            raise ValueError("a waypoint trajectory needs at least two waypoints")
        object.__setattr__(self, "waypoints", ordered)

    def box_at(self, elapsed: float) -> BoundingBox:
        first_time, first_box = self.waypoints[0]
        last_time, last_box = self.waypoints[-1]
        if elapsed <= first_time:
            return first_box
        if elapsed >= last_time:
            return last_box
        for (t0, box0), (t1, box1) in zip(self.waypoints, self.waypoints[1:]):
            if t0 <= elapsed <= t1:
                if t1 == t0:
                    return box1
                return interpolate_boxes(box0, box1, (elapsed - t0) / (t1 - t0))
        return last_box  # unreachable, kept for safety

    def duration_hint(self) -> float | None:
        return self.waypoints[-1][0] - self.waypoints[0][0]
