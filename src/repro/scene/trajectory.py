"""Trajectories describe where an object is within the frame over time.

A trajectory maps a timestamp (relative to the start of the *appearance* it
belongs to) to a bounding box.  Trajectories are purely geometric: visibility
windows are handled by :class:`repro.scene.objects.Appearance`.

Every trajectory also evaluates a whole *batch* of timestamps at once via
:meth:`Trajectory.boxes_at`: the columnar frame pipeline renders a chunk's
frames as one broadcasted array op per appearance instead of one Python call
per frame.  The vectorized implementations mirror the scalar formulas
operation-for-operation, so both paths produce bit-identical boxes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.video.geometry import BoundingBox, interpolate_boxes


class Trajectory(ABC):
    """Abstract mapping from elapsed time to a bounding box."""

    @abstractmethod
    def box_at(self, elapsed: float) -> BoundingBox:
        """Return the object's bounding box ``elapsed`` seconds into the appearance."""

    @abstractmethod
    def duration_hint(self) -> float | None:
        """Nominal duration the trajectory was designed for, if any."""

    def boxes_at(self, elapsed: np.ndarray) -> np.ndarray:
        """Bounding boxes for a batch of elapsed times as an ``(n, 4)`` array.

        Rows are ``[x, y, width, height]``.  The base implementation falls
        back to per-element :meth:`box_at` so custom trajectories keep
        working; the built-in trajectories override it with broadcasted
        array math.
        """
        elapsed = np.asarray(elapsed, dtype=np.float64)
        out = np.empty((elapsed.size, 4), dtype=np.float64)
        for row, value in enumerate(elapsed.tolist()):
            box = self.box_at(value)
            out[row, 0] = box.x
            out[row, 1] = box.y
            out[row, 2] = box.width
            out[row, 3] = box.height
        return out


@dataclass(frozen=True)
class StationaryTrajectory(Trajectory):
    """An object that does not move (e.g. a parked car, a tree, a traffic light)."""

    box: BoundingBox

    def box_at(self, elapsed: float) -> BoundingBox:
        return self.box

    def boxes_at(self, elapsed: np.ndarray) -> np.ndarray:
        elapsed = np.asarray(elapsed, dtype=np.float64)
        out = np.empty((elapsed.size, 4), dtype=np.float64)
        out[:] = (self.box.x, self.box.y, self.box.width, self.box.height)
        return out

    def duration_hint(self) -> float | None:
        return None


@dataclass(frozen=True)
class LinearTrajectory(Trajectory):
    """Constant-velocity motion between a start and end box over ``duration`` seconds.

    Before time zero the object sits at the start box and after ``duration``
    it sits at the end box; appearances normally clip to [0, duration].
    """

    start: BoundingBox
    end: BoundingBox
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("trajectory duration must be positive")

    def box_at(self, elapsed: float) -> BoundingBox:
        fraction = elapsed / self.duration
        return interpolate_boxes(self.start, self.end, fraction)

    def boxes_at(self, elapsed: np.ndarray) -> np.ndarray:
        elapsed = np.asarray(elapsed, dtype=np.float64)
        # minimum/maximum instead of np.clip: same values, less dispatch.
        fraction = np.minimum(np.maximum(elapsed / self.duration, 0.0), 1.0)
        start, delta = self._interpolation_vectors()
        # One broadcast multiply-add per batch; elementwise identical to the
        # per-column `start + (end - start) * fraction` arithmetic.
        return start + delta * fraction[:, np.newaxis]

    def _interpolation_vectors(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached (start, end - start) rows backing the batch interpolation."""
        vectors = getattr(self, "_vectors", None)
        if vectors is None:
            start = np.array([self.start.x, self.start.y,
                              self.start.width, self.start.height])
            end = np.array([self.end.x, self.end.y, self.end.width, self.end.height])
            vectors = (start, end - start)
            object.__setattr__(self, "_vectors", vectors)
        return vectors

    def duration_hint(self) -> float | None:
        return self.duration

    def speed_pixels_per_second(self) -> float:
        """Speed of the box center in pixels per second."""
        return self.start.center.distance_to(self.end.center) / self.duration


@dataclass(frozen=True)
class WaypointTrajectory(Trajectory):
    """Piecewise-linear motion through a sequence of timed waypoints.

    ``waypoints`` is a sequence of ``(elapsed_seconds, box)`` pairs sorted by
    time; positions between waypoints are linearly interpolated, and positions
    outside the covered range clamp to the first/last waypoint.
    """

    waypoints: tuple[tuple[float, BoundingBox], ...]

    def __init__(self, waypoints: Sequence[tuple[float, BoundingBox]]) -> None:
        ordered = tuple(sorted(waypoints, key=lambda pair: pair[0]))
        if len(ordered) < 2:
            raise ValueError("a waypoint trajectory needs at least two waypoints")
        object.__setattr__(self, "waypoints", ordered)

    def box_at(self, elapsed: float) -> BoundingBox:
        first_time, first_box = self.waypoints[0]
        last_time, last_box = self.waypoints[-1]
        if elapsed <= first_time:
            return first_box
        if elapsed >= last_time:
            return last_box
        for (t0, box0), (t1, box1) in zip(self.waypoints, self.waypoints[1:]):
            if t0 <= elapsed <= t1:
                if t1 == t0:
                    return box1
                return interpolate_boxes(box0, box1, (elapsed - t0) / (t1 - t0))
        return last_box  # unreachable, kept for safety

    def boxes_at(self, elapsed: np.ndarray) -> np.ndarray:
        elapsed = np.asarray(elapsed, dtype=np.float64)
        times = np.array([pair[0] for pair in self.waypoints], dtype=np.float64)
        coords = np.array([[box.x, box.y, box.width, box.height]
                           for _, box in self.waypoints], dtype=np.float64)
        # side='left' selects the segment ending at an exact waypoint time,
        # matching the scalar loop's first `t0 <= elapsed <= t1` pair.
        upper = np.clip(np.searchsorted(times, elapsed, side="left"), 1, len(times) - 1)
        lower = upper - 1
        t0 = times[lower]
        dt = times[upper] - t0
        safe_dt = np.where(dt > 0, dt, 1.0)
        fraction = np.clip((elapsed - t0) / safe_dt, 0.0, 1.0)
        # zero-length segments snap to the segment's end box (scalar: box1).
        fraction = np.where(dt > 0, fraction, 1.0)
        start = coords[lower]
        end = coords[upper]
        out = start + (end - start) * fraction[:, np.newaxis]
        # the scalar path returns boxes *exactly* (no interpolation
        # round-off) for zero-length segments and outside the covered range.
        zero_dt = dt <= 0
        if zero_dt.any():
            out[zero_dt] = end[zero_dt]
        out[elapsed <= times[0]] = coords[0]
        out[elapsed >= times[-1]] = coords[-1]
        return out

    def duration_hint(self) -> float | None:
        return self.waypoints[-1][0] - self.waypoints[0][0]
