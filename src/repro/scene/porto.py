"""Synthetic stand-in for the Porto taxi dataset (Case 2, queries Q4-Q6).

The paper emulates a city-wide camera network from the Porto taxi trajectory
dataset: 442 taxis over 1.5 years, converted into the set of timestamps each
taxi would have been visible to each of 105 cameras.  This module generates a
synthetic dataset with the same *shape*: taxis work daily shifts, pass
cameras at a Poisson rate during their shift, and each pass is visible to one
camera for a bounded duration.  Ground truth (working hours, per-day camera
visits, busiest camera) is retained so the evaluation can score Privid's
noisy answers.

The default configuration is scaled down (fewer taxis, cameras and days) so
the full Privid pipeline over it runs in seconds; ``PortoConfig.paper_scale``
restores the paper's dimensions for users with more patience.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.scene.objects import Appearance, SceneObject
from repro.scene.trajectory import StationaryTrajectory
from repro.utils.rng import RandomSource
from repro.utils.timebase import SECONDS_PER_DAY, SECONDS_PER_HOUR, TimeInterval
from repro.video.geometry import BoundingBox
from repro.video.video import SyntheticVideo


@dataclass(frozen=True)
class Sighting:
    """One taxi visible to one camera for a contiguous interval."""

    taxi_id: str
    camera: str
    interval: TimeInterval

    @property
    def day(self) -> int:
        """Day index (0-based) in which the sighting starts."""
        return int(self.interval.start // SECONDS_PER_DAY)


@dataclass(frozen=True)
class PortoConfig:
    """Parameters of the synthetic Porto-style camera network."""

    num_taxis: int = 40
    num_cameras: int = 12
    num_days: int = 28
    working_day_probability: float = 0.9
    mean_shift_hours: float = 5.9
    shift_hours_std: float = 1.2
    passes_per_hour: float = 1.5
    visibility_range: tuple[float, float] = (15.0, 200.0)
    seed: int = 31

    def __post_init__(self) -> None:
        if self.num_taxis <= 0 or self.num_cameras <= 0 or self.num_days <= 0:
            raise ValueError("taxis, cameras and days must all be positive")
        if not 0.0 <= self.working_day_probability <= 1.0:
            raise ValueError("working_day_probability must be in [0, 1]")
        if self.visibility_range[0] <= 0 or self.visibility_range[1] < self.visibility_range[0]:
            raise ValueError("invalid visibility_range")

    @classmethod
    def paper_scale(cls) -> "PortoConfig":
        """Configuration matching the paper's dataset dimensions."""
        return cls(num_taxis=442, num_cameras=105, num_days=547)

    @property
    def duration(self) -> float:
        """Total observation period in seconds."""
        return self.num_days * SECONDS_PER_DAY

    def camera_name(self, index: int) -> str:
        """Camera naming convention used by the paper (porto0, porto1, ...)."""
        return f"porto{index}"


@dataclass
class PortoDataset:
    """Generated sightings plus the ground truth needed to score queries."""

    config: PortoConfig
    sightings: list[Sighting] = field(default_factory=list)
    shift_hours: dict[tuple[str, int], float] = field(default_factory=dict)

    @property
    def camera_names(self) -> list[str]:
        """All camera names in index order."""
        return [self.config.camera_name(i) for i in range(self.config.num_cameras)]

    @property
    def taxi_ids(self) -> list[str]:
        """All taxi identifiers."""
        return [f"taxi{i:04d}" for i in range(self.config.num_taxis)]

    def sightings_for(self, camera: str) -> list[Sighting]:
        """Sightings recorded by one camera, ordered by start time."""
        selected = [sighting for sighting in self.sightings if sighting.camera == camera]
        selected.sort(key=lambda sighting: sighting.interval.start)
        return selected

    def max_visibility_duration(self, camera: str) -> float:
        """Ground-truth maximum single-sighting duration at a camera (its rho)."""
        durations = [s.interval.duration for s in self.sightings_for(camera)]
        return max(durations, default=0.0)

    def average_working_hours(self, cameras: Iterable[str]) -> float:
        """Ground truth for Q4: mean per-(taxi, day) working span seen by the cameras.

        For each taxi and day with at least one sighting at any of the given
        cameras, the working span is the time between the first and last such
        sighting; Q4 averages these spans (in hours).
        """
        camera_set = set(cameras)
        spans: dict[tuple[str, int], tuple[float, float]] = {}
        for sighting in self.sightings:
            if sighting.camera not in camera_set:
                continue
            key = (sighting.taxi_id, sighting.day)
            first, last = spans.get(key, (sighting.interval.start, sighting.interval.end))
            spans[key] = (min(first, sighting.interval.start), max(last, sighting.interval.end))
        if not spans:
            return 0.0
        hours = [(last - first) / SECONDS_PER_HOUR for first, last in spans.values()]
        return float(np.mean(hours))

    def average_taxis_traversing_both(self, camera_a: str, camera_b: str) -> float:
        """Ground truth for Q5: mean daily count of taxis seen by *both* cameras."""
        per_day_a: dict[int, set[str]] = {}
        per_day_b: dict[int, set[str]] = {}
        for sighting in self.sightings:
            if sighting.camera == camera_a:
                per_day_a.setdefault(sighting.day, set()).add(sighting.taxi_id)
            elif sighting.camera == camera_b:
                per_day_b.setdefault(sighting.day, set()).add(sighting.taxi_id)
        counts = []
        for day in range(self.config.num_days):
            both = per_day_a.get(day, set()) & per_day_b.get(day, set())
            counts.append(len(both))
        return float(np.mean(counts)) if counts else 0.0

    def daily_traffic(self, camera: str) -> float:
        """Ground truth mean daily unique-taxi count at a camera."""
        per_day: dict[int, set[str]] = {}
        for sighting in self.sightings:
            if sighting.camera == camera:
                per_day.setdefault(sighting.day, set()).add(sighting.taxi_id)
        if not per_day:
            return 0.0
        total = sum(len(taxis) for taxis in per_day.values())
        return total / self.config.num_days

    def busiest_camera(self) -> str:
        """Ground truth for Q6: the camera with the highest mean daily traffic."""
        return max(self.camera_names, key=self.daily_traffic)

    def to_video(self, camera: str, *, fps: float = 1.0 / 60.0) -> SyntheticVideo:
        """Materialise one camera's sightings as a synthetic video.

        Taxis are modelled as stationary boxes (the camera only needs to know
        *that* and *when* a taxi is visible); the licence plate attribute
        uniquely identifies the taxi, mirroring the plate-based deduplication
        the paper's queries rely on.
        """
        objects: dict[str, SceneObject] = {}
        for sighting in self.sightings_for(camera):
            scene_object = objects.get(sighting.taxi_id)
            if scene_object is None:
                scene_object = SceneObject(
                    object_id=f"{camera}/{sighting.taxi_id}",
                    category="taxi",
                    appearances=[],
                    attributes={"plate": sighting.taxi_id, "taxi_id": sighting.taxi_id},
                )
                objects[sighting.taxi_id] = scene_object
            scene_object.appearances.append(Appearance(
                interval=sighting.interval,
                trajectory=StationaryTrajectory(BoundingBox(600.0, 330.0, 70.0, 40.0)),
            ))
        video = SyntheticVideo(
            name=camera,
            fps=fps,
            width=1280.0,
            height=720.0,
            duration=self.config.duration,
            metadata={"dataset": "porto-synthetic"},
        )
        video.add_objects(objects.values())
        return video


def generate_porto_dataset(config: PortoConfig | None = None) -> PortoDataset:
    """Generate a synthetic Porto-style dataset from a configuration."""
    config = config or PortoConfig()
    random = RandomSource(config.seed, path="porto")
    rng = random.stream("sightings")
    camera_weights = rng.dirichlet(np.full(config.num_cameras, 2.0))
    dataset = PortoDataset(config=config)
    min_visibility, max_visibility = config.visibility_range
    for taxi_index in range(config.num_taxis):
        taxi_id = f"taxi{taxi_index:04d}"
        for day in range(config.num_days):
            if rng.random() >= config.working_day_probability:
                continue
            shift_hours = float(np.clip(
                rng.normal(config.mean_shift_hours, config.shift_hours_std), 2.0, 14.0))
            shift_start_hour = float(rng.uniform(5.0, 22.0 - shift_hours))
            shift_start = day * SECONDS_PER_DAY + shift_start_hour * SECONDS_PER_HOUR
            shift_end = shift_start + shift_hours * SECONDS_PER_HOUR
            dataset.shift_hours[(taxi_id, day)] = shift_hours
            expected_passes = config.passes_per_hour * shift_hours
            num_passes = int(rng.poisson(expected_passes))
            for _ in range(num_passes):
                camera_index = int(rng.choice(config.num_cameras, p=camera_weights))
                start = float(rng.uniform(shift_start, shift_end))
                duration = float(rng.uniform(min_visibility, max_visibility))
                end = min(start + duration, config.duration)
                if end - start < 1e-6:
                    continue
                dataset.sightings.append(Sighting(
                    taxi_id=taxi_id,
                    camera=config.camera_name(camera_index),
                    interval=TimeInterval(start, end),
                ))
    dataset.sightings.sort(key=lambda sighting: sighting.interval.start)
    return dataset
