"""Ground-truth scene objects and their appearances.

An *appearance* is one contiguous visibility segment of an object, matching
the paper's definition of an event as a set of at most K video segments, each
of duration at most rho (Definition 5.1).  A :class:`SceneObject` groups one
or more appearances of the same real-world entity together with its
attributes (class, colour, licence plate, entry/exit side, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

import numpy as np

from repro.scene.schedules import AttributeSchedule
from repro.scene.trajectory import Trajectory
from repro.utils.timebase import TimeInterval
from repro.video.geometry import BoundingBox

#: A time-varying attribute: a declarative (picklable, batch-evaluable)
#: schedule, or a bare ``timestamp -> value`` callable kept for backwards
#: compatibility with closure-based scenes.
DynamicAttribute = AttributeSchedule | Callable[[float], Any]

#: Object categories the paper treats as private (individually identifying).
PRIVATE_CATEGORIES = frozenset({"person", "car", "taxi", "bike"})


@dataclass(frozen=True)
class Appearance:
    """One contiguous visibility segment of an object.

    ``trajectory`` is evaluated with time measured from ``interval.start``.
    """

    interval: TimeInterval
    trajectory: Trajectory

    @property
    def duration(self) -> float:
        """Length of the appearance in seconds."""
        return self.interval.duration

    def visible_at(self, timestamp: float) -> bool:
        """Return True if the appearance covers ``timestamp``."""
        return self.interval.contains(timestamp)

    def box_at(self, timestamp: float) -> BoundingBox | None:
        """Bounding box at ``timestamp``, or None if not visible then."""
        if not self.visible_at(timestamp):
            return None
        return self.trajectory.box_at(timestamp - self.interval.start)

    def visible_mask(self, timestamps: np.ndarray) -> np.ndarray:
        """Boolean mask of the timestamps this appearance covers (vectorized)."""
        return (timestamps >= self.interval.start) & (timestamps < self.interval.end)


@dataclass
class SceneObject:
    """A ground-truth entity visible to the camera across one or more appearances."""

    object_id: str
    category: str
    appearances: list[Appearance] = field(default_factory=list)
    attributes: dict[str, Any] = field(default_factory=dict)
    dynamic_attributes: dict[str, DynamicAttribute] = field(default_factory=dict)

    def attributes_at(self, timestamp: float) -> dict[str, Any]:
        """Static attributes merged with time-varying ones evaluated at ``timestamp``.

        Dynamic attributes model observable state that changes over time (for
        example a traffic light's current colour); a real detector would read
        this from pixels.  They are normally declarative
        :class:`~repro.scene.schedules.AttributeSchedule` objects (picklable,
        batch-evaluable); bare callables still work.
        """
        if not self.dynamic_attributes:
            return dict(self.attributes)
        merged = dict(self.attributes)
        for key, schedule in self.dynamic_attributes.items():
            merged[key] = schedule(timestamp) if callable(schedule) \
                else schedule.value_at(timestamp)
        return merged

    def attribute_keys(self) -> list[str]:
        """Attribute names in the order :meth:`attributes_at` produces them.

        Static keys first (a dynamic attribute overriding a static one keeps
        the static position, matching dict-merge order), then dynamic-only
        keys.  The batched detector allocates one draw stream per entry of
        this list, and :meth:`attribute_series` evaluates in the same order,
        so the two stay aligned by construction.
        """
        keys = list(self.attributes)
        keys.extend(key for key in self.dynamic_attributes if key not in self.attributes)
        return keys

    def attribute_series(self, timestamps: np.ndarray
                         ) -> list[tuple[str, Any, list[Any] | None]]:
        """Attribute values evaluated for a whole batch of timestamps.

        Returns ``(key, constant_value, per_frame_values)`` triples in
        :meth:`attribute_keys` order; ``per_frame_values`` is ``None`` for
        static attributes (the constant applies to every frame).  Schedules
        evaluate the batch in one vectorized call; bare callables fall back
        to one call per timestamp.
        """
        dynamic = self.dynamic_attributes
        series: list[tuple[str, Any, list[Any] | None]] = []
        for key in self.attribute_keys():
            if key in dynamic:
                schedule = dynamic[key]
                if isinstance(schedule, AttributeSchedule):
                    values = list(schedule.values_at(timestamps))
                else:
                    values = [schedule(timestamp) for timestamp in timestamps.tolist()]
                series.append((key, None, values))
            else:
                series.append((key, self.attributes[key], None))
        return series

    @property
    def is_private(self) -> bool:
        """True if the object belongs to a category the paper considers private."""
        return self.category in PRIVATE_CATEGORIES

    @property
    def num_appearances(self) -> int:
        """K for this object: the number of visibility segments."""
        return len(self.appearances)

    @property
    def max_appearance_duration(self) -> float:
        """rho for this object: the longest single visibility segment, in seconds."""
        if not self.appearances:
            return 0.0
        return max(appearance.duration for appearance in self.appearances)

    @property
    def total_visible_duration(self) -> float:
        """Total seconds the object is visible across all appearances."""
        return sum(appearance.duration for appearance in self.appearances)

    @property
    def first_visible(self) -> float:
        """Timestamp of the object's first visible instant."""
        if not self.appearances:
            raise ValueError(f"object {self.object_id} has no appearances")
        return min(appearance.interval.start for appearance in self.appearances)

    @property
    def last_visible(self) -> float:
        """Timestamp of the object's last visible instant."""
        if not self.appearances:
            raise ValueError(f"object {self.object_id} has no appearances")
        return max(appearance.interval.end for appearance in self.appearances)

    def visible_at(self, timestamp: float) -> bool:
        """Return True if any appearance covers ``timestamp``."""
        return any(appearance.visible_at(timestamp) for appearance in self.appearances)

    def box_at(self, timestamp: float) -> BoundingBox | None:
        """Bounding box at ``timestamp``, or None if not visible then."""
        for appearance in self.appearances:
            box = appearance.box_at(timestamp)
            if box is not None:
                return box
        return None

    def appearances_within(self, window: TimeInterval) -> list[Appearance]:
        """Appearances that overlap the given window."""
        return [appearance for appearance in self.appearances
                if appearance.interval.overlaps(window)]

    def is_bounded_by(self, rho: float, num_segments: int) -> bool:
        """Return True if the object's visibility is (rho, K)-bounded.

        This is the ground-truth check of Definition 5.1: the object has at
        most ``num_segments`` appearances and each lasts at most ``rho``
        seconds.
        """
        if self.num_appearances > num_segments:
            return False
        return all(appearance.duration <= rho for appearance in self.appearances)

    def tightest_bound(self) -> tuple[float, int]:
        """Return the tightest (rho, K) bound covering this object."""
        return self.max_appearance_duration, self.num_appearances


def objects_visible_at(objects: Iterable[SceneObject], timestamp: float) -> list[SceneObject]:
    """Return the subset of ``objects`` visible at ``timestamp``."""
    return [scene_object for scene_object in objects if scene_object.visible_at(timestamp)]


def max_duration_of(objects: Iterable[SceneObject], *, categories: Iterable[str] | None = None) -> float:
    """Ground-truth maximum single-appearance duration across objects.

    ``categories`` restricts the computation to the given object classes; by
    default only private categories are considered, matching the paper's goal
    of protecting individuals and vehicles.
    """
    allowed = frozenset(categories) if categories is not None else PRIVATE_CATEGORIES
    durations = [scene_object.max_appearance_duration for scene_object in objects
                 if scene_object.category in allowed]
    return max(durations, default=0.0)


def max_appearance_count_of(objects: Iterable[SceneObject], *,
                            categories: Iterable[str] | None = None) -> int:
    """Ground-truth maximum number of appearances (K) across objects."""
    allowed = frozenset(categories) if categories is not None else PRIVATE_CATEGORIES
    counts = [scene_object.num_appearances for scene_object in objects
              if scene_object.category in allowed]
    return max(counts, default=0)
