"""Exception hierarchy for the Privid reproduction.

Every error raised by the library derives from :class:`PrividError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError``.
"""

from __future__ import annotations


class PrividError(Exception):
    """Base class for all errors raised by this library."""


class PolicyError(PrividError):
    """An invalid privacy policy (e.g. non-positive rho, K, or epsilon)."""


class BudgetExceededError(PrividError):
    """A query requested more privacy budget than remains on some frame.

    Mirrors the DENY branch of Algorithm 1 (lines 1-3): the query interval,
    extended by rho on either side, contains at least one frame whose
    remaining budget is smaller than the requested epsilon.
    """

    def __init__(self, message: str, *, interval=None, requested: float | None = None,
                 available: float | None = None) -> None:
        super().__init__(message)
        self.interval = interval
        self.requested = requested
        self.available = available


class QuerySyntaxError(PrividError):
    """The query text could not be parsed against the Privid grammar."""

    def __init__(self, message: str, *, line: int | None = None, column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column})" if column is not None else ")")
        super().__init__(message + location)
        self.line = line
        self.column = column


class QueryValidationError(PrividError):
    """The query parsed but violates a Privid constraint.

    Examples: an aggregation over a column without a declared range, a
    GROUP BY over an analyst column without explicit keys, or a chunk
    duration that is not an integer number of frames.
    """


class UnboundSensitivityError(PrividError):
    """The sensitivity of an aggregation could not be bounded.

    Raised when a required constraint (row-count bound or column range) was
    left unbound by every operator beneath the aggregation.
    """


class SchemaError(PrividError):
    """A schema is malformed or a row does not match its schema."""


class SandboxViolationError(PrividError):
    """An analyst executable attempted to break chunk isolation."""


class UnknownExecutableError(PrividError):
    """A PROCESS statement referenced an executable that is not registered."""


class RemoteShardError(PrividError):
    """Sharded execution could not complete a task.

    Raised by :class:`repro.core.remote.ShardedEngine` when a task exhausts
    its retry budget or no live shard remains to run it; individual shard
    deaths are handled transparently by reassignment and never surface here.
    """


class QueryCancelledError(PrividError):
    """A query was cancelled cooperatively before it finished.

    Raised out of :meth:`repro.core.executor.PrividSystem.execute` (and the
    futures of :class:`repro.service.QueryService`) when the query's
    :class:`~repro.core.resilience.CancellationToken` is cancelled between
    chunks.  Cancellation always happens *before* budget admission, so a
    cancelled query never charges any ledger (all-or-nothing holds).
    """


class QueryTimeoutError(QueryCancelledError):
    """A query exceeded its deadline and was cancelled cooperatively.

    The timeout flavour of :class:`QueryCancelledError`: raised when the
    token's monotonic deadline passes.  Like every cancellation it fires
    between chunks, before any budget is charged.
    """


class ServiceOverloadedError(PrividError):
    """The service's bounded wait queue is full; the query was not admitted.

    Typed admission-control rejection from
    :meth:`repro.service.QueryService.submit`: raised synchronously (no
    future is created, nothing is queued, nothing is charged) when the
    number of queries waiting for a pool slot has reached
    ``max_queue_depth``.
    """

    def __init__(self, message: str, *, active: int | None = None,
                 queue_depth: int | None = None, limit: int | None = None) -> None:
        super().__init__(message)
        self.active = active
        self.queue_depth = queue_depth
        self.limit = limit


class DurabilityError(PrividError):
    """Persistent ledger state could not be recovered or written.

    Raised by :mod:`repro.core.durability` when a snapshot file is damaged
    beyond the write-ahead log's self-repair (torn log *tails* are repaired
    silently; a corrupt snapshot means charges may have been lost, which must
    never pass unnoticed), or when a record cannot be encoded.
    """


class ResumeMismatchError(PrividError):
    """A resume token was resubmitted with a *different* query.

    Raised synchronously from :meth:`repro.service.QueryService.submit` when
    the fingerprint of the resubmitted query (its canonical AST plus the
    release-affecting execute options) does not match the one journaled at
    the original submission.  Without this check a resubmission under a
    token whose charge already landed would run an arbitrary new query with
    zero budget charge *and* reuse the original query's noise stream — in
    Privid's threat model the analyst is the adversary, so a mismatch is a
    privacy-budget bypass attempt, not a convenience to paper over.
    """


class ResumeConflictError(PrividError):
    """A resume token was submitted while already in flight.

    Raised synchronously from :meth:`repro.service.QueryService.submit` when
    a second submission arrives for a token whose query is still running:
    two concurrent executions of one journaled query would share a noise
    stream (same query seq) and race on one idempotent charge key.  Wait
    for the first future instead.
    """


class SimulatedCrashError(PrividError):
    """An injected ``service.crash_at_seq`` fault fired (kill -9 stand-in).

    The default :attr:`repro.core.durability.WriteAheadLog.crash_hook`: tests
    catch this, abandon the service instance, and recover a fresh one over
    the same WAL directory.  The chaos harness replaces the hook with a real
    ``SIGKILL`` so recovery is exercised against a genuinely dead process.
    """


class UnknownCameraError(PrividError):
    """A SPLIT statement referenced a camera that is not registered."""


class RegionError(PrividError):
    """Invalid spatial-region specification or use (e.g. soft boundaries with
    a chunk size larger than one frame)."""


class MaskError(PrividError):
    """Invalid mask specification or reference to an unknown mask."""
