"""Fluent programmatic construction of Privid queries.

The textual language (Appendix D) is convenient for analysts typing queries;
programs — the evaluation harness, the examples, downstream users embedding
Privid — are better served by a builder that produces the same AST without
string manipulation.

Example::

    query = (QueryBuilder("hourly-people")
             .split("campus", begin=0, end=12 * 3600, chunk_duration=60,
                    mask="campus-bench-mask", into="chunksA")
             .process("chunksA", executable="count_entering_people.py", max_rows=20,
                      schema=[("kind", "STRING", "")], into="tableA")
             .select_count(table="tableA", group_by_hour=True, epsilon=1.0)
             .build())
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import QueryValidationError
from repro.query.ast import PrividQuery, ProcessStatement, SelectStatement, SplitStatement
from repro.relational.aggregates import Aggregation, GroupSpec
from repro.relational.expressions import Column, RangeExpression, TimeBucket
from repro.relational.plan import GroupBy, Relation, TableScan
from repro.relational.table import ColumnSpec, DataType, Schema
from repro.utils.timebase import SECONDS_PER_HOUR


def make_schema(columns: Sequence[tuple[str, str, Any]] | Schema) -> Schema:
    """Build a Schema from ``(name, dtype, default)`` triples (or pass one through)."""
    if isinstance(columns, Schema):
        return columns
    specs = [ColumnSpec(name=name, dtype=DataType(dtype.upper()), default=default)
             for name, dtype, default in columns]
    return Schema(columns=tuple(specs))


class QueryBuilder:
    """Incrementally assemble a :class:`~repro.query.ast.PrividQuery`."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._splits: list[SplitStatement] = []
        self._processes: list[ProcessStatement] = []
        self._selects: list[SelectStatement] = []

    def split(self, camera: str, *, begin: float, end: float, chunk_duration: float,
              into: str, stride: float = 0.0, mask: str | None = None,
              region_scheme: str | None = None,
              sample_period: float | None = None) -> "QueryBuilder":
        """Add a SPLIT statement."""
        self._splits.append(SplitStatement(
            camera=camera, begin=begin, end=end, chunk_duration=chunk_duration,
            stride=stride, output=into, mask=mask, region_scheme=region_scheme,
            sample_period=sample_period))
        return self

    def process(self, chunks: str, *, executable: str, max_rows: int,
                schema: Sequence[tuple[str, str, Any]] | Schema, into: str,
                timeout: float = 1.0) -> "QueryBuilder":
        """Add a PROCESS statement."""
        self._processes.append(ProcessStatement(
            chunks=chunks, executable=executable, max_rows=max_rows,
            schema=make_schema(schema), output=into, timeout=timeout))
        return self

    def select(self, aggregation: Aggregation, source: Relation, *,
               group_by: GroupSpec | None = None, epsilon: float | None = None,
               label: str = "") -> "QueryBuilder":
        """Add a fully-specified SELECT statement."""
        self._selects.append(SelectStatement(
            aggregation=aggregation, source=source, group_by=group_by,
            epsilon=epsilon, label=label))
        return self

    def select_count(self, *, table: str | None = None, source: Relation | None = None,
                     group_by_hour: bool = False, bucket_seconds: float | None = None,
                     group_by_column: str | None = None, keys: Sequence[Any] | None = None,
                     epsilon: float | None = None, label: str = "") -> "QueryBuilder":
        """Convenience: COUNT(*) over a table, optionally grouped by time or keys."""
        relation = source if source is not None else TableScan(self._require_table(table))
        group = self._build_group(group_by_hour=group_by_hour, bucket_seconds=bucket_seconds,
                                  group_by_column=group_by_column, keys=keys)
        return self.select(Aggregation(function="COUNT"), relation, group_by=group,
                           epsilon=epsilon, label=label)

    def select_average(self, column: str, low: float, high: float, *,
                       table: str | None = None, source: Relation | None = None,
                       group_by_hour: bool = False, bucket_seconds: float | None = None,
                       group_by_column: str | None = None, keys: Sequence[Any] | None = None,
                       epsilon: float | None = None, label: str = "") -> "QueryBuilder":
        """Convenience: AVG(range(column, low, high)) over a table.

        The range projection is inserted automatically so the sensitivity of
        the average is bounded.
        """
        base = source if source is not None else TableScan(self._require_table(table))
        from repro.relational.plan import Projection
        from repro.relational.table import CHUNK_COLUMN, REGION_COLUMN

        projected = Projection(base, outputs=(
            (column, RangeExpression(Column(column), low, high)),
            (CHUNK_COLUMN, Column(CHUNK_COLUMN)),
            (REGION_COLUMN, Column(REGION_COLUMN)),
        ))
        group = self._build_group(group_by_hour=group_by_hour, bucket_seconds=bucket_seconds,
                                  group_by_column=group_by_column, keys=keys)
        return self.select(Aggregation(function="AVG", column=column), projected,
                           group_by=group, epsilon=epsilon, label=label)

    def select_sum(self, column: str, low: float, high: float, *,
                   table: str | None = None, source: Relation | None = None,
                   group_by_hour: bool = False, bucket_seconds: float | None = None,
                   epsilon: float | None = None, label: str = "") -> "QueryBuilder":
        """Convenience: SUM(range(column, low, high)) over a table."""
        base = source if source is not None else TableScan(self._require_table(table))
        from repro.relational.plan import Projection
        from repro.relational.table import CHUNK_COLUMN, REGION_COLUMN

        projected = Projection(base, outputs=(
            (column, RangeExpression(Column(column), low, high)),
            (CHUNK_COLUMN, Column(CHUNK_COLUMN)),
            (REGION_COLUMN, Column(REGION_COLUMN)),
        ))
        group = self._build_group(group_by_hour=group_by_hour, bucket_seconds=bucket_seconds,
                                  group_by_column=None, keys=None)
        return self.select(Aggregation(function="SUM", column=column), projected,
                           group_by=group, epsilon=epsilon, label=label)

    def select_count_unique(self, key_column: str, *, table: str | None = None,
                            source: Relation | None = None, keys: Sequence[Any] | None = None,
                            group_by_hour: bool = False, bucket_seconds: float | None = None,
                            epsilon: float | None = None, label: str = "") -> "QueryBuilder":
        """Convenience: COUNT of distinct values of ``key_column`` (dedup via GROUP BY)."""
        base = source if source is not None else TableScan(self._require_table(table))
        deduplicated = GroupBy(base, keys=(key_column,), explicit_keys=tuple(keys) if keys else None)
        group = self._build_group(group_by_hour=group_by_hour, bucket_seconds=bucket_seconds,
                                  group_by_column=None, keys=None)
        return self.select(Aggregation(function="COUNT"), deduplicated, group_by=group,
                           epsilon=epsilon, label=label)

    def select_argmax(self, group_column: str, keys: Sequence[Any], *,
                      table: str | None = None, source: Relation | None = None,
                      epsilon: float | None = None, label: str = "") -> "QueryBuilder":
        """Convenience: ARGMAX of per-group row counts over explicit keys."""
        relation = source if source is not None else TableScan(self._require_table(table))
        group = GroupSpec(expressions=((group_column, Column(group_column)),),
                          expected_keys=tuple(keys))
        return self.select(Aggregation(function="ARGMAX"), relation, group_by=group,
                           epsilon=epsilon, label=label)

    def build(self) -> PrividQuery:
        """Finalize and return the query AST."""
        if not self._splits or not self._processes or not self._selects:
            raise QueryValidationError(
                "a Privid query needs at least one SPLIT, one PROCESS and one SELECT")
        return PrividQuery(name=self._name, splits=list(self._splits),
                           processes=list(self._processes), selects=list(self._selects))

    def _require_table(self, table: str | None) -> str:
        if table is not None:
            return table
        if len(self._processes) == 1:
            return self._processes[0].output
        raise QueryValidationError("specify table=... when the query defines several tables")

    @staticmethod
    def _build_group(*, group_by_hour: bool, bucket_seconds: float | None,
                     group_by_column: str | None, keys: Sequence[Any] | None) -> GroupSpec | None:
        if group_by_hour and bucket_seconds is not None:
            raise QueryValidationError("choose either group_by_hour or bucket_seconds, not both")
        if group_by_hour:
            bucket_seconds = SECONDS_PER_HOUR
        if bucket_seconds is not None:
            return GroupSpec(expressions=(("bucket", TimeBucket(Column("chunk"), bucket_seconds)),))
        if group_by_column is not None:
            if keys is None:
                raise QueryValidationError("grouping by an analyst column requires explicit keys")
            return GroupSpec(expressions=((group_by_column, Column(group_by_column)),),
                             expected_keys=tuple(keys))
        return None
