"""Static validation of Privid queries.

The executor re-checks everything it relies on at run time; this validator
exists to give analysts early, friendly errors before any video is processed
— the same role the paper's front end plays when it rejects a malformed
query instead of burning compute on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import QueryValidationError
from repro.query.ast import PrividQuery, collect_table_names
from repro.relational.aggregates import AGGREGATE_FUNCTIONS
from repro.utils.timebase import is_integral_frame_count


@dataclass
class ValidationReport:
    """Outcome of validating a query: hard errors and advisory warnings."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True if no hard errors were found."""
        return not self.errors

    def raise_if_invalid(self) -> None:
        """Raise :class:`QueryValidationError` summarising all hard errors."""
        if self.errors:
            raise QueryValidationError("; ".join(self.errors))


def validate_query(query: PrividQuery, *, known_cameras: dict[str, float] | None = None,
                   known_executables: list[str] | None = None,
                   raise_on_error: bool = True) -> ValidationReport:
    """Validate a query's structure.

    ``known_cameras`` optionally maps camera names to their frame rates so
    the frame-alignment rule of Appendix D (chunk duration and stride must be
    whole numbers of frames) can be checked; ``known_executables`` optionally
    lists registered executable names.
    """
    report = ValidationReport()

    chunk_sets: set[str] = set()
    for split in query.splits:
        if split.output in chunk_sets:
            report.errors.append(f"duplicate chunk set name {split.output!r}")
        chunk_sets.add(split.output)
        if known_cameras is not None:
            if split.camera not in known_cameras:
                report.errors.append(f"SPLIT references unknown camera {split.camera!r}")
            else:
                fps = known_cameras[split.camera]
                if not is_integral_frame_count(split.chunk_duration, fps):
                    report.errors.append(
                        f"chunk duration {split.chunk_duration}s is not a whole number of "
                        f"frames at {fps} fps (camera {split.camera!r})")
                if not is_integral_frame_count(split.stride, fps):
                    report.errors.append(
                        f"stride {split.stride}s is not a whole number of frames at {fps} fps")

    tables: set[str] = set()
    for process in query.processes:
        if process.output in tables:
            report.errors.append(f"duplicate table name {process.output!r}")
        tables.add(process.output)
        if process.chunks not in chunk_sets:
            report.errors.append(
                f"PROCESS table {process.output!r} reads unknown chunk set {process.chunks!r}")
        if known_executables is not None and process.executable not in known_executables:
            report.errors.append(
                f"PROCESS references unregistered executable {process.executable!r}")
        if process.max_rows > 1000:
            report.warnings.append(
                f"table {process.output!r} declares max_rows={process.max_rows}; large caps "
                "increase sensitivity and therefore noise")

    if not query.selects:
        report.errors.append("a query must contain at least one SELECT")
    for index, select in enumerate(query.selects):
        if select.aggregation.function not in AGGREGATE_FUNCTIONS:
            report.errors.append(
                f"SELECT #{index} uses unsupported aggregation {select.aggregation.function!r}")
        try:
            referenced = collect_table_names(select.source)
        except QueryValidationError as error:
            report.errors.append(str(error))
            continue
        unknown = referenced - tables
        if unknown:
            report.errors.append(f"SELECT #{index} references unknown tables {sorted(unknown)}")
        if select.aggregation.function == "ARGMAX" and select.group_by is None:
            report.errors.append(f"SELECT #{index}: ARGMAX requires a GROUP BY")
        if select.group_by is not None and select.group_by.expected_keys is not None \
                and len(select.group_by.expected_keys) == 0:
            report.errors.append(f"SELECT #{index}: WITH KEYS must list at least one key")

    if raise_on_error:
        report.raise_if_invalid()
    return report
