"""Recursive-descent parser for the textual Privid query language.

The grammar follows Appendix D (Fig. 9) with two simplifications suited to
the synthetic substrate: timestamps in SPLIT statements are seconds relative
to the start of the camera's footage (optionally with a ``sec``/``min``/
``hr``/``day`` unit), and executables are referenced by their registered name.

Supported statements::

    SPLIT camA BEGIN 0 END 12hr BY TIME 60sec STRIDE 0sec
        [WITH MASK mask_name] [BY REGION scheme_name] INTO chunksA;

    PROCESS chunksA USING count_entering_people.py TIMEOUT 1sec
        PRODUCING 20 ROWS
        WITH SCHEMA (kind:STRING="", dy:NUMBER=0)
        INTO tableA;

    SELECT COUNT(*) FROM tableA GROUP BY hour(chunk) [CONSUMING 1.0];
    SELECT AVG(range(speed, 30, 60)) FROM tableA;
    SELECT color, COUNT(plate) FROM (SELECT plate, color FROM tableA GROUP BY plate
        WITH KEYS ["P1", "P2"]) GROUP BY color WITH KEYS ["RED", "WHITE"];
    SELECT COUNT(*) FROM tableA JOIN tableB ON plate;
"""

from __future__ import annotations

from typing import Any

from repro.errors import QuerySyntaxError
from repro.query.ast import PrividQuery, ProcessStatement, SelectStatement, SplitStatement
from repro.query.lexer import Token, TokenType, tokenize
from repro.relational.aggregates import SUPPORTED_AGGREGATES, Aggregation, GroupSpec
from repro.relational.expressions import Column, Expression, RangeExpression, TimeBucket
from repro.relational.plan import GroupBy, Join, JoinKind, Limit, Projection, Relation, TableScan
from repro.relational.table import ColumnSpec, DataType, Schema
from repro.utils.timebase import SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_MINUTE

_UNIT_SECONDS = {
    "s": 1.0, "sec": 1.0, "secs": 1.0, "second": 1.0, "seconds": 1.0,
    "min": SECONDS_PER_MINUTE, "mins": SECONDS_PER_MINUTE, "minute": SECONDS_PER_MINUTE,
    "minutes": SECONDS_PER_MINUTE,
    "hr": SECONDS_PER_HOUR, "hrs": SECONDS_PER_HOUR, "hour": SECONDS_PER_HOUR,
    "hours": SECONDS_PER_HOUR,
    "day": SECONDS_PER_DAY, "days": SECONDS_PER_DAY,
}

_TIME_FUNCTIONS = {
    "hour": SECONDS_PER_HOUR,
    "day": SECONDS_PER_DAY,
}


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.position = 0

    # ------------------------------------------------------------- cursor ops

    def peek(self, offset: int = 0) -> Token:
        index = min(self.position + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.peek()
        if token.type is not TokenType.END:
            self.position += 1
        return token

    def accept_keyword(self, *keywords: str) -> Token | None:
        token = self.peek()
        if token.type is TokenType.IDENT and token.value.upper() in {k.upper() for k in keywords}:
            return self.advance()
        return None

    def expect_keyword(self, keyword: str) -> Token:
        token = self.accept_keyword(keyword)
        if token is None:
            actual = self.peek()
            raise QuerySyntaxError(f"expected {keyword!r}, found {actual.value!r}",
                                   line=actual.line, column=actual.column)
        return token

    def accept_symbol(self, symbol: str) -> Token | None:
        token = self.peek()
        if token.type is TokenType.SYMBOL and token.value == symbol:
            return self.advance()
        return None

    def expect_symbol(self, symbol: str) -> Token:
        token = self.accept_symbol(symbol)
        if token is None:
            actual = self.peek()
            raise QuerySyntaxError(f"expected {symbol!r}, found {actual.value!r}",
                                   line=actual.line, column=actual.column)
        return token

    def expect_ident(self) -> str:
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise QuerySyntaxError(f"expected an identifier, found {token.value!r}",
                                   line=token.line, column=token.column)
        return self.advance().value

    def expect_number(self) -> float:
        token = self.peek()
        if token.type is not TokenType.NUMBER:
            raise QuerySyntaxError(f"expected a number, found {token.value!r}",
                                   line=token.line, column=token.column)
        self.advance()
        return float(token.value)

    def parse_duration(self) -> float:
        """A number with an optional time unit, returned in seconds."""
        value = self.expect_number()
        token = self.peek()
        if token.type is TokenType.IDENT and token.value.lower() in _UNIT_SECONDS:
            self.advance()
            return value * _UNIT_SECONDS[token.value.lower()]
        return value

    # ---------------------------------------------------------- statements

    def parse(self, name: str) -> PrividQuery:
        query = PrividQuery(name=name)
        while not self.peek().matches(TokenType.END):
            if self.accept_keyword("SPLIT"):
                query.splits.append(self._parse_split())
            elif self.accept_keyword("PROCESS"):
                query.processes.append(self._parse_process())
            elif self.accept_keyword("SELECT"):
                query.selects.append(self._parse_select())
            else:
                token = self.peek()
                raise QuerySyntaxError(
                    f"expected SPLIT, PROCESS or SELECT, found {token.value!r}",
                    line=token.line, column=token.column)
            self.accept_symbol(";")
        return query

    def _parse_split(self) -> SplitStatement:
        camera = self.expect_ident()
        self.expect_keyword("BEGIN")
        begin = self.parse_duration()
        self.expect_keyword("END")
        end = self.parse_duration()
        self.expect_keyword("BY")
        self.expect_keyword("TIME")
        chunk_duration = self.parse_duration()
        stride = 0.0
        if self.accept_keyword("STRIDE"):
            stride = self.parse_duration()
        mask = None
        region_scheme = None
        while True:
            if self.accept_keyword("WITH"):
                self.expect_keyword("MASK")
                mask = self.expect_ident()
            elif self.accept_keyword("BY"):
                self.expect_keyword("REGION")
                region_scheme = self.expect_ident()
            else:
                break
        self.expect_keyword("INTO")
        output = self.expect_ident()
        return SplitStatement(camera=camera, begin=begin, end=end,
                              chunk_duration=chunk_duration, stride=stride,
                              mask=mask, region_scheme=region_scheme, output=output)

    def _parse_schema(self) -> Schema:
        self.expect_symbol("(")
        columns: list[ColumnSpec] = []
        while True:
            name = self.expect_ident()
            self.expect_symbol(":")
            dtype_name = self.expect_ident().upper()
            try:
                dtype = DataType(dtype_name)
            except ValueError as error:
                token = self.peek()
                raise QuerySyntaxError(f"unknown data type {dtype_name!r}",
                                       line=token.line, column=token.column) from error
            default: Any = None
            if self.accept_symbol("="):
                token = self.peek()
                if token.type is TokenType.STRING:
                    default = self.advance().value
                elif token.type is TokenType.NUMBER:
                    default = self.expect_number()
                else:
                    default = self.expect_ident()
            columns.append(ColumnSpec(name=name, dtype=dtype, default=default))
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        return Schema(columns=tuple(columns))

    def _parse_process(self) -> ProcessStatement:
        chunks = self.expect_ident()
        self.expect_keyword("USING")
        executable = self.expect_ident()
        timeout = 1.0
        if self.accept_keyword("TIMEOUT"):
            timeout = self.parse_duration()
        self.expect_keyword("PRODUCING")
        max_rows = int(self.expect_number())
        self.accept_keyword("ROWS")
        self.expect_keyword("WITH")
        self.expect_keyword("SCHEMA")
        schema = self._parse_schema()
        self.expect_keyword("INTO")
        output = self.expect_ident()
        return ProcessStatement(chunks=chunks, executable=executable, timeout=timeout,
                                max_rows=max_rows, schema=schema, output=output)

    # -------------------------------------------------------------- SELECT

    def _parse_key_list(self) -> tuple[Any, ...]:
        self.expect_symbol("[")
        keys: list[Any] = []
        while True:
            token = self.peek()
            if token.type is TokenType.STRING:
                keys.append(self.advance().value)
            elif token.type is TokenType.NUMBER:
                keys.append(self.expect_number())
            else:
                keys.append(self.expect_ident())
            if not self.accept_symbol(","):
                break
        self.expect_symbol("]")
        return tuple(keys)

    def _parse_scalar_expression(self) -> tuple[str, Expression]:
        """One entry of an expression list; returns (output name, expression)."""
        token = self.peek()
        if token.type is not TokenType.IDENT:
            raise QuerySyntaxError(f"expected an expression, found {token.value!r}",
                                   line=token.line, column=token.column)
        name = self.advance().value
        lowered = name.lower()
        if lowered == "range" and self.peek().matches(TokenType.SYMBOL, "("):
            self.expect_symbol("(")
            column = self.expect_ident()
            self.expect_symbol(",")
            low = self._parse_signed_number()
            self.expect_symbol(",")
            high = self._parse_signed_number()
            self.expect_symbol(")")
            expression: Expression = RangeExpression(Column(column), low, high)
            output = column
        elif lowered in _TIME_FUNCTIONS and self.peek().matches(TokenType.SYMBOL, "("):
            self.expect_symbol("(")
            column = self.expect_ident()
            self.expect_symbol(")")
            expression = TimeBucket(Column(column), _TIME_FUNCTIONS[lowered])
            output = f"{lowered}_{column}"
        elif lowered == "bin" and self.peek().matches(TokenType.SYMBOL, "("):
            self.expect_symbol("(")
            column = self.expect_ident()
            self.expect_symbol(",")
            width = self.parse_duration()
            self.expect_symbol(")")
            expression = TimeBucket(Column(column), width)
            output = f"bin_{column}"
        else:
            expression = Column(name)
            output = name
        if self.accept_keyword("AS"):
            output = self.expect_ident()
        return output, expression

    def _parse_signed_number(self) -> float:
        sign = 1.0
        if self.accept_symbol("-"):
            sign = -1.0
        return sign * self.expect_number()

    def _parse_inner_relation(self) -> Relation:
        """FROM clause: a table name, a parenthesised sub-select, joins, group-bys."""
        relation = self._parse_relation_atom()
        while True:
            if self.accept_keyword("JOIN"):
                right = self._parse_relation_atom()
                self.expect_keyword("ON")
                keys = [self.expect_ident()]
                while self.accept_symbol(","):
                    keys.append(self.expect_ident())
                relation = Join(left=relation, right=right, on=tuple(keys))
            elif self.peek().matches(TokenType.IDENT, "GROUP") \
                    and self.peek(1).matches(TokenType.IDENT, "BY") \
                    and not self._is_outer_group_by():
                self.advance()
                self.advance()
                keys = [self.expect_ident()]
                while self.accept_symbol(","):
                    keys.append(self.expect_ident())
                explicit_keys = None
                if self.accept_keyword("WITH"):
                    self.expect_keyword("KEYS")
                    explicit_keys = self._parse_key_list()
                relation = GroupBy(relation, keys=tuple(keys), explicit_keys=explicit_keys)
            else:
                break
        return relation

    def _is_outer_group_by(self) -> bool:
        """Heuristic: a GROUP BY at the statement's top level belongs to the outer SELECT.

        The parser tracks parenthesis depth while parsing the FROM clause; the
        flag is set by :meth:`_parse_select` before descending.
        """
        return getattr(self, "_at_outer_level", False) and self._paren_depth == 0

    def _parse_relation_atom(self) -> Relation:
        if self.accept_symbol("("):
            self._paren_depth += 1
            relation = self._parse_nested_select()
            self._paren_depth -= 1
            self.expect_symbol(")")
            return relation
        name = self.expect_ident()
        return TableScan(name)

    def _parse_nested_select(self) -> Relation:
        """A parenthesised ``SELECT expr_list FROM inner [WHERE ...] [LIMIT n]``."""
        if not self.accept_keyword("SELECT"):
            # A parenthesised bare relation, e.g. (tableA JOIN tableB ON plate).
            return self._parse_inner_relation()
        outputs: list[tuple[str, Expression]] = []
        while True:
            outputs.append(self._parse_scalar_expression())
            if not self.accept_symbol(","):
                break
        self.expect_keyword("FROM")
        relation = self._parse_inner_relation()
        if self.accept_keyword("LIMIT"):
            relation = Limit(relation, int(self.expect_number()))
        projected: Relation = Projection(relation, outputs=tuple(outputs))
        while self.peek().matches(TokenType.IDENT, "GROUP"):
            self.advance()
            self.expect_keyword("BY")
            keys = [self.expect_ident()]
            while self.accept_symbol(","):
                keys.append(self.expect_ident())
            explicit_keys = None
            if self.accept_keyword("WITH"):
                self.expect_keyword("KEYS")
                explicit_keys = self._parse_key_list()
            projected = GroupBy(projected, keys=tuple(keys), explicit_keys=explicit_keys)
        return projected

    def _parse_aggregation(self) -> tuple[Aggregation, list[str]]:
        """The outer SELECT's aggregation, plus any leading bare group columns."""
        group_columns: list[str] = []
        while True:
            token = self.peek()
            if token.type is TokenType.IDENT and token.value.upper() in SUPPORTED_AGGREGATES \
                    and self.peek(1).matches(TokenType.SYMBOL, "("):
                break
            group_columns.append(self.expect_ident())
            self.expect_symbol(",")
        function = self.expect_ident().upper()
        self.expect_symbol("(")
        column: str | None
        inner_range: tuple[float, float] | None = None
        if self.accept_symbol("*"):
            column = None
        else:
            inner = self.peek()
            if inner.value.lower() == "range":
                self.advance()
                self.expect_symbol("(")
                column = self.expect_ident()
                self.expect_symbol(",")
                low = self._parse_signed_number()
                self.expect_symbol(",")
                high = self._parse_signed_number()
                self.expect_symbol(")")
                inner_range = (low, high)
            else:
                column = self.expect_ident()
        self.expect_symbol(")")
        aggregation = Aggregation(function=function, column=column)
        if inner_range is not None:
            aggregation = Aggregation(function=function, column=column)
            self._pending_range = (column, inner_range)
        return aggregation, group_columns

    def _parse_select(self) -> SelectStatement:
        self._pending_range: tuple[str | None, tuple[float, float]] | None = None
        self._paren_depth = 0
        self._at_outer_level = True
        aggregation, group_columns = self._parse_aggregation()
        self.expect_keyword("FROM")
        relation = self._parse_inner_relation()
        group_spec: GroupSpec | None = None
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            expressions: list[tuple[str, Expression]] = []
            while True:
                expressions.append(self._parse_scalar_expression())
                if not self.accept_symbol(","):
                    break
            expected_keys = None
            if self.accept_keyword("WITH"):
                self.expect_keyword("KEYS")
                expected_keys = self._parse_key_list()
            group_spec = GroupSpec(expressions=tuple(expressions), expected_keys=expected_keys)
        elif group_columns:
            raise QuerySyntaxError(
                f"columns {group_columns} appear in the SELECT list but there is no GROUP BY")
        epsilon = None
        if self.accept_keyword("CONSUMING"):
            epsilon = self.expect_number()
        if self._pending_range is not None:
            column, (low, high) = self._pending_range
            if column is not None:
                relation = Projection(relation, outputs=(
                    (column, RangeExpression(Column(column), low, high)),
                    ("chunk", Column("chunk")),
                    ("region", Column("region")),
                ))
        self._at_outer_level = False
        return SelectStatement(aggregation=aggregation, source=relation,
                               group_by=group_spec, epsilon=epsilon)


def parse_query(text: str, *, name: str = "query") -> PrividQuery:
    """Parse query text into a :class:`~repro.query.ast.PrividQuery`."""
    return _Parser(text).parse(name)
