"""The Privid query language: AST, programmatic builder, parser, validator."""

from repro.query.ast import (
    PrividQuery,
    ProcessStatement,
    SelectStatement,
    SplitStatement,
)
from repro.query.builder import QueryBuilder
from repro.query.parser import parse_query
from repro.query.validator import validate_query

__all__ = [
    "PrividQuery",
    "SplitStatement",
    "ProcessStatement",
    "SelectStatement",
    "QueryBuilder",
    "parse_query",
    "validate_query",
]
