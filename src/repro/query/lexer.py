"""Tokenizer for the textual Privid query language (Appendix D).

The language is small: keywords, identifiers (which may contain dots, so
``model.py`` is a single token), numbers, double-quoted strings, and a
handful of symbols.  ``/* ... */`` block comments and ``#`` line comments are
skipped.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import QuerySyntaxError


class TokenType(str, Enum):
    """Lexical categories of the query language."""

    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/column)."""

    type: TokenType
    value: str
    line: int
    column: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        """True if the token has the given type (and value, case-insensitively)."""
        if self.type is not token_type:
            return False
        if value is None:
            return True
        return self.value.upper() == value.upper()


_SYMBOLS = ("<=", ">=", "!=", "(", ")", "[", "]", ",", ";", ":", "=", "*", "+", "-", "/",
            "<", ">")
_IDENT_EXTRA = {"_", ".", "-"}


def tokenize(text: str) -> list[Token]:
    """Convert query text into a token stream ending with an END token."""
    tokens: list[Token] = []
    index = 0
    line = 1
    column = 1
    length = len(text)

    def advance(count: int) -> None:
        nonlocal index, line, column
        for _ in range(count):
            if index < length and text[index] == "\n":
                line += 1
                column = 1
            else:
                column += 1
            index += 1

    while index < length:
        char = text[index]
        if char in " \t\r\n":
            advance(1)
            continue
        if char == "#" :
            while index < length and text[index] != "\n":
                advance(1)
            continue
        if text.startswith("/*", index):
            end = text.find("*/", index + 2)
            if end == -1:
                raise QuerySyntaxError("unterminated comment", line=line, column=column)
            advance(end + 2 - index)
            continue
        if char == '"':
            start_line, start_column = line, column
            advance(1)
            start = index
            while index < length and text[index] != '"':
                advance(1)
            if index >= length:
                raise QuerySyntaxError("unterminated string literal",
                                       line=start_line, column=start_column)
            value = text[start:index]
            advance(1)
            tokens.append(Token(TokenType.STRING, value, start_line, start_column))
            continue
        if char.isdigit() or (char == "." and index + 1 < length and text[index + 1].isdigit()):
            start_line, start_column = line, column
            start = index
            seen_dot = False
            while index < length and (text[index].isdigit() or (text[index] == "." and not seen_dot)):
                if text[index] == ".":
                    # A dot not followed by a digit ends the number (e.g. "10.ROWS").
                    if index + 1 >= length or not text[index + 1].isdigit():
                        break
                    seen_dot = True
                advance(1)
            tokens.append(Token(TokenType.NUMBER, text[start:index], start_line, start_column))
            continue
        if char.isalpha() or char == "_":
            start_line, start_column = line, column
            start = index
            while index < length and (text[index].isalnum() or text[index] in _IDENT_EXTRA):
                advance(1)
            tokens.append(Token(TokenType.IDENT, text[start:index], start_line, start_column))
            continue
        matched_symbol = None
        for symbol in _SYMBOLS:
            if text.startswith(symbol, index):
                matched_symbol = symbol
                break
        if matched_symbol is not None:
            tokens.append(Token(TokenType.SYMBOL, matched_symbol, line, column))
            advance(len(matched_symbol))
            continue
        raise QuerySyntaxError(f"unexpected character {char!r}", line=line, column=column)
    tokens.append(Token(TokenType.END, "", line, column))
    return tokens
