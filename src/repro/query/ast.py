"""Abstract syntax of Privid queries (Appendix D).

A query is a sequence of SPLIT, PROCESS and SELECT statements:

* SPLIT selects a camera and time window and divides it into chunks,
  optionally applying an owner-provided mask and/or spatial-region scheme;
* PROCESS runs an analyst executable over each chunk, producing an
  intermediate table with a declared schema and per-chunk row cap;
* SELECT aggregates one or more intermediate tables into data releases.

The same AST is produced whether the query was written in the textual
language (``repro.query.parser``) or built programmatically
(``repro.query.builder``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import QueryValidationError
from repro.relational.aggregates import Aggregation, GroupSpec
from repro.relational.plan import (
    GroupBy,
    Join,
    Relation,
    Selection,
    TableScan,
    Union,
    Limit,
    Projection,
)
from repro.relational.table import Schema
from repro.utils.timebase import TimeInterval


@dataclass
class SplitStatement:
    """``SPLIT camera BEGIN a END b BY TIME c STRIDE s [WITH MASK m] [BY REGION r] INTO chunks``."""

    camera: str
    begin: float
    end: float
    chunk_duration: float
    output: str
    stride: float = 0.0
    mask: str | None = None
    region_scheme: str | None = None
    sample_period: float | None = None

    def __post_init__(self) -> None:
        if self.end <= self.begin:
            raise QueryValidationError("SPLIT END must be after BEGIN")
        if self.chunk_duration <= 0:
            raise QueryValidationError("chunk duration must be positive")
        if self.chunk_duration + self.stride <= 0:
            raise QueryValidationError("chunk duration plus stride must be positive")
        if not self.output:
            raise QueryValidationError("SPLIT must name its output chunk set (INTO ...)")

    @property
    def window(self) -> TimeInterval:
        """The selected time window."""
        return TimeInterval(self.begin, self.end)


@dataclass
class ProcessStatement:
    """``PROCESS chunks USING exe TIMEOUT t PRODUCING n ROWS WITH SCHEMA (...) INTO table``."""

    chunks: str
    executable: str
    max_rows: int
    schema: Schema
    output: str
    timeout: float = 1.0

    def __post_init__(self) -> None:
        if self.max_rows <= 0:
            raise QueryValidationError("PRODUCING must declare a positive row cap")
        if self.timeout <= 0:
            raise QueryValidationError("TIMEOUT must be positive")
        if not self.output:
            raise QueryValidationError("PROCESS must name its output table (INTO ...)")
        if not self.chunks:
            raise QueryValidationError("PROCESS must name its input chunk set")


@dataclass
class SelectStatement:
    """The outer aggregation of a SELECT plus its source relation and grouping."""

    aggregation: Aggregation
    source: Relation
    group_by: GroupSpec | None = None
    epsilon: float | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if self.epsilon is not None and self.epsilon <= 0:
            raise QueryValidationError("CONSUMING must request a positive epsilon")
        if not self.label:
            self.label = self.aggregation.output_name


@dataclass
class PrividQuery:
    """A complete analyst query."""

    name: str
    splits: list[SplitStatement] = field(default_factory=list)
    processes: list[ProcessStatement] = field(default_factory=list)
    selects: list[SelectStatement] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def split_by_output(self, name: str) -> SplitStatement:
        """Find the SPLIT statement producing the named chunk set."""
        for split in self.splits:
            if split.output == name:
                return split
        raise QueryValidationError(f"no SPLIT produces chunk set {name!r}")

    def process_by_output(self, name: str) -> ProcessStatement:
        """Find the PROCESS statement producing the named table."""
        for process in self.processes:
            if process.output == name:
                return process
        raise QueryValidationError(f"no PROCESS produces table {name!r}")

    def table_names(self) -> list[str]:
        """Names of all intermediate tables the query produces."""
        return [process.output for process in self.processes]


def collect_table_names(relation: Relation) -> set[str]:
    """All intermediate-table names referenced by a relational plan."""
    names: set[str] = set()

    def walk(node: Relation) -> None:
        if isinstance(node, TableScan):
            names.add(node.table_name)
        elif isinstance(node, (Selection, Limit, GroupBy, Projection)):
            walk(node.child)
        elif isinstance(node, Join):
            walk(node.left)
            walk(node.right)
        elif isinstance(node, Union):
            for child in node.children:
                walk(child)
        else:  # pragma: no cover - defensive; new operators must be added here
            raise QueryValidationError(f"unknown relation type {type(node).__name__}")

    walk(relation)
    return names
