"""Query definitions for the paper's evaluation case studies (Table 3, Fig. 5).

Each factory returns a :class:`~repro.query.ast.PrividQuery` parameterised
the way the corresponding case study describes.  The camera names referenced
must already be registered with the :class:`~repro.core.executor.PrividSystem`
(see :mod:`repro.evaluation.runner` for helpers).
"""

from __future__ import annotations

from typing import Sequence

from repro.query.ast import PrividQuery, SelectStatement
from repro.query.builder import QueryBuilder
from repro.relational.aggregates import Aggregation, GroupSpec
from repro.relational.expressions import BinaryOp, Column, Literal, RangeExpression, TimeBucket
from repro.relational.plan import GroupBy, Join, Projection, TableScan, Union
from repro.relational.table import CHUNK_COLUMN
from repro.utils.timebase import SECONDS_PER_DAY, SECONDS_PER_HOUR


def case1_counting_query(camera: str, *, category: str = "person",
                         window_seconds: float = 12 * SECONDS_PER_HOUR,
                         begin: float = 0.0, chunk_duration: float = 60.0,
                         max_rows: int = 10, mask: str | None = "owner",
                         bucket_seconds: float = SECONDS_PER_HOUR,
                         epsilon: float = 1.0,
                         sample_period: float | None = None,
                         region_scheme: str | None = None) -> PrividQuery:
    """Q1-Q3: count unique objects entering the scene per hour (Case 1).

    The PROCESS executable emits one row per object that *enters* during a
    chunk; the SELECT counts rows grouped by the hour of the chunk, so each
    hourly count is a separate data release drawing budget from its own hour
    of frames.
    """
    executable = "count_entering_people.py" if category == "person" else "count_entering_cars.py"
    builder = (QueryBuilder(f"case1-{camera}-{category}")
               .split(camera, begin=begin, end=begin + window_seconds,
                      chunk_duration=chunk_duration, mask=mask, into="chunks",
                      sample_period=sample_period, region_scheme=region_scheme)
               .process("chunks", executable=executable, max_rows=max_rows,
                        schema=[("kind", "STRING", ""), ("dy", "NUMBER", 0.0),
                                ("dx", "NUMBER", 0.0)],
                        into="detections"))
    if bucket_seconds and bucket_seconds < window_seconds:
        builder.select_count(table="detections", bucket_seconds=bucket_seconds, epsilon=epsilon)
    else:
        builder.select_count(table="detections", epsilon=epsilon)
    return builder.build()


_PORTO_SCHEMA = [("plate", "STRING", ""), ("camera", "STRING", ""),
                 ("visible_seconds", "NUMBER", 0.0)]


def _porto_splits(builder: QueryBuilder, cameras: Sequence[str], *, window_seconds: float,
                  chunk_duration: float, max_rows: int) -> list[str]:
    """Add SPLIT/PROCESS pairs for each Porto camera; return the table names."""
    tables: list[str] = []
    for camera in cameras:
        chunk_set = f"chunks_{camera}"
        table = f"table_{camera}"
        builder.split(camera, begin=0.0, end=window_seconds, chunk_duration=chunk_duration,
                      into=chunk_set)
        builder.process(chunk_set, executable="taxi_sightings.py", max_rows=max_rows,
                        schema=_PORTO_SCHEMA, into=table)
        tables.append(table)
    return tables


def case2_porto_working_hours_query(cameras: Sequence[str], taxi_ids: Sequence[str], *,
                                    num_days: int, chunk_duration: float = 900.0,
                                    max_rows: int = 30, epsilon: float = 1.0) -> PrividQuery:
    """Q4: average taxi-driver working hours per day, union across two cameras.

    Sightings from both cameras are stacked, deduplicated by (plate, day)
    with the span of sighting times per group, and the spans (clamped to
    [0, 16] hours) are averaged.
    """
    builder = QueryBuilder("case2-q4-working-hours")
    tables = _porto_splits(builder, cameras, window_seconds=num_days * SECONDS_PER_DAY,
                           chunk_duration=chunk_duration, max_rows=max_rows)
    union = Union(children=tuple(TableScan(table) for table in tables))
    with_day = Projection(union, outputs=(
        ("plate", Column("plate")),
        ("day", TimeBucket(Column(CHUNK_COLUMN), SECONDS_PER_DAY)),
        (CHUNK_COLUMN, Column(CHUNK_COLUMN)),
    ))
    keys = tuple((plate, float(day) * SECONDS_PER_DAY)
                 for plate in taxi_ids for day in range(num_days))
    grouped = GroupBy(with_day, keys=("plate", "day"), explicit_keys=keys,
                      aggregations={"first_seen": (CHUNK_COLUMN, "min"),
                                    "last_seen": (CHUNK_COLUMN, "max")})
    hours_expression = RangeExpression(
        BinaryOp("/", BinaryOp("-", Column("last_seen"), Column("first_seen")),
                 Literal(SECONDS_PER_HOUR)), 0.0, 16.0)
    projected = Projection(grouped, outputs=(
        ("hours", hours_expression),
        (CHUNK_COLUMN, Column(CHUNK_COLUMN)),
    ))
    builder.select(Aggregation(function="AVG", column="hours"), projected, epsilon=epsilon,
                   label="avg-working-hours")
    return builder.build()


def case2_porto_intersection_query(camera_a: str, camera_b: str, taxi_ids: Sequence[str], *,
                                   num_days: int, chunk_duration: float = 900.0,
                                   max_rows: int = 30, epsilon: float = 1.0) -> PrividQuery:
    """Q5: number of (taxi, day) pairs seen by *both* cameras (intersection via JOIN).

    The paper reports the average per day; dividing the released count by the
    number of days is analyst-side post-processing and does not change the
    privacy analysis.
    """
    builder = QueryBuilder("case2-q5-intersection")
    tables = _porto_splits(builder, (camera_a, camera_b),
                           window_seconds=num_days * SECONDS_PER_DAY,
                           chunk_duration=chunk_duration, max_rows=max_rows)
    keys = tuple((plate, float(day) * SECONDS_PER_DAY)
                 for plate in taxi_ids for day in range(num_days))

    def deduplicated(table: str) -> GroupBy:
        with_day = Projection(TableScan(table), outputs=(
            ("plate", Column("plate")),
            ("day", TimeBucket(Column(CHUNK_COLUMN), SECONDS_PER_DAY)),
            (CHUNK_COLUMN, Column(CHUNK_COLUMN)),
        ))
        return GroupBy(with_day, keys=("plate", "day"), explicit_keys=keys)

    joined = Join(left=deduplicated(tables[0]), right=deduplicated(tables[1]),
                  on=("plate", "day"))
    builder.select(Aggregation(function="COUNT"), joined, epsilon=epsilon,
                   label="taxis-traversing-both")
    return builder.build()


def case2_porto_argmax_query(cameras: Sequence[str], *, num_days: int,
                             chunk_duration: float = 3600.0, max_rows: int = 30,
                             epsilon: float = 1.0) -> PrividQuery:
    """Q6: which camera records the most sightings over the whole period (ARGMAX)."""
    builder = QueryBuilder("case2-q6-busiest-camera")
    tables = _porto_splits(builder, cameras, window_seconds=num_days * SECONDS_PER_DAY,
                           chunk_duration=chunk_duration, max_rows=max_rows)
    union = Union(children=tuple(TableScan(table) for table in tables))
    group = GroupSpec(expressions=(("camera", Column("camera")),),
                      expected_keys=tuple(cameras))
    builder.select(Aggregation(function="ARGMAX"), union, group_by=group, epsilon=epsilon,
                   label="busiest-camera")
    return builder.build()


def case3_tree_query(camera: str, *, window_seconds: float = 12 * SECONDS_PER_HOUR,
                     frame_period: float = 0.5, max_rows: int = 20,
                     mask: str | None = "owner", epsilon: float = 1.0) -> PrividQuery:
    """Q7-Q9: fraction of trees with leaves, single-frame chunks over a long window.

    Non-private objects change on timescales of days, so the query uses
    minimal chunks (one frame) and a 12-hour window; the enormous number of
    chunks makes the average's sensitivity, and hence the added noise, tiny.
    """
    builder = (QueryBuilder(f"case3-{camera}-trees")
               .split(camera, begin=0.0, end=window_seconds, chunk_duration=frame_period,
                      mask=mask, into="chunks")
               .process("chunks", executable="tree_leaf_classifier.py", max_rows=max_rows,
                        schema=[("has_leaves", "NUMBER", 0.0)], into="trees")
               .select_average("has_leaves", 0.0, 100.0, table="trees", epsilon=epsilon))
    return builder.build()


def case4_red_light_query(camera: str, *, window_seconds: float = 12 * SECONDS_PER_HOUR,
                          chunk_duration: float = 600.0, max_rows: int = 10,
                          mask: str = "traffic-light-only", epsilon: float = 1.0) -> PrividQuery:
    """Q10-Q12: average duration of a red light, with everything else masked (rho = 0)."""
    builder = (QueryBuilder(f"case4-{camera}-red-light")
               .split(camera, begin=0.0, end=window_seconds, chunk_duration=chunk_duration,
                      mask=mask, into="chunks")
               .process("chunks", executable="red_light_observer.py", max_rows=max_rows,
                        schema=[("red_duration", "NUMBER", 0.0)], into="phases")
               .select_average("red_duration", 0.0, 300.0, table="phases", epsilon=epsilon))
    return builder.build()


def case5_directional_query(camera: str, *, window_seconds: float = 12 * SECONDS_PER_HOUR,
                            chunk_duration: float = 600.0, max_rows: int = 25,
                            mask: str | None = "owner", epsilon: float = 1.0,
                            sample_period: float | None = None) -> PrividQuery:
    """Q13: count people entering from the south and leaving to the north (stateful).

    The direction of travel can only be observed if (most of) the crossing
    fits inside a single chunk, hence the 10-minute chunks.
    """
    builder = (QueryBuilder(f"case5-{camera}-northbound")
               .split(camera, begin=0.0, end=window_seconds, chunk_duration=chunk_duration,
                      mask=mask, into="chunks", sample_period=sample_period)
               .process("chunks", executable="northbound_people.py", max_rows=max_rows,
                        schema=[("matched", "NUMBER", 0.0)], into="crossings")
               .select_count(table="crossings", epsilon=epsilon))
    return builder.build()


def hourly_rate_query(camera: str, *, category: str = "person",
                      window_seconds: float, chunk_duration: float = 60.0,
                      max_rows: int = 10, mask: str | None = "owner",
                      epsilon: float = 1.0,
                      sample_period: float | None = None) -> PrividQuery:
    """A single-release average-rate variant of Case 1 used by the Fig. 7 sweep.

    The query releases the *average number of entering objects per chunk*
    over the whole window; because the sensitivity of an average divides by
    the (growing) number of chunks, the required noise shrinks as the window
    grows, which is the effect Fig. 7 plots.
    """
    executable = "count_entering_people.py" if category == "person" else "count_entering_cars.py"
    builder = (QueryBuilder(f"fig7-{camera}-{category}")
               .split(camera, begin=0.0, end=window_seconds, chunk_duration=chunk_duration,
                      mask=mask, into="chunks", sample_period=sample_period)
               .process("chunks", executable=executable, max_rows=max_rows,
                        schema=[("kind", "STRING", ""), ("dy", "NUMBER", 0.0)],
                        into="detections"))
    source = Projection(TableScan("detections"), outputs=(
        ("present", RangeExpression(Literal(1.0), 0.0, 1.0)),
        (CHUNK_COLUMN, Column(CHUNK_COLUMN)),
    ))
    builder.select(Aggregation(function="SUM", column="present"), source, epsilon=epsilon,
                   label="windowed-count")
    return builder.build()


def total_selects_epsilon(query: PrividQuery) -> float:
    """Total epsilon a query's SELECT statements request (None counts as 1)."""
    total = 0.0
    for select in query.selects:
        total += select.epsilon if select.epsilon is not None else 1.0
    return total


def set_epsilon(select: SelectStatement, epsilon: float) -> None:
    """Adjust a SELECT's requested epsilon in place (used by sweeps)."""
    select.epsilon = epsilon
