"""Accuracy metrics used throughout the evaluation (Section 8.1, "Baselines").

The paper reports, for each query, the mean accuracy over many noisy
executions plus/minus one standard deviation, where accuracy compares the
Privid output against the same query implementation run without Privid
(no chunking, no noise).  Sweeps (Fig. 6) report RMSE of grouped series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.result import QueryResult
from repro.utils.stats import accuracy, root_mean_square_error


@dataclass(frozen=True)
class AccuracySummary:
    """Mean accuracy (in [0, 1]) with its standard deviation across noise samples."""

    mean: float
    std: float
    samples: int

    def as_percent(self) -> str:
        """Format the summary the way Table 3 prints it."""
        return f"{self.mean * 100:.2f}% ± {self.std * 100:.2f}%"


def result_accuracy(result: QueryResult, reference: float | Sequence[float]) -> float:
    """Accuracy of one noisy result against a reference value or series.

    For grouped queries the reference is a series aligned with the releases
    (by position); accuracy is averaged over releases with a nonzero
    reference, mirroring the paper's per-query scalar accuracy.
    """
    values = [release.noisy_value for release in result.releases
              if release.kind == "numeric"]
    if isinstance(reference, (int, float)):
        if len(values) != 1:
            total_reference = float(reference)
            total_value = float(sum(values))
            return accuracy(total_value, total_reference)
        return accuracy(float(values[0]), float(reference))
    reference_list = [float(value) for value in reference]
    if len(reference_list) != len(values):
        raise ValueError(
            f"reference series has {len(reference_list)} entries but the result has "
            f"{len(values)} numeric releases")
    accuracies = [accuracy(value, ref) for value, ref in zip(values, reference_list) if ref != 0]
    if not accuracies:
        return 1.0
    return float(np.mean(accuracies))


def repeated_accuracy(results: Sequence[QueryResult],
                      reference: float | Sequence[float]) -> AccuracySummary:
    """Mean +- std accuracy over repeated noisy executions of the same query."""
    scores = [result_accuracy(result, reference) for result in results]
    if not scores:
        return AccuracySummary(mean=0.0, std=0.0, samples=0)
    return AccuracySummary(mean=float(np.mean(scores)), std=float(np.std(scores)),
                           samples=len(scores))


def series_rmse(result: QueryResult, reference: Sequence[float]) -> float:
    """RMSE of a grouped result's noisy series against a reference series (Fig. 6)."""
    values = [float(release.noisy_value) for release in result.releases
              if release.kind == "numeric"]
    if len(values) != len(reference):
        raise ValueError("series lengths differ")
    return root_mean_square_error(values, list(reference))


def argmax_hit_rate(results: Sequence[QueryResult], expected_winner: object) -> float:
    """Fraction of repeated runs whose ARGMAX release picked the expected winner."""
    if not results:
        return 0.0
    hits = 0
    for result in results:
        winners = [release.noisy_value for release in result.releases
                   if release.kind == "argmax"]
        if winners and winners[0] == expected_winner:
            hits += 1
    return hits / len(results)
