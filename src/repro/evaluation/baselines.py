"""Ground-truth baselines for the evaluation queries.

Two kinds of references appear in the evaluation:

* the paper's headline accuracy compares Privid against the same query
  implementation run *without* Privid (no chunking, no noise) — obtained by
  calling the executor with ``add_noise=False`` over a single chunk, or more
  cheaply by these ground-truth computations when the executable's logic is
  a direct function of the scene (the two coincide up to detector noise);
* scene ground truth, available because the substrate is a simulator, which
  the benchmarks also report so readers can see both gaps separately
  (Section 8.3's "two sources of inaccuracy").
"""

from __future__ import annotations

from typing import Iterable

from repro.scene.objects import SceneObject
from repro.scene.scenarios import Scenario
from repro.utils.timebase import SECONDS_PER_HOUR, TimeInterval
from repro.video.video import SyntheticVideo


def ground_truth_hourly_counts(video: SyntheticVideo, *, category: str,
                               window: TimeInterval,
                               bucket_seconds: float = SECONDS_PER_HOUR) -> list[float]:
    """Number of appearances of a category starting within each time bucket.

    This matches the query semantics of Q1-Q3: each appearance is counted in
    the bucket in which the object *enters* the scene.
    """
    num_buckets = int((window.duration + bucket_seconds - 1) // bucket_seconds)
    counts = [0.0] * num_buckets
    for scene_object in video.objects:
        if scene_object.category != category:
            continue
        for appearance in scene_object.appearances:
            start = appearance.interval.start
            if not window.contains(start):
                continue
            bucket = int((start - window.start) // bucket_seconds)
            if 0 <= bucket < num_buckets:
                counts[bucket] += 1.0
    return counts


def ground_truth_unique_count(video: SyntheticVideo, *, category: str,
                              window: TimeInterval) -> float:
    """Number of appearances of a category starting within the window."""
    return float(sum(ground_truth_hourly_counts(video, category=category, window=window,
                                                bucket_seconds=window.duration or 1.0)))


def tree_leaf_fraction_truth(video: SyntheticVideo) -> float:
    """Fraction of trees with leaves, as a percentage (Q7-Q9 reference)."""
    trees = video.objects_of_category("tree")
    if not trees:
        return 0.0
    with_leaves = sum(1 for tree in trees if tree.attributes.get("has_leaves"))
    return 100.0 * with_leaves / len(trees)


def red_light_duration_truth(scenario: Scenario) -> float:
    """True red-phase duration of the scenario's traffic light (Q10-Q12 reference)."""
    if scenario.red_light_duration is None:
        raise ValueError(f"scenario {scenario.name!r} has no traffic light")
    return scenario.red_light_duration


def directional_crossing_count(video: SyntheticVideo, *, category: str, entry_side: str,
                               exit_side: str, window: TimeInterval) -> float:
    """Number of objects entering from one side and exiting at another (Q13 reference)."""
    count = 0
    for scene_object in video.objects:
        if scene_object.category != category:
            continue
        if scene_object.attributes.get("entry_side") != entry_side:
            continue
        if scene_object.attributes.get("exit_side") != exit_side:
            continue
        for appearance in scene_object.appearances:
            if window.contains(appearance.interval.start):
                count += 1
    return float(count)


def appearances_within(objects: Iterable[SceneObject], window: TimeInterval,
                       *, category: str | None = None) -> int:
    """Count appearances overlapping a window (general-purpose helper for tests)."""
    total = 0
    for scene_object in objects:
        if category is not None and scene_object.category != category:
            continue
        total += len(scene_object.appearances_within(window))
    return total
