"""Helpers to stand up a Privid deployment over scenarios and run experiments.

The runner covers the boilerplate every benchmark shares: deriving a camera's
mask/policy map from a scenario (either from owner "domain knowledge" — the
simulator's ground truth — or from CV estimation as in Table 1), registering
cameras, and executing a query many times to characterise its noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.persistence import masked_persistence
from repro.analysis.policy_estimation import build_mask_policy_map
from repro.core.executor import CameraRegistration, PrividSystem
from repro.core.policy import MaskPolicyMap, PrivacyPolicy
from repro.core.result import QueryResult
from repro.evaluation.metrics import AccuracySummary, repeated_accuracy
from repro.query.ast import PrividQuery
from repro.scene.objects import max_duration_of
from repro.scene.porto import PortoDataset
from repro.scene.scenarios import Scenario
from repro.utils.timebase import TimeInterval
from repro.video.masking import mask_everything_except

#: Safety factor applied on top of ground-truth maxima when the owner sets a
#: policy from domain knowledge rather than CV estimation.
POLICY_SAFETY_FACTOR = 1.05


def scenario_policy_map(scenario: Scenario, *, use_cv_estimation: bool = False,
                        k_segments: int = 2, estimation_window_seconds: float = 600.0,
                        estimation_sample_period: float | None = 1.0) -> MaskPolicyMap:
    """Build a camera's mask -> (rho, K) map for a scenario.

    The default ("domain knowledge") path reads the simulator's ground truth:
    the unmasked rho is the maximum private-object appearance duration, and
    the ``owner`` mask's rho is the maximum persistence surviving the
    scenario's owner mask.  With ``use_cv_estimation=True`` the map is built
    the way the paper does it — detection + tracking over a window of
    historical footage (Section 5.2) — which is slower but exercises the CV
    substrate end to end.

    Every map also contains a ``traffic-light-only`` entry (rho = 0) when the
    scenario has a traffic light, supporting the Case 4 queries.
    """
    if use_cv_estimation:
        masks = {}
        if scenario.owner_mask is not None:
            masks["owner"] = scenario.owner_mask
        policy_map = build_mask_policy_map(
            scenario.video,
            detector_config=scenario.detector_config,
            tracker_config=scenario.tracker_config,
            masks=masks,
            window=TimeInterval(0.0, min(estimation_window_seconds, scenario.video.duration)),
            sample_period=estimation_sample_period,
            k_segments=k_segments,
        )
    else:
        unmasked_rho = max_duration_of(scenario.video.objects) * POLICY_SAFETY_FACTOR
        policy_map = MaskPolicyMap.unmasked(PrivacyPolicy(rho=unmasked_rho,
                                                          k_segments=k_segments))
        if scenario.owner_mask is not None:
            masked = masked_persistence(scenario.video, scenario.owner_mask)
            policy_map.add("owner", scenario.owner_mask,
                           PrivacyPolicy(rho=masked.masked_max * POLICY_SAFETY_FACTOR,
                                         k_segments=k_segments))
    if scenario.traffic_light_box is not None \
            and "traffic-light-only" not in policy_map.entries:
        light_mask = mask_everything_except(scenario.video.width, scenario.video.height,
                                            [scenario.traffic_light_box],
                                            name="traffic-light-only")
        policy_map.add("traffic-light-only", light_mask, PrivacyPolicy(rho=0.0, k_segments=1))
    return policy_map


def register_scenario_camera(system: PrividSystem, scenario: Scenario, *,
                             policy_map: MaskPolicyMap | None = None,
                             epsilon_budget: float = 50.0,
                             sample_period: float | None = None,
                             detector_seed: int = 0,
                             use_cv_estimation: bool = False) -> CameraRegistration:
    """Register a scenario's camera with the system, deriving its policy map if needed."""
    if policy_map is None:
        policy_map = scenario_policy_map(scenario, use_cv_estimation=use_cv_estimation)
    region_schemes = {}
    if scenario.region_scheme is not None:
        region_schemes["default"] = scenario.region_scheme
    return system.register_camera(
        scenario.name,
        scenario.video,
        policy_map=policy_map,
        epsilon_budget=epsilon_budget,
        region_schemes=region_schemes,
        detector_config=scenario.detector_config,
        tracker_config=scenario.tracker_config,
        default_sample_period=sample_period,
        detector_seed=detector_seed,
        metadata=dict(scenario.metadata),
    )


def register_porto_cameras(system: PrividSystem, dataset: PortoDataset, *,
                           cameras: Sequence[str] | None = None,
                           epsilon_budget: float = 50.0,
                           k_segments: int = 4) -> list[CameraRegistration]:
    """Register (a subset of) Porto cameras, each with its own (rho, K) policy.

    The per-camera rho is the maximum single-sighting duration at that
    camera (the paper reports per-camera rho between 15 and 525 seconds); K
    reflects that a taxi may pass the same camera several times per query
    window.
    """
    registrations: list[CameraRegistration] = []
    names = list(cameras) if cameras is not None else dataset.camera_names
    for name in names:
        rho = max(dataset.max_visibility_duration(name), 1.0) * POLICY_SAFETY_FACTOR
        video = dataset.to_video(name)
        registrations.append(system.register_camera(
            name, video,
            policy=PrivacyPolicy(rho=rho, k_segments=k_segments),
            epsilon_budget=epsilon_budget,
            metadata={"dataset": "porto"},
        ))
    return registrations


@dataclass
class RepeatedRun:
    """One query executed once, with its noise re-sampled many times."""

    query_name: str
    base_result: QueryResult
    noise_samples: list[QueryResult] = field(default_factory=list)
    reference: Any = None
    accuracy: AccuracySummary | None = None

    @property
    def raw_series(self) -> list[float]:
        """Raw (pre-noise) values of the numeric releases."""
        return [float(release.raw_value_unsafe) for release in self.base_result.releases
                if release.kind == "numeric"]

    @property
    def noise_scales(self) -> list[float]:
        """Laplace scale of each numeric release."""
        return [release.noise_scale for release in self.base_result.releases
                if release.kind == "numeric"]


def run_repeated(system: PrividSystem, query: PrividQuery, *, samples: int = 100,
                 reference: Any = None, default_epsilon: float = 1.0,
                 charge_budget: bool = False) -> RepeatedRun:
    """Execute a query once, then resample its noise ``samples`` times.

    Only the Laplace noise is random, so the pipeline runs once and the noise
    is redrawn from the stored raw values — this is how the evaluation
    affords 100-1000 samples per configuration.  Budget charging defaults to
    off because sweeps re-run the same window many times.
    """
    base = system.execute(query, default_epsilon=default_epsilon, charge_budget=charge_budget)
    noise_samples = [system.resample_noise(base) for _ in range(samples)]
    accuracy = repeated_accuracy(noise_samples, reference) if reference is not None else None
    return RepeatedRun(query_name=query.name, base_result=base, noise_samples=noise_samples,
                       reference=reference, accuracy=accuracy)


@dataclass
class EvaluationEnvironment:
    """A ready-made deployment over the three primary scenarios (and optionally Porto).

    Benchmarks use this to avoid re-generating scenes for every experiment in
    a module; tests use much smaller hand-built environments instead.
    """

    system: PrividSystem
    scenarios: dict[str, Scenario] = field(default_factory=dict)
    porto: PortoDataset | None = None

    @classmethod
    def build(cls, scenario_names: Sequence[str] = ("campus", "highway", "urban"), *,
              scale: float = 0.2, duration_hours: float = 12.0, seed: int = 0,
              sample_period: float | None = 1.0,
              porto: PortoDataset | None = None,
              porto_cameras: Sequence[str] | None = None) -> "EvaluationEnvironment":
        """Generate scenarios, derive policies and register everything."""
        from repro.scene.scenarios import build_scenario

        system = PrividSystem(seed=seed)
        environment = cls(system=system, porto=porto)
        for name in scenario_names:
            scenario = build_scenario(name, scale=scale, duration_hours=duration_hours)
            environment.scenarios[name] = scenario
            register_scenario_camera(system, scenario, sample_period=sample_period)
        if porto is not None:
            register_porto_cameras(system, porto, cameras=porto_cameras)
        return environment
