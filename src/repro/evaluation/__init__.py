"""Evaluation harness: the paper's queries (Q1-Q13), baselines and metrics."""

from repro.evaluation.metrics import AccuracySummary, repeated_accuracy, series_rmse
from repro.evaluation.baselines import (
    directional_crossing_count,
    ground_truth_hourly_counts,
    ground_truth_unique_count,
    red_light_duration_truth,
    tree_leaf_fraction_truth,
)
from repro.evaluation.queries import (
    case1_counting_query,
    case2_porto_argmax_query,
    case2_porto_intersection_query,
    case2_porto_working_hours_query,
    case3_tree_query,
    case4_red_light_query,
    case5_directional_query,
)
from repro.evaluation.runner import (
    EvaluationEnvironment,
    RepeatedRun,
    register_scenario_camera,
    run_repeated,
    scenario_policy_map,
)

__all__ = [
    "AccuracySummary",
    "repeated_accuracy",
    "series_rmse",
    "ground_truth_hourly_counts",
    "ground_truth_unique_count",
    "tree_leaf_fraction_truth",
    "red_light_duration_truth",
    "directional_crossing_count",
    "case1_counting_query",
    "case2_porto_working_hours_query",
    "case2_porto_intersection_query",
    "case2_porto_argmax_query",
    "case3_tree_query",
    "case4_red_light_query",
    "case5_directional_query",
    "EvaluationEnvironment",
    "RepeatedRun",
    "register_scenario_camera",
    "scenario_policy_map",
    "run_repeated",
]
