"""2D geometry primitives for frames: points, bounding boxes, grids.

Coordinates are expressed in pixels with the origin at the top-left corner of
the frame, x increasing to the right and y increasing downwards, matching the
convention of the computer-vision libraries the paper uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True)
class Point:
    """A point in frame coordinates."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned box described by its top-left corner, width and height.

    Slotted: boxes are materialised in bulk at columnar-pipeline API
    boundaries (detections, track endpoints), so each instance must be cheap.
    """

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width < 0 or self.height < 0:
            raise ValueError("bounding box dimensions must be non-negative")

    def __getstate__(self) -> tuple[float, float, float, float]:
        # Explicit state hooks: default slot-state pickling restores via
        # setattr, which a frozen dataclass forbids on Python 3.10.
        return (self.x, self.y, self.width, self.height)

    def __setstate__(self, state: tuple[float, float, float, float]) -> None:
        for name, value in zip(("x", "y", "width", "height"), state):
            object.__setattr__(self, name, value)

    @property
    def x2(self) -> float:
        """Right edge (exclusive)."""
        return self.x + self.width

    @property
    def y2(self) -> float:
        """Bottom edge (exclusive)."""
        return self.y + self.height

    @property
    def area(self) -> float:
        """Box area in square pixels."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Center point of the box."""
        return Point(self.x + self.width / 2.0, self.y + self.height / 2.0)

    def contains_point(self, point: Point) -> bool:
        """Return True if the point lies inside the box (edges inclusive)."""
        return self.x <= point.x <= self.x2 and self.y <= point.y <= self.y2

    def translate(self, dx: float, dy: float) -> "BoundingBox":
        """Return a copy of the box shifted by (dx, dy)."""
        return BoundingBox(self.x + dx, self.y + dy, self.width, self.height)

    def scaled(self, factor: float) -> "BoundingBox":
        """Return a copy scaled about its center by ``factor``."""
        new_width = self.width * factor
        new_height = self.height * factor
        center = self.center
        return BoundingBox(center.x - new_width / 2.0, center.y - new_height / 2.0,
                           new_width, new_height)

    def intersection(self, other: "BoundingBox") -> "BoundingBox | None":
        """Return the overlapping box, or None if the boxes are disjoint."""
        left = max(self.x, other.x)
        top = max(self.y, other.y)
        right = min(self.x2, other.x2)
        bottom = min(self.y2, other.y2)
        if right <= left or bottom <= top:
            return None
        return BoundingBox(left, top, right - left, bottom - top)

    def intersection_area(self, other: "BoundingBox") -> float:
        """Area of overlap with another box (0 if disjoint)."""
        overlap = self.intersection(other)
        return 0.0 if overlap is None else overlap.area

    def iou(self, other: "BoundingBox") -> float:
        """Intersection-over-union with another box, in [0, 1]."""
        overlap_area = self.intersection_area(other)
        union_area = self.area + other.area - overlap_area
        if union_area <= 0:
            return 0.0
        return overlap_area / union_area

    def coverage_by(self, other: "BoundingBox") -> float:
        """Fraction of this box's area covered by ``other`` (0 if this box is empty)."""
        if self.area <= 0:
            return 0.0
        return self.intersection_area(other) / self.area

    def clamp(self, width: float, height: float) -> "BoundingBox":
        """Return the portion of this box inside a ``width`` x ``height`` frame."""
        left = min(max(self.x, 0.0), width)
        top = min(max(self.y, 0.0), height)
        right = min(max(self.x2, 0.0), width)
        bottom = min(max(self.y2, 0.0), height)
        return BoundingBox(left, top, max(0.0, right - left), max(0.0, bottom - top))


def interpolate_boxes(start: BoundingBox, end: BoundingBox, fraction: float) -> BoundingBox:
    """Linearly interpolate between two boxes; ``fraction`` in [0, 1]."""
    fraction = min(1.0, max(0.0, fraction))
    return BoundingBox(
        start.x + (end.x - start.x) * fraction,
        start.y + (end.y - start.y) * fraction,
        start.width + (end.width - start.width) * fraction,
        start.height + (end.height - start.height) * fraction,
    )


@dataclass(frozen=True)
class GridSpec:
    """A regular grid dividing a frame into equal cells.

    Appendix F's mask-selection algorithm works over a grid of 10x10-pixel
    boxes; the grid here is parameterised by cell size so tests can use
    coarser grids.
    """

    frame_width: float
    frame_height: float
    cell_width: float
    cell_height: float

    def __post_init__(self) -> None:
        if self.cell_width <= 0 or self.cell_height <= 0:
            raise ValueError("grid cell dimensions must be positive")
        if self.frame_width <= 0 or self.frame_height <= 0:
            raise ValueError("frame dimensions must be positive")

    @property
    def columns(self) -> int:
        """Number of grid columns."""
        return int(math.ceil(self.frame_width / self.cell_width))

    @property
    def rows(self) -> int:
        """Number of grid rows."""
        return int(math.ceil(self.frame_height / self.cell_height))

    @property
    def num_cells(self) -> int:
        """Total number of cells in the grid."""
        return self.columns * self.rows

    def cell_index(self, row: int, column: int) -> int:
        """Flattened index of the cell at (row, column)."""
        if not (0 <= row < self.rows and 0 <= column < self.columns):
            raise IndexError(f"cell ({row}, {column}) outside grid {self.rows}x{self.columns}")
        return row * self.columns + column

    def cell_box(self, index: int) -> BoundingBox:
        """Bounding box of the cell with flattened index ``index``."""
        if not (0 <= index < self.num_cells):
            raise IndexError(f"cell index {index} outside grid of {self.num_cells} cells")
        row, column = divmod(index, self.columns)
        return BoundingBox(
            column * self.cell_width,
            row * self.cell_height,
            min(self.cell_width, self.frame_width - column * self.cell_width),
            min(self.cell_height, self.frame_height - row * self.cell_height),
        )

    def cells(self) -> Iterator[tuple[int, BoundingBox]]:
        """Yield (index, box) for every cell in the grid."""
        for index in range(self.num_cells):
            yield index, self.cell_box(index)

    def cells_covering(self, box: BoundingBox, *, min_overlap: float = 0.0) -> list[int]:
        """Indices of cells whose overlap area with ``box`` exceeds ``min_overlap``.

        With the default ``min_overlap`` of 0, any cell that strictly overlaps
        the box is included.
        """
        clamped = box.clamp(self.frame_width, self.frame_height)
        if clamped.area <= 0:
            return []
        first_col = int(clamped.x // self.cell_width)
        last_col = min(self.columns - 1, int(max(clamped.x, clamped.x2 - 1e-9) // self.cell_width))
        first_row = int(clamped.y // self.cell_height)
        last_row = min(self.rows - 1, int(max(clamped.y, clamped.y2 - 1e-9) // self.cell_height))
        covered: list[int] = []
        for row in range(first_row, last_row + 1):
            for column in range(first_col, last_col + 1):
                index = self.cell_index(row, column)
                if clamped.intersection_area(self.cell_box(index)) > min_overlap:
                    covered.append(index)
        return covered
