"""Static spatial masks (Section 7.1).

A mask is a fixed set of frame regions whose pixels are removed (blacked out)
before the analyst's executable sees the video.  In this reproduction a mask
is a collection of boxes (typically grid cells); an object is considered
hidden by the mask in a frame when a sufficient fraction of its bounding box
is covered by masked area.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import MaskError
from repro.video.geometry import BoundingBox, GridSpec

#: Fraction of an object's box that must be covered by masked pixels for the
#: object to be treated as invisible in that frame.  Real denaturing blacks
#: out pixels; a detector generally fails once most of the object is gone.
DEFAULT_HIDE_THRESHOLD = 0.5


@dataclass(frozen=True)
class Mask:
    """A named, static set of masked regions for one camera."""

    name: str
    regions: tuple[BoundingBox, ...] = field(default_factory=tuple)
    hide_threshold: float = DEFAULT_HIDE_THRESHOLD

    def __post_init__(self) -> None:
        if not 0.0 < self.hide_threshold <= 1.0:
            raise MaskError("hide_threshold must be in (0, 1]")

    @property
    def is_empty(self) -> bool:
        """True if the mask removes nothing."""
        return len(self.regions) == 0

    def masked_area(self) -> float:
        """Total masked area, counting overlapping regions once approximately.

        Regions produced from grid cells never overlap, so a simple sum is
        exact for the masks this library generates.
        """
        return sum(region.area for region in self.regions)

    def covered_fraction(self, box: BoundingBox) -> float:
        """Fraction of ``box`` covered by masked regions (regions assumed disjoint)."""
        if box.area <= 0:
            return 0.0
        covered = sum(box.intersection_area(region) for region in self.regions)
        return min(1.0, covered / box.area)

    def hides(self, box: BoundingBox) -> bool:
        """True if an object with bounding box ``box`` is hidden by this mask."""
        if self.is_empty:
            return False
        return self.covered_fraction(box) >= self.hide_threshold

    def covered_fractions(self, boxes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`covered_fraction` over an ``(n, 4)`` box array.

        Rows are ``[x, y, width, height]``.  The intersection-area math
        mirrors the scalar path operation-for-operation (same region order,
        same left-to-right accumulation), so both produce identical floats.
        """
        boxes = np.asarray(boxes, dtype=np.float64)
        count = boxes.shape[0]
        if count == 0 or self.is_empty:
            return np.zeros(count, dtype=np.float64)
        x1 = boxes[:, 0]
        y1 = boxes[:, 1]
        x2 = x1 + boxes[:, 2]
        y2 = y1 + boxes[:, 3]
        areas = boxes[:, 2] * boxes[:, 3]
        covered = np.zeros(count, dtype=np.float64)
        for region in self.regions:
            left = np.maximum(x1, region.x)
            right = np.minimum(x2, region.x2)
            top = np.maximum(y1, region.y)
            bottom = np.minimum(y2, region.y2)
            width = right - left
            height = bottom - top
            covered += np.where((width > 0) & (height > 0), width * height, 0.0)
        safe_areas = np.where(areas > 0, areas, 1.0)
        return np.where(areas > 0, np.minimum(1.0, covered / safe_areas), 0.0)

    def hides_boxes(self, boxes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`hides` over an ``(n, 4)`` box array."""
        boxes = np.asarray(boxes, dtype=np.float64)
        if self.is_empty:
            return np.zeros(boxes.shape[0], dtype=bool)
        return self.covered_fractions(boxes) >= self.hide_threshold

    def union(self, other: "Mask", *, name: str | None = None) -> "Mask":
        """Return a mask combining both sets of regions."""
        return Mask(name=name or f"{self.name}+{other.name}",
                    regions=self.regions + other.regions,
                    hide_threshold=min(self.hide_threshold, other.hide_threshold))


EMPTY_MASK = Mask(name="none", regions=())


def mask_from_grid_cells(grid: GridSpec, cell_indices: Iterable[int], *,
                         name: str = "grid-mask",
                         hide_threshold: float = DEFAULT_HIDE_THRESHOLD) -> Mask:
    """Build a mask from a set of grid-cell indices (Appendix F style)."""
    regions = tuple(grid.cell_box(index) for index in sorted(set(cell_indices)))
    return Mask(name=name, regions=regions, hide_threshold=hide_threshold)


def mask_everything_except(frame_width: float, frame_height: float,
                           keep: Sequence[BoundingBox], *, name: str = "keep-only") -> Mask:
    """Mask the entire frame except the given boxes.

    Used by the red-light queries (Case 4), which mask everything but the
    traffic light so that no private object remains visible (rho = 0).  The
    mask is represented as the four rectangles surrounding each kept box's
    union; for the common case of a single kept box this is exact.
    """
    if not keep:
        return Mask(name=name, regions=(BoundingBox(0, 0, frame_width, frame_height),))
    left = min(box.x for box in keep)
    top = min(box.y for box in keep)
    right = max(box.x2 for box in keep)
    bottom = max(box.y2 for box in keep)
    regions = []
    if left > 0:
        regions.append(BoundingBox(0, 0, left, frame_height))
    if right < frame_width:
        regions.append(BoundingBox(right, 0, frame_width - right, frame_height))
    if top > 0:
        regions.append(BoundingBox(left, 0, right - left, top))
    if bottom < frame_height:
        regions.append(BoundingBox(left, bottom, right - left, frame_height - bottom))
    return Mask(name=name, regions=tuple(regions))


def apply_mask_to_boxes(mask: Mask, boxes: Sequence[BoundingBox]) -> list[BoundingBox]:
    """Return the subset of boxes not hidden by the mask (order preserved)."""
    if mask.is_empty:
        return list(boxes)
    return [box for box in boxes if not mask.hides(box)]
