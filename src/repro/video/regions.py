"""Spatial splitting into regions (Section 7.2).

The video owner defines a region scheme at camera-registration time: a set of
named regions with either *soft* boundaries (objects may move between regions
over time, e.g. two crosswalks) or *hard* boundaries (objects never cross,
e.g. opposite directions of a highway).  At query time the analyst can split
each temporal chunk further by region; with soft boundaries the chunk size is
restricted to a single frame so that an object can be present in at most one
(chunk, region) cell.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Sequence

import numpy as np

from repro.errors import RegionError
from repro.video.geometry import BoundingBox, Point


class BoundaryType(str, Enum):
    """Whether objects can cross between regions of a scheme over time."""

    SOFT = "soft"
    HARD = "hard"


@dataclass(frozen=True)
class Region:
    """A named spatial region of the frame."""

    name: str
    box: BoundingBox

    def contains(self, point: Point) -> bool:
        """True if the point lies inside the region."""
        return self.box.contains_point(point)

    def contains_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`contains` over coordinate arrays (edges inclusive)."""
        box = self.box
        return ((box.x <= xs) & (xs <= box.x2)
                & (box.y <= ys) & (ys <= box.y2))


@dataclass(frozen=True)
class RegionScheme:
    """A named partition of the frame into regions with a boundary type."""

    name: str
    regions: tuple[Region, ...]
    boundary: BoundaryType = BoundaryType.SOFT

    def __post_init__(self) -> None:
        if not self.regions:
            raise RegionError("a region scheme needs at least one region")
        names = [region.name for region in self.regions]
        if len(names) != len(set(names)):
            raise RegionError("region names within a scheme must be unique")

    @property
    def region_names(self) -> tuple[str, ...]:
        """Names of the regions, in definition order."""
        return tuple(region.name for region in self.regions)

    def region_of(self, box: BoundingBox) -> Region | None:
        """Region containing the center of ``box``, or None if outside all regions."""
        center = box.center
        for region in self.regions:
            if region.contains(center):
                return region
        return None

    def assign(self, boxes: Sequence[BoundingBox]) -> dict[str, list[BoundingBox]]:
        """Group boxes by region name (boxes outside every region are dropped)."""
        assignment: dict[str, list[BoundingBox]] = {name: [] for name in self.region_names}
        for box in boxes:
            region = self.region_of(box)
            if region is not None:
                assignment[region.name].append(box)
        return assignment

    def validate_chunk_size(self, chunk_duration: float, frame_period: float) -> None:
        """Enforce the soft-boundary restriction of Section 7.2.

        Soft boundaries require a chunk size of a single frame so that an
        individual can occupy at most one (chunk, region) cell; hard
        boundaries impose no restriction.
        """
        if self.boundary is BoundaryType.HARD:
            return
        if chunk_duration > frame_period + 1e-9:
            raise RegionError(
                "region schemes with soft boundaries require a chunk size of one frame "
                f"(chunk duration {chunk_duration}s exceeds frame period {frame_period}s)")


def grid_region_scheme(frame_width: float, frame_height: float, rows: int, columns: int, *,
                       name: str = "grid", boundary: BoundaryType = BoundaryType.SOFT) -> RegionScheme:
    """Build a simple rows x columns grid region scheme.

    The paper leaves grid splitting to future work (Section 7.2 "Grid Split");
    this helper implements the basic construction so the extension can be
    exercised by tests and the ablation benchmark.
    """
    if rows <= 0 or columns <= 0:
        raise RegionError("grid dimensions must be positive")
    cell_width = frame_width / columns
    cell_height = frame_height / rows
    regions: list[Region] = []
    for row in range(rows):
        for column in range(columns):
            regions.append(Region(
                name=f"r{row}c{column}",
                box=BoundingBox(column * cell_width, row * cell_height, cell_width, cell_height),
            ))
    return RegionScheme(name=name, regions=tuple(regions), boundary=boundary)


def vertical_split_scheme(frame_width: float, frame_height: float,
                          boundaries: Iterable[float], *, name: str = "vertical",
                          boundary: BoundaryType = BoundaryType.SOFT) -> RegionScheme:
    """Split the frame into vertical strips at the given x coordinates."""
    xs = sorted(set(float(x) for x in boundaries))
    edges = [0.0] + [x for x in xs if 0.0 < x < frame_width] + [frame_width]
    regions = [Region(name=f"strip{i}", box=BoundingBox(left, 0.0, right - left, frame_height))
               for i, (left, right) in enumerate(zip(edges, edges[1:]))]
    return RegionScheme(name=name, regions=tuple(regions), boundary=boundary)
