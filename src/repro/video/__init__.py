"""Video substrate: geometry, synthetic videos, chunking, masks, regions."""

from repro.video.geometry import BoundingBox, GridSpec, Point
from repro.video.video import BatchObject, FrameBatch, FrameTruth, SyntheticVideo, VisibleObject
from repro.video.chunking import Chunk, ChunkSpec, count_chunks, iter_chunks, split_interval
from repro.video.masking import Mask, apply_mask_to_boxes
from repro.video.regions import Region, RegionScheme

__all__ = [
    "BoundingBox",
    "GridSpec",
    "Point",
    "BatchObject",
    "FrameBatch",
    "FrameTruth",
    "SyntheticVideo",
    "VisibleObject",
    "Chunk",
    "ChunkSpec",
    "count_chunks",
    "iter_chunks",
    "split_interval",
    "Mask",
    "apply_mask_to_boxes",
    "Region",
    "RegionScheme",
]
