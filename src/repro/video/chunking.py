"""Temporal (and optionally spatial) splitting of video into chunks (Section 6.2).

The SPLIT statement selects a window of a camera's video and divides it into
contiguous chunks of fixed duration; each chunk is later handed to an
isolated instance of the analyst's executable.  A chunk may additionally be
restricted to a spatial region (Section 7.2) and have a mask applied
(Section 7.1) before the executable sees it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator

import numpy as np

from repro.utils.timebase import TimeInterval, frame_index_range
from repro.video.masking import EMPTY_MASK, Mask
from repro.video.regions import Region, RegionScheme
from repro.video.video import FrameBatch, FrameTruth, SyntheticVideo


@dataclass(frozen=True)
class ChunkSpec:
    """Parameters of a SPLIT statement.

    ``chunk_duration`` and ``stride`` are in seconds; ``stride`` is the gap
    between consecutive chunks (0 for contiguous chunks).  ``sample_period``
    controls how densely the synthetic frames are sampled when the chunk is
    processed; it does not affect privacy accounting, only simulation cost.
    """

    window: TimeInterval
    chunk_duration: float
    stride: float = 0.0
    sample_period: float | None = None

    def __post_init__(self) -> None:
        if self.chunk_duration <= 0:
            raise ValueError("chunk duration must be positive")
        if self.chunk_duration + self.stride <= 0:
            raise ValueError("chunk duration plus stride must be positive")

    @property
    def num_chunks(self) -> int:
        """Number of chunks the window will be divided into."""
        return self.window.num_chunks(self.chunk_duration, self.stride)


@dataclass(frozen=True)
class Chunk:
    """One chunk of video handed to an isolated executable instance.

    The chunk exposes only *views* of the underlying video: ground-truth
    frames restricted to the chunk interval, with the mask and region filter
    already applied, so an executable physically cannot observe anything
    outside its chunk.
    """

    video: SyntheticVideo
    index: int
    interval: TimeInterval
    mask: Mask = EMPTY_MASK
    region: Region | None = None
    sample_period: float | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def chunk_id(self) -> str:
        """Stable identifier combining camera, index and region."""
        suffix = f":{self.region.name}" if self.region is not None else ""
        return f"{self.video.name}#{self.index}{suffix}"

    @property
    def start_timestamp(self) -> float:
        """Timestamp of the chunk's first frame (the implicit ``chunk`` column)."""
        return self.interval.start

    @property
    def duration(self) -> float:
        """Chunk duration in seconds."""
        return self.interval.duration

    def _apply_filters(self, batch: FrameBatch) -> FrameBatch:
        """Apply the mask and region restriction to a whole batch (vectorized).

        Coverage and containment are computed as array intersection math over
        each object's per-frame boxes; objects left with no visible frame are
        dropped from the batch entirely.
        """
        if self.mask.is_empty and self.region is None:
            return batch
        kept = []
        for entry in batch.objects:
            visible = entry.visible
            if not self.mask.is_empty:
                positions = np.nonzero(visible)[0]
                hidden = self.mask.hides_boxes(entry.boxes[positions])
                if hidden.any():
                    visible[positions[hidden]] = False
            if self.region is not None and visible.any():
                positions = np.nonzero(visible)[0]
                boxes = entry.boxes[positions]
                centers_x = boxes[:, 0] + boxes[:, 2] / 2.0
                centers_y = boxes[:, 1] + boxes[:, 3] / 2.0
                inside = self.region.contains_points(centers_x, centers_y)
                if not inside.all():
                    visible[positions[~inside]] = False
            if visible.any():
                kept.append(entry)
        batch.objects = kept
        return batch

    def frame_batch(self, *, max_frames: int | None = None) -> FrameBatch:
        """Columnar masked/region-filtered ground truth for the whole chunk.

        This is the hot path every executable-facing view derives from: the
        chunk renders as one :class:`~repro.video.video.FrameBatch` and the
        mask/region restriction is applied as vectorized box math.
        ``max_frames`` truncates the batch to the chunk's first frames, for
        executables with single-frame semantics.
        """
        candidates = self.video.objects_overlapping(self.interval)
        window = self.interval.clamp(self.video.interval)
        step = self.video._sample_step(self.sample_period)
        first_frame, last_frame = frame_index_range(window.start, window.end,
                                                    self.video.fps)
        frame_indices = np.arange(first_frame, last_frame, step, dtype=np.int64)
        if max_frames is not None:
            frame_indices = frame_indices[:max_frames]
        batch = self.video.batch_for_indices(frame_indices, candidates)
        return self._apply_filters(batch)

    def frames(self) -> Iterator[FrameTruth]:
        """Yield masked/region-filtered ground truth for each frame of the chunk.

        Legacy per-frame adapter over :meth:`frame_batch`, kept so
        third-party executables written against the frame iterator keep
        working unchanged.
        """
        yield from self.frame_batch().iter_frames()

    def visible_objects(self) -> list:
        """Ground-truth objects visible at some point during the chunk.

        This is a convenience equivalent to scanning every frame of the chunk
        at infinite frame rate: an object is included if any of its
        appearances overlaps the chunk interval and it is not hidden by the
        chunk's mask/region at its appearance midpoint.  Fast-path used by
        executables over coarse-grained footage (e.g. the Porto camera logs)
        where per-frame scanning adds nothing.
        """
        kept = []
        for scene_object in self.video.objects_overlapping(self.interval):
            for appearance in scene_object.appearances_within(self.interval):
                overlap = appearance.interval.intersection(self.interval)
                if overlap is None:
                    continue
                midpoint = (overlap.start + overlap.end) / 2.0
                box = appearance.box_at(midpoint)
                if box is None:
                    continue
                if self.mask.hides(box):
                    continue
                if self.region is not None and not self.region.contains(box.center):
                    continue
                kept.append((scene_object, overlap))
                break
        return kept

    def with_region(self, region: Region) -> "Chunk":
        """Return a copy of the chunk restricted to ``region``."""
        return replace(self, region=region)


def iter_chunks(video: SyntheticVideo, spec: ChunkSpec, *,
                mask: Mask = EMPTY_MASK,
                region_scheme: RegionScheme | None = None,
                validate_frame_alignment: bool = True) -> Iterator[Chunk]:
    """Lazily split a video window into chunks according to ``spec``.

    The streaming twin of :func:`split_interval`: chunks are produced one at
    a time as the consumer pulls them, so a SPLIT over hours of footage never
    materialises its whole chunk list — the execution engine's bounded
    in-flight window (``ExecutionEngine.imap_chunks``) is the only thing that
    holds chunks alive.  When a region scheme is supplied, each temporal
    chunk is expanded into one chunk per region (the spatial-splitting
    optimisation); soft-boundary schemes enforce their single-frame chunk
    restriction.  Validation runs eagerly at call time, before the first
    chunk is requested.
    """
    if validate_frame_alignment:
        video.validate_chunking(spec.chunk_duration, spec.stride)
    window = spec.window.clamp(video.interval)
    if region_scheme is not None:
        region_scheme.validate_chunk_size(spec.chunk_duration, video.frame_period)

    def generate() -> Iterator[Chunk]:
        for index, interval in enumerate(window.split(spec.chunk_duration, spec.stride)):
            base = Chunk(video=video, index=index, interval=interval, mask=mask,
                         sample_period=spec.sample_period)
            if region_scheme is None:
                yield base
            else:
                for region in region_scheme.regions:
                    yield base.with_region(region)

    return generate()


def count_chunks(video: SyntheticVideo, spec: ChunkSpec, *,
                 region_scheme: RegionScheme | None = None) -> int:
    """Number of chunks :func:`iter_chunks` will produce, without producing them.

    Sensitivity accounting (``TableProperties.num_chunks``) needs the chunk
    count before the stream is consumed; this computes it from the clamped
    window arithmetic alone, in O(1).
    """
    window = spec.window.clamp(video.interval)
    per_interval = 1 if region_scheme is None else len(region_scheme.regions)
    return window.num_chunks(spec.chunk_duration, spec.stride) * per_interval


def split_interval(video: SyntheticVideo, spec: ChunkSpec, *,
                   mask: Mask = EMPTY_MASK,
                   region_scheme: RegionScheme | None = None,
                   validate_frame_alignment: bool = True) -> list[Chunk]:
    """Split a video window into chunks according to ``spec``.

    Batch adapter over :func:`iter_chunks`, kept for callers that genuinely
    need the full list (tests, small ad-hoc windows); the executor streams.
    """
    return list(iter_chunks(video, spec, mask=mask, region_scheme=region_scheme,
                            validate_frame_alignment=validate_frame_alignment))


def num_chunks_spanned(rho: float, chunk_duration: float) -> int:
    """Worst-case number of chunks a single segment of duration rho can span.

    This is Equation 6.1: ``max_chunks(rho) = 1 + ceil(rho / c)``.  A segment
    that becomes visible in the final frame of a chunk spills into the next
    ``ceil(rho / c)`` chunks.
    """
    import math

    if chunk_duration <= 0:
        raise ValueError("chunk duration must be positive")
    if rho < 0:
        raise ValueError("rho must be non-negative")
    return 1 + int(math.ceil(rho / chunk_duration))
