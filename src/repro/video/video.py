"""Synthetic video model.

A :class:`SyntheticVideo` is the stand-in for a camera's recorded footage: it
knows its frame rate, resolution, duration, and the ground-truth scene
objects visible over time.  Instead of pixels, "rendering" a frame produces
the list of ground-truth objects visible at that instant together with their
bounding boxes; the synthetic detector (``repro.cv.detector``) then degrades
that perfect information the way a real CNN would.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator

from repro.utils.timebase import TimeInterval, frame_index_range, is_integral_frame_count
from repro.video.geometry import BoundingBox

if TYPE_CHECKING:  # imported only for type annotations to avoid a package cycle
    from repro.scene.objects import SceneObject

#: Session-unique tokens telling footage *objects* apart even when their
#: name/fps/duration coincide (two test videos are both called "test-cam");
#: chunk caching keys on this so equal-looking but distinct footage never
#: shares entries.
_CONTENT_TOKENS = itertools.count(1)


@dataclass(frozen=True)
class VisibleObject:
    """A ground-truth object visible in a single frame, with its box."""

    scene_object: SceneObject
    box: BoundingBox

    @property
    def object_id(self) -> str:
        """Identifier of the underlying scene object."""
        return self.scene_object.object_id

    @property
    def category(self) -> str:
        """Class of the underlying scene object (person, car, ...)."""
        return self.scene_object.category

    @property
    def attributes(self) -> dict[str, Any]:
        """Attributes of the underlying scene object (colour, plate, ...)."""
        return self.scene_object.attributes


@dataclass(frozen=True)
class FrameTruth:
    """Ground truth for one frame: its timestamp and all visible objects."""

    timestamp: float
    frame_index: int
    visible: tuple[VisibleObject, ...]

    def of_category(self, category: str) -> tuple[VisibleObject, ...]:
        """Visible objects of the given category."""
        return tuple(obj for obj in self.visible if obj.category == category)


@dataclass
class SyntheticVideo:
    """A camera's footage over a fixed observation window.

    ``duration`` is the total recorded time in seconds; frame timestamps run
    from 0 (inclusive) to ``duration`` (exclusive) in steps of ``1 / fps``.
    """

    name: str
    fps: float
    width: float
    height: float
    duration: float
    objects: list[SceneObject] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("frame dimensions must be positive")
        self._index_bucket_size: float = max(60.0, self.duration / 2048.0)
        self._bucket_index: dict[int, list[SceneObject]] | None = None
        self._content_token: int = next(_CONTENT_TOKENS)

    @property
    def content_token(self) -> int:
        """Session-unique identity of this footage object (used by chunk caching)."""
        return self._content_token

    def _build_index(self) -> dict[int, list[SceneObject]]:
        """Build (lazily) a time-bucket index from appearances to objects.

        Full-day scenarios contain tens of thousands of objects; scanning all
        of them for every frame of every chunk would dominate runtime, so
        windowed lookups go through this coarse bucket index instead.
        """
        index: dict[int, list[SceneObject]] = {}
        size = self._index_bucket_size
        for scene_object in self.objects:
            buckets_seen: set[int] = set()
            for appearance in scene_object.appearances:
                first = int(appearance.interval.start // size)
                last = int(max(appearance.interval.start,
                               appearance.interval.end - 1e-9) // size)
                for bucket in range(first, last + 1):
                    if bucket not in buckets_seen:
                        index.setdefault(bucket, []).append(scene_object)
                        buckets_seen.add(bucket)
        return index

    def invalidate_index(self) -> None:
        """Drop the time-bucket index (called after objects are added)."""
        self._bucket_index = None

    def candidate_objects(self, window: TimeInterval) -> list[SceneObject]:
        """Objects that *may* overlap ``window`` (superset, from the bucket index)."""
        if self._bucket_index is None:
            self._bucket_index = self._build_index()
        size = self._index_bucket_size
        first = int(window.start // size)
        last = int(max(window.start, window.end - 1e-9) // size)
        seen: set[int] = set()
        candidates: list[SceneObject] = []
        for bucket in range(first, last + 1):
            for scene_object in self._bucket_index.get(bucket, ()):
                if id(scene_object) not in seen:
                    seen.add(id(scene_object))
                    candidates.append(scene_object)
        return candidates

    @property
    def interval(self) -> TimeInterval:
        """The full observation window of the video."""
        return TimeInterval(0.0, self.duration)

    @property
    def num_frames(self) -> int:
        """Total number of frames in the video."""
        return int(self.duration * self.fps)

    @property
    def frame_period(self) -> float:
        """Seconds between consecutive frames."""
        return 1.0 / self.fps

    def frame_index_at(self, timestamp: float) -> int:
        """Frame index containing ``timestamp``."""
        return int(timestamp * self.fps)

    def frame_timestamp(self, frame_index: int) -> float:
        """Timestamp of the first instant of frame ``frame_index``."""
        return frame_index / self.fps

    def validate_chunking(self, chunk_duration: float, stride: float) -> None:
        """Raise ValueError unless chunking parameters map to whole frames.

        Appendix D requires both the chunk duration and the stride to
        correspond to an integer number of frames.
        """
        if chunk_duration <= 0:
            raise ValueError("chunk duration must be positive")
        if not is_integral_frame_count(chunk_duration, self.fps):
            raise ValueError(
                f"chunk duration {chunk_duration}s is not an integer number of frames "
                f"at {self.fps} fps")
        if not is_integral_frame_count(stride, self.fps):
            raise ValueError(
                f"stride {stride}s is not an integer number of frames at {self.fps} fps")

    def visible_objects_at(self, timestamp: float,
                           candidates: Iterable[SceneObject] | None = None) -> list[VisibleObject]:
        """Ground-truth objects visible at ``timestamp`` with their boxes.

        ``candidates`` restricts the search to a pre-computed set of objects
        (used by chunk iteration); by default the time-bucket index narrows
        the search.
        """
        if candidates is None:
            candidates = self.candidate_objects(
                TimeInterval(timestamp, timestamp + self.frame_period))
        visible: list[VisibleObject] = []
        for scene_object in candidates:
            box = scene_object.box_at(timestamp)
            if box is not None:
                visible.append(VisibleObject(scene_object, box))
        return visible

    def frame_truth(self, frame_index: int) -> FrameTruth:
        """Ground truth for a single frame by index."""
        timestamp = self.frame_timestamp(frame_index)
        return FrameTruth(timestamp=timestamp, frame_index=frame_index,
                          visible=tuple(self.visible_objects_at(timestamp)))

    def frames(self, window: TimeInterval | None = None, *,
               sample_period: float | None = None) -> Iterator[FrameTruth]:
        """Yield ground truth for every frame in ``window`` (default: whole video).

        ``sample_period`` optionally subsamples frames (in seconds); the
        default yields every frame.  Subsampling is used heavily by the
        benchmarks to keep full-day scenarios tractable without changing the
        shape of the results.
        """
        window = self.interval if window is None else window.clamp(self.interval)
        period = self.frame_period if sample_period is None else max(sample_period, self.frame_period)
        step = max(1, int(round(period * self.fps)))
        first_frame, last_frame = frame_index_range(window.start, window.end, self.fps)
        for frame_index in range(first_frame, last_frame, step):
            yield self.frame_truth(frame_index)

    def objects_overlapping(self, window: TimeInterval) -> list[SceneObject]:
        """Objects with at least one appearance overlapping ``window``."""
        return [scene_object for scene_object in self.candidate_objects(window)
                if scene_object.appearances_within(window)]

    def objects_of_category(self, category: str) -> list[SceneObject]:
        """All objects of the given category."""
        return [scene_object for scene_object in self.objects
                if scene_object.category == category]

    def private_objects(self) -> list[SceneObject]:
        """All objects of categories the paper treats as private."""
        return [scene_object for scene_object in self.objects if scene_object.is_private]

    def add_objects(self, new_objects: Iterable[SceneObject]) -> None:
        """Append additional ground-truth objects to the video."""
        self.objects.extend(new_objects)
        self.invalidate_index()
