"""Synthetic video model.

A :class:`SyntheticVideo` is the stand-in for a camera's recorded footage: it
knows its frame rate, resolution, duration, and the ground-truth scene
objects visible over time.  Instead of pixels, "rendering" a frame produces
the list of ground-truth objects visible at that instant together with their
bounding boxes; the synthetic detector (``repro.cv.detector``) then degrades
that perfect information the way a real CNN would.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

import numpy as np

from repro.utils.timebase import (
    TimeInterval,
    frame_index_of,
    frame_index_range,
    is_integral_frame_count,
    num_frames_in,
)
from repro.video.geometry import BoundingBox

if TYPE_CHECKING:  # imported only for type annotations to avoid a package cycle
    from repro.scene.objects import SceneObject

#: Session-unique tokens telling footage *objects* apart even when their
#: name/fps/duration coincide (two test videos are both called "test-cam");
#: chunk caching keys on this so equal-looking but distinct footage never
#: shares entries.
_CONTENT_TOKENS = itertools.count(1)


@dataclass(frozen=True)
class VisibleObject:
    """A ground-truth object visible in a single frame, with its box."""

    scene_object: SceneObject
    box: BoundingBox

    @property
    def object_id(self) -> str:
        """Identifier of the underlying scene object."""
        return self.scene_object.object_id

    @property
    def category(self) -> str:
        """Class of the underlying scene object (person, car, ...)."""
        return self.scene_object.category

    @property
    def attributes(self) -> dict[str, Any]:
        """Attributes of the underlying scene object (colour, plate, ...)."""
        return self.scene_object.attributes


@dataclass(frozen=True)
class FrameTruth:
    """Ground truth for one frame: its timestamp and all visible objects."""

    timestamp: float
    frame_index: int
    visible: tuple[VisibleObject, ...]

    def of_category(self, category: str) -> tuple[VisibleObject, ...]:
        """Visible objects of the given category."""
        return tuple(obj for obj in self.visible if obj.category == category)


@dataclass
class BatchObject:
    """One object's columnar ground truth across a batch of frames.

    ``visible`` marks the batch positions the object appears in; ``boxes``
    holds the ``[x, y, width, height]`` row for every position (rows where
    ``visible`` is False are unspecified).
    """

    scene_object: SceneObject
    visible: np.ndarray
    boxes: np.ndarray


@dataclass
class FrameBatch:
    """Columnar ground truth for a run of frames (the chunk hot-path format).

    Instead of one :class:`FrameTruth` object per frame, a batch stores the
    frame indices and timestamps as arrays plus one :class:`BatchObject` per
    scene object with any visibility in the window.  The batched detector
    consumes this directly; :meth:`iter_frames` adapts it back to the legacy
    per-frame representation for third-party executables.
    """

    frame_indices: np.ndarray
    timestamps: np.ndarray
    objects: list[BatchObject]
    width: float
    height: float
    fps: float

    def __len__(self) -> int:
        return int(self.frame_indices.size)

    @property
    def num_frames(self) -> int:
        """Number of frames in the batch."""
        return int(self.frame_indices.size)

    def total_visible(self) -> int:
        """Total ground-truth object-frame pairs in the batch."""
        return int(sum(int(entry.visible.sum()) for entry in self.objects))

    def frame_truth(self, position: int) -> FrameTruth:
        """Legacy per-frame view of batch position ``position``."""
        visible: list[VisibleObject] = []
        for entry in self.objects:
            if entry.visible[position]:
                x, y, width, height = entry.boxes[position].tolist()
                visible.append(VisibleObject(entry.scene_object,
                                             BoundingBox(x, y, width, height)))
        return FrameTruth(timestamp=float(self.timestamps[position]),
                          frame_index=int(self.frame_indices[position]),
                          visible=tuple(visible))

    def iter_frames(self) -> Iterator[FrameTruth]:
        """Yield legacy :class:`FrameTruth` objects for every batch position."""
        timestamps = self.timestamps.tolist()
        frame_indices = self.frame_indices.tolist()
        per_object = [(entry.scene_object, entry.visible.tolist(), entry.boxes.tolist())
                      for entry in self.objects]
        for position in range(len(frame_indices)):
            visible: list[VisibleObject] = []
            for scene_object, visible_flags, boxes in per_object:
                if visible_flags[position]:
                    x, y, width, height = boxes[position]
                    visible.append(VisibleObject(scene_object,
                                                 BoundingBox(x, y, width, height)))
            yield FrameTruth(timestamp=timestamps[position],
                             frame_index=frame_indices[position],
                             visible=tuple(visible))


def _batch_object(scene_object: SceneObject, timestamps: np.ndarray) -> BatchObject | None:
    """Columnar visibility/boxes for one object, or None if never visible.

    Appearances are evaluated in order and earlier appearances win where they
    overlap, matching the scalar ``SceneObject.box_at`` scan.  The dominant
    single-appearance case skips the scatter buffer: rows where the object
    is hidden are unspecified by contract, so when every frame is visible
    the trajectory's batch output is used as the box array directly (the
    visible rows are elementwise identical either way).
    """
    appearances = scene_object.appearances
    if len(appearances) == 1:
        appearance = appearances[0]
        mask = appearance.visible_mask(timestamps)
        if not mask.any():
            return None
        if mask.all():
            rows = appearance.trajectory.boxes_at(
                timestamps - appearance.interval.start)
            return BatchObject(scene_object=scene_object, visible=mask, boxes=rows)
        boxes = np.zeros((timestamps.size, 4), dtype=np.float64)
        boxes[mask] = appearance.trajectory.boxes_at(
            timestamps[mask] - appearance.interval.start)
        return BatchObject(scene_object=scene_object, visible=mask, boxes=boxes)
    visible: np.ndarray | None = None
    boxes: np.ndarray | None = None
    for appearance in scene_object.appearances:
        mask = appearance.visible_mask(timestamps)
        if visible is not None:
            mask &= ~visible
        if not mask.any():
            continue
        rows = appearance.trajectory.boxes_at(timestamps[mask] - appearance.interval.start)
        if boxes is None:
            visible = mask
            boxes = np.zeros((timestamps.size, 4), dtype=np.float64)
        else:
            visible |= mask
        boxes[mask] = rows
    if visible is None:
        return None
    return BatchObject(scene_object=scene_object, visible=visible, boxes=boxes)


@dataclass
class SyntheticVideo:
    """A camera's footage over a fixed observation window.

    ``duration`` is the total recorded time in seconds; frame timestamps run
    from 0 (inclusive) to ``duration`` (exclusive) in steps of ``1 / fps``.
    """

    name: str
    fps: float
    width: float
    height: float
    duration: float
    objects: list[SceneObject] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ValueError("fps must be positive")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.width <= 0 or self.height <= 0:
            raise ValueError("frame dimensions must be positive")
        self._index_bucket_size: float = max(60.0, self.duration / 2048.0)
        self._bucket_index: dict[int, list[SceneObject]] | None = None
        self._content_token: int = next(_CONTENT_TOKENS)
        self._content_fingerprint: str | None = None

    @property
    def content_token(self) -> int:
        """Session-unique identity of this footage object (used by chunk caching)."""
        return self._content_token

    def content_fingerprint(self) -> str:
        """Stable digest of the footage *content* (scene objects + parameters).

        Unlike :attr:`content_token` (a session-unique counter), this digest
        is identical across processes and sessions for identical footage and
        changes whenever the ground-truth content changes, which is what lets
        an on-disk chunk result store be shared between ``PrividSystem``
        instances and processes with a sound invalidation story: mutated
        footage (``add_objects``) produces a new fingerprint, so stale disk
        entries can never be returned for it.  Computed lazily (full-day
        scenes hold tens of thousands of objects) and memoized until the
        footage is mutated.

        Closure-valued dynamic attributes have no content-stable identity
        (a callable hashes by qualified name, which two closures with
        different captured state share), so scenes that carry any mix the
        session-unique token into the digest: their cache entries stay
        correct but are only shareable within one process — the same
        limitation those scenes already have with the process engine.
        Declarative :mod:`repro.scene.schedules` scenes (every bundled
        scene) are fully content-addressed.
        """
        if self._content_fingerprint is None:
            from repro.core.cache import fingerprint
            from repro.scene.schedules import AttributeSchedule

            session_salt = 0
            for scene_object in self.objects:
                dynamic = getattr(scene_object, "dynamic_attributes", None) or {}
                if any(callable(value) and not isinstance(value, AttributeSchedule)
                       for value in dynamic.values()):
                    session_salt = self._content_token
                    break
            self._content_fingerprint = fingerprint(
                self.name, self.fps, self.width, self.height, self.duration,
                self.metadata, session_salt, tuple(self.objects))
        return self._content_fingerprint

    def _build_index(self) -> dict[int, list[SceneObject]]:
        """Build (lazily) a time-bucket index from appearances to objects.

        Full-day scenarios contain tens of thousands of objects; scanning all
        of them for every frame of every chunk would dominate runtime, so
        windowed lookups go through this coarse bucket index instead.
        """
        index: dict[int, list[SceneObject]] = {}
        size = self._index_bucket_size
        for scene_object in self.objects:
            buckets_seen: set[int] = set()
            for appearance in scene_object.appearances:
                first = int(appearance.interval.start // size)
                last = int(max(appearance.interval.start,
                               appearance.interval.end - 1e-9) // size)
                for bucket in range(first, last + 1):
                    if bucket not in buckets_seen:
                        index.setdefault(bucket, []).append(scene_object)
                        buckets_seen.add(bucket)
        return index

    def invalidate_index(self) -> None:
        """Drop the time-bucket index (called after objects are added)."""
        self._bucket_index = None
        self._content_fingerprint = None

    def candidate_objects(self, window: TimeInterval) -> list[SceneObject]:
        """Objects that *may* overlap ``window`` (superset, from the bucket index)."""
        if self._bucket_index is None:
            self._bucket_index = self._build_index()
        size = self._index_bucket_size
        first = int(window.start // size)
        last = int(max(window.start, window.end - 1e-9) // size)
        seen: set[int] = set()
        candidates: list[SceneObject] = []
        for bucket in range(first, last + 1):
            for scene_object in self._bucket_index.get(bucket, ()):
                if id(scene_object) not in seen:
                    seen.add(id(scene_object))
                    candidates.append(scene_object)
        return candidates

    @property
    def interval(self) -> TimeInterval:
        """The full observation window of the video."""
        return TimeInterval(0.0, self.duration)

    @property
    def num_frames(self) -> int:
        """Total number of frames in the video (epsilon-aware rounding)."""
        return num_frames_in(self.duration, self.fps)

    @property
    def frame_period(self) -> float:
        """Seconds between consecutive frames."""
        return 1.0 / self.fps

    def frame_index_at(self, timestamp: float) -> int:
        """Frame index containing ``timestamp`` (epsilon-aware rounding)."""
        return frame_index_of(timestamp, self.fps)

    def frame_timestamp(self, frame_index: int) -> float:
        """Timestamp of the first instant of frame ``frame_index``."""
        return frame_index / self.fps

    def validate_chunking(self, chunk_duration: float, stride: float) -> None:
        """Raise ValueError unless chunking parameters map to whole frames.

        Appendix D requires both the chunk duration and the stride to
        correspond to an integer number of frames.
        """
        if chunk_duration <= 0:
            raise ValueError("chunk duration must be positive")
        if not is_integral_frame_count(chunk_duration, self.fps):
            raise ValueError(
                f"chunk duration {chunk_duration}s is not an integer number of frames "
                f"at {self.fps} fps")
        if not is_integral_frame_count(stride, self.fps):
            raise ValueError(
                f"stride {stride}s is not an integer number of frames at {self.fps} fps")

    def visible_objects_at(self, timestamp: float,
                           candidates: Iterable[SceneObject] | None = None) -> list[VisibleObject]:
        """Ground-truth objects visible at ``timestamp`` with their boxes.

        ``candidates`` restricts the search to a pre-computed set of objects
        (used by chunk iteration); by default the time-bucket index narrows
        the search.
        """
        if candidates is None:
            candidates = self.candidate_objects(
                TimeInterval(timestamp, timestamp + self.frame_period))
        visible: list[VisibleObject] = []
        for scene_object in candidates:
            box = scene_object.box_at(timestamp)
            if box is not None:
                visible.append(VisibleObject(scene_object, box))
        return visible

    def frame_truth(self, frame_index: int) -> FrameTruth:
        """Ground truth for a single frame by index."""
        timestamp = self.frame_timestamp(frame_index)
        return FrameTruth(timestamp=timestamp, frame_index=frame_index,
                          visible=tuple(self.visible_objects_at(timestamp)))

    def _sample_step(self, sample_period: float | None) -> int:
        """Frame step implementing ``sample_period`` subsampling."""
        if sample_period is None:
            return 1
        period = max(sample_period, self.frame_period)
        return max(1, int(round(period * self.fps)))

    def batch_for_indices(self, frame_indices: np.ndarray,
                          candidates: Sequence[SceneObject] | None = None) -> FrameBatch:
        """Columnar ground truth for an explicit array of frame indices."""
        frame_indices = np.asarray(frame_indices, dtype=np.int64)
        timestamps = frame_indices.astype(np.float64) / self.fps
        if candidates is None:
            if frame_indices.size:
                window = TimeInterval(float(timestamps[0]),
                                      float(timestamps[-1]) + self.frame_period)
                candidates = self.objects_overlapping(window)
            else:
                candidates = []
        entries: list[BatchObject] = []
        for scene_object in candidates:
            entry = _batch_object(scene_object, timestamps)
            if entry is not None:
                entries.append(entry)
        return FrameBatch(frame_indices=frame_indices, timestamps=timestamps,
                          objects=entries, width=self.width, height=self.height,
                          fps=self.fps)

    def frame_batch(self, window: TimeInterval | None = None, *,
                    sample_period: float | None = None,
                    candidates: Sequence[SceneObject] | None = None) -> FrameBatch:
        """Columnar ground truth for every frame in ``window`` at once.

        This is the chunk hot path: boxes come from one broadcasted array op
        per appearance instead of one Python call per (object, frame), so a
        whole chunk renders in a handful of numpy ops.
        """
        window = self.interval if window is None else window.clamp(self.interval)
        step = self._sample_step(sample_period)
        first_frame, last_frame = frame_index_range(window.start, window.end, self.fps)
        frame_indices = np.arange(first_frame, last_frame, step, dtype=np.int64)
        if candidates is None:
            candidates = self.objects_overlapping(window)
        return self.batch_for_indices(frame_indices, candidates)

    #: Frames per block when the legacy iterator adapts over batches; bounds
    #: peak memory on day-long windows while amortising the batch setup.
    _FRAMES_PER_BLOCK = 4096

    def frames(self, window: TimeInterval | None = None, *,
               sample_period: float | None = None) -> Iterator[FrameTruth]:
        """Yield ground truth for every frame in ``window`` (default: whole video).

        ``sample_period`` optionally subsamples frames (in seconds); the
        default yields every frame.  Subsampling is used heavily by the
        benchmarks to keep full-day scenarios tractable without changing the
        shape of the results.

        This is the legacy per-frame adapter over :meth:`frame_batch`: frames
        are rendered in columnar blocks and materialised one
        :class:`FrameTruth` at a time.
        """
        window = self.interval if window is None else window.clamp(self.interval)
        step = self._sample_step(sample_period)
        first_frame, last_frame = frame_index_range(window.start, window.end, self.fps)
        block = self._FRAMES_PER_BLOCK * step
        for block_first in range(first_frame, last_frame, block):
            block_last = min(block_first + block, last_frame)
            indices = np.arange(block_first, block_last, step, dtype=np.int64)
            yield from self.batch_for_indices(indices).iter_frames()

    def objects_overlapping(self, window: TimeInterval) -> list[SceneObject]:
        """Objects with at least one appearance overlapping ``window``."""
        return [scene_object for scene_object in self.candidate_objects(window)
                if scene_object.appearances_within(window)]

    def objects_of_category(self, category: str) -> list[SceneObject]:
        """All objects of the given category."""
        return [scene_object for scene_object in self.objects
                if scene_object.category == category]

    def private_objects(self) -> list[SceneObject]:
        """All objects of categories the paper treats as private."""
        return [scene_object for scene_object in self.objects if scene_object.is_private]

    def add_objects(self, new_objects: Iterable[SceneObject]) -> None:
        """Append additional ground-truth objects to the video."""
        self.objects.extend(new_objects)
        self.invalidate_index()
