"""Relational plan operators: evaluation plus Fig. 10 sensitivity propagation.

Each operator implements two independent walks over the plan:

* :meth:`Relation.evaluate` computes the operator's output rows from the
  untrusted intermediate tables (used only for the *raw* query answer);
* :meth:`Relation.sensitivity` computes the operator's
  :class:`~repro.relational.sensitivity.SensitivityInfo` purely from query
  structure and the tables' declared properties — never from their contents.
  This separation is what lets Privid bound noise without trusting the
  analyst-generated tables (Section 6.3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping, Sequence

from repro.errors import QueryValidationError, SchemaError
from repro.relational.expressions import Expression, Predicate, RangeExpression, TimeBucket
from repro.relational.sensitivity import SensitivityInfo, TableProperties
from repro.relational.table import Table


@dataclass
class PlanContext:
    """Everything a plan needs to evaluate and analyse itself.

    ``tables`` holds the materialised intermediate tables by name, and
    ``properties`` the corresponding declared facts (max_rows, chunking,
    policy) used for sensitivity.
    """

    tables: dict[str, Table] = field(default_factory=dict)
    properties: dict[str, TableProperties] = field(default_factory=dict)

    def table(self, name: str) -> Table:
        """Materialised table by name."""
        if name not in self.tables:
            raise QueryValidationError(f"unknown table {name!r}")
        return self.tables[name]

    def table_properties(self, name: str) -> TableProperties:
        """Declared properties of a table by name."""
        if name not in self.properties:
            raise QueryValidationError(f"no declared properties for table {name!r}")
        return self.properties[name]


class Relation(ABC):
    """Base class of all relational plan operators."""

    @abstractmethod
    def evaluate(self, context: PlanContext) -> Table:
        """Materialise the operator's output rows."""

    @abstractmethod
    def sensitivity(self, context: PlanContext) -> SensitivityInfo:
        """Propagate the Fig. 10 sensitivity bookkeeping."""

    @abstractmethod
    def output_columns(self, context: PlanContext) -> tuple[str, ...]:
        """Names of the operator's output columns."""


@dataclass
class TableScan(Relation):
    """Read an intermediate table produced by a PROCESS statement."""

    table_name: str

    def evaluate(self, context: PlanContext) -> Table:
        return context.table(self.table_name)

    def sensitivity(self, context: PlanContext) -> SensitivityInfo:
        return SensitivityInfo.for_table(context.table_properties(self.table_name))

    def output_columns(self, context: PlanContext) -> tuple[str, ...]:
        return context.table(self.table_name).columns


@dataclass
class Selection(Relation):
    """``WHERE`` filtering: keeps rows matching a predicate.

    A selection can only remove rows, so delta, ranges and the size bound all
    carry through unchanged (Fig. 10, Selection row).
    """

    child: Relation
    predicate: Predicate

    def evaluate(self, context: PlanContext) -> Table:
        source = self.child.evaluate(context)
        rows = [row for row in source.rows if self.predicate.evaluate(row)]
        return Table(columns=source.columns, rows=rows, name=source.name)

    def sensitivity(self, context: PlanContext) -> SensitivityInfo:
        return self.child.sensitivity(context)

    def output_columns(self, context: PlanContext) -> tuple[str, ...]:
        return self.child.output_columns(context)


@dataclass
class Limit(Relation):
    """``LIMIT n``: keep the first n rows; binds the size constraint."""

    child: Relation
    limit: int

    def __post_init__(self) -> None:
        if self.limit <= 0:
            raise QueryValidationError("LIMIT must be positive")

    def evaluate(self, context: PlanContext) -> Table:
        source = self.child.evaluate(context)
        return Table(columns=source.columns, rows=source.rows[: self.limit], name=source.name)

    def sensitivity(self, context: PlanContext) -> SensitivityInfo:
        info = self.child.sensitivity(context)
        size = float(self.limit) if info.size is None else min(info.size, float(self.limit))
        return info.with_size(size)

    def output_columns(self, context: PlanContext) -> tuple[str, ...]:
        return self.child.output_columns(context)


@dataclass
class Projection(Relation):
    """``SELECT expr AS name, ...``: compute output columns row by row.

    Range propagation follows Fig. 10: a bare column reference keeps the
    column's existing range constraint; a ``range()`` expression binds a new
    one; any other transformation leaves the output column unbound.  An
    output column is *trusted* (usable as a bare GROUP BY key) only if it is
    derived exclusively from trusted columns.
    """

    child: Relation
    outputs: Sequence[tuple[str, Expression]]

    def __post_init__(self) -> None:
        names = [name for name, _ in self.outputs]
        if not names:
            raise QueryValidationError("projection must produce at least one column")
        if len(names) != len(set(names)):
            raise QueryValidationError("duplicate output column names in projection")

    def evaluate(self, context: PlanContext) -> Table:
        source = self.child.evaluate(context)
        rows = [{name: expression.evaluate(row) for name, expression in self.outputs}
                for row in source.rows]
        return Table(columns=tuple(name for name, _ in self.outputs), rows=rows,
                     name=source.name)

    def sensitivity(self, context: PlanContext) -> SensitivityInfo:
        info = self.child.sensitivity(context)
        ranges: dict[str, tuple[float, float]] = {}
        trusted: set[str] = set()
        for name, expression in self.outputs:
            referenced = expression.referenced_columns()
            if referenced and referenced <= info.trusted_columns:
                trusted.add(name)
            if isinstance(expression, RangeExpression):
                ranges[name] = (expression.low, expression.high)
            elif expression.is_column_passthrough():
                source_range = info.range_of(next(iter(referenced)))
                if source_range is not None:
                    ranges[name] = source_range
            elif isinstance(expression, TimeBucket):
                # Bucketing preserves trust but produces no numeric range.
                pass
        return SensitivityInfo(delta=info.delta, ranges=ranges, size=info.size,
                               trusted_columns=frozenset(trusted))

    def output_columns(self, context: PlanContext) -> tuple[str, ...]:
        return tuple(name for name, _ in self.outputs)


#: Per-column aggregation functions allowed inside an intermediate GROUP BY.
GROUP_AGGREGATORS = ("first", "min", "max", "sum", "count")


@dataclass
class GroupBy(Relation):
    """Intermediate GROUP BY used to collapse duplicate rows (deduplication).

    The paper's canonical use is ``GROUP BY plate`` before counting unique
    cars (Section 6.2).  Output rows contain the key columns plus, for every
    other child column, the first value observed in the group; ``aggregations``
    can instead compute per-group summaries (min/max/sum/count), e.g. the
    first and last chunk a taxi was sighted in.  When the key columns are
    analyst-provided, an explicit key list must be supplied (``WITH KEYS``);
    rows whose key is not in the list are dropped, so the key set — and hence
    the group structure — is data-independent.
    """

    child: Relation
    keys: Sequence[str]
    explicit_keys: Sequence[Any] | None = None
    aggregations: Mapping[str, tuple[str, str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.keys:
            raise QueryValidationError("GROUP BY requires at least one key column")
        for output_name, (source, func) in self.aggregations.items():
            if func not in GROUP_AGGREGATORS:
                raise QueryValidationError(
                    f"unsupported group aggregator {func!r} for column {output_name!r}")
            if not source:
                raise QueryValidationError(f"aggregator for {output_name!r} needs a source column")

    def _key_of(self, row: Mapping[str, Any]) -> tuple[Any, ...]:
        return tuple(row.get(key) for key in self.keys)

    def _allowed_keys(self) -> set[tuple[Any, ...]] | None:
        if self.explicit_keys is None:
            return None
        allowed: set[tuple[Any, ...]] = set()
        for key in self.explicit_keys:
            if isinstance(key, tuple):
                allowed.add(key)
            else:
                allowed.add((key,))
        return allowed

    @staticmethod
    def _apply_aggregator(func: str, values: list[Any]) -> Any:
        numbers = []
        for value in values:
            if value is None:
                continue
            try:
                numbers.append(float(value))
            except (TypeError, ValueError):
                continue
        if func == "count":
            return float(len([value for value in values if value is not None]))
        if func == "first":
            return values[0] if values else None
        if not numbers:
            return None
        if func == "min":
            return min(numbers)
        if func == "max":
            return max(numbers)
        return sum(numbers)

    def evaluate(self, context: PlanContext) -> Table:
        source = self.child.evaluate(context)
        allowed = self._allowed_keys()
        groups: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
        for row in source.rows:
            key = self._key_of(row)
            if allowed is not None and key not in allowed:
                continue
            groups.setdefault(key, []).append(row)
        rows: list[dict[str, Any]] = []
        for key, members in groups.items():
            output = dict(members[0])
            for output_name, (source_column, func) in self.aggregations.items():
                values = [member.get(source_column) for member in members]
                output[output_name] = self._apply_aggregator(func, values)
            rows.append(output)
        return Table(columns=self.output_columns(context), rows=rows, name=source.name)

    def sensitivity(self, context: PlanContext) -> SensitivityInfo:
        info = self.child.sensitivity(context)
        ranges = dict(info.ranges)
        for output_name, (source_column, func) in self.aggregations.items():
            if func in ("first", "min", "max") and info.range_of(source_column) is not None:
                ranges[output_name] = info.ranges[source_column]
            elif output_name in ranges and output_name not in (source_column,):
                ranges.pop(output_name, None)
        info = SensitivityInfo(delta=info.delta, ranges=ranges, size=info.size,
                               trusted_columns=info.trusted_columns)
        if self.explicit_keys is None:
            untrusted = [key for key in self.keys if key not in info.trusted_columns]
            if untrusted:
                raise QueryValidationError(
                    f"GROUP BY over analyst columns {untrusted} requires WITH KEYS "
                    "(otherwise the presence of a rare key itself leaks information)")
            return info
        size = float(len(self.explicit_keys))
        if info.size is not None:
            size = min(size, info.size)
        return info.with_size(size)

    def output_columns(self, context: PlanContext) -> tuple[str, ...]:
        base = self.child.output_columns(context)
        extra = tuple(name for name in self.aggregations if name not in base)
        return base + extra


@dataclass
class Union(Relation):
    """Concatenate the rows of several relations (UNION ALL).

    Used to aggregate across multiple cameras by stacking their intermediate
    tables (e.g. Q4 and Q6 in the evaluation).  An event could influence rows
    in every input, so the deltas add; row-count bounds add as well; a range
    constraint survives only if every input binds it (with the union of the
    bounds).
    """

    children: Sequence[Relation]

    def __post_init__(self) -> None:
        if not self.children:
            raise QueryValidationError("UNION requires at least one input relation")

    def evaluate(self, context: PlanContext) -> Table:
        columns = self.output_columns(context)
        rows: list[dict[str, Any]] = []
        for child in self.children:
            for row in child.evaluate(context).rows:
                rows.append({column: row.get(column) for column in columns})
        return Table(columns=columns, rows=rows, name="union")

    def sensitivity(self, context: PlanContext) -> SensitivityInfo:
        infos = [child.sensitivity(context) for child in self.children]
        delta = sum(info.delta for info in infos)
        if any(info.size is None for info in infos):
            size: float | None = None
        else:
            size = sum(info.size for info in infos)  # type: ignore[misc]
        ranges: dict[str, tuple[float, float]] = {}
        shared = set(infos[0].ranges)
        for info in infos[1:]:
            shared &= set(info.ranges)
        for column in shared:
            lows = [info.ranges[column][0] for info in infos]
            highs = [info.ranges[column][1] for info in infos]
            ranges[column] = (min(lows), max(highs))
        trusted = infos[0].trusted_columns
        for info in infos[1:]:
            trusted = trusted & info.trusted_columns
        return SensitivityInfo(delta=delta, ranges=ranges, size=size,
                               trusted_columns=frozenset(trusted))

    def output_columns(self, context: PlanContext) -> tuple[str, ...]:
        columns: list[str] = []
        for child in self.children:
            for column in child.output_columns(context):
                if column not in columns:
                    columns.append(column)
        return tuple(columns)


class JoinKind(str, Enum):
    """Join flavours supported by the grammar (equijoin = intersection, outer = union)."""

    INNER = "inner"
    OUTER = "outer"


@dataclass
class Join(Relation):
    """Equi/outer join of two relations on a set of key columns.

    The sensitivity of a join is the *sum* of its inputs' sensitivities, not
    the minimum: because either input's executable can "prime" its table with
    values it expects in the other, an event need only influence one side to
    influence the join output (Section 6.3, "Privacy semantics of untrusted
    tables").
    """

    left: Relation
    right: Relation
    on: Sequence[str]
    kind: JoinKind = JoinKind.INNER

    def __post_init__(self) -> None:
        if not self.on:
            raise QueryValidationError("JOIN requires at least one key column")

    def _key_of(self, row: Mapping[str, Any]) -> tuple[Any, ...]:
        return tuple(row.get(key) for key in self.on)

    def _inputs_deduplicated_on_keys(self) -> bool:
        """True if both inputs are GROUP BYs over exactly the join keys."""
        return (isinstance(self.left, GroupBy) and isinstance(self.right, GroupBy)
                and set(self.left.keys) == set(self.on)
                and set(self.right.keys) == set(self.on))

    def evaluate(self, context: PlanContext) -> Table:
        left_table = self.left.evaluate(context)
        right_table = self.right.evaluate(context)
        for key in self.on:
            if not left_table.has_column(key) or not right_table.has_column(key):
                raise SchemaError(f"join key {key!r} missing from one of the inputs")
        output_columns = self.output_columns(context)
        right_by_key: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
        for row in right_table.rows:
            right_by_key.setdefault(self._key_of(row), []).append(row)
        rows: list[dict[str, Any]] = []
        matched_right_keys: set[tuple[Any, ...]] = set()
        for left_row in left_table.rows:
            key = self._key_of(left_row)
            matches = right_by_key.get(key, [])
            if matches:
                matched_right_keys.add(key)
                for right_row in matches:
                    merged = dict(right_row)
                    merged.update(left_row)
                    rows.append({column: merged.get(column) for column in output_columns})
            elif self.kind is JoinKind.OUTER:
                rows.append({column: left_row.get(column) for column in output_columns})
        if self.kind is JoinKind.OUTER:
            for key, right_rows in right_by_key.items():
                if key in matched_right_keys:
                    continue
                for right_row in right_rows:
                    rows.append({column: right_row.get(column) for column in output_columns})
        return Table(columns=output_columns, rows=rows, name="join")

    def sensitivity(self, context: PlanContext) -> SensitivityInfo:
        left_info = self.left.sensitivity(context)
        right_info = self.right.sensitivity(context)
        delta = left_info.delta + right_info.delta
        ranges = dict(right_info.ranges)
        ranges.update(left_info.ranges)
        if left_info.size is None or right_info.size is None:
            size: float | None = None
        elif self._inputs_deduplicated_on_keys():
            # Fig. 10 requires joins to be immediately preceded by a GROUP BY
            # over the join keys; keys are then unique on each side, so an
            # inner join has at most min(left, right) rows and an outer join
            # at most left + right.
            if self.kind is JoinKind.INNER:
                size = min(left_info.size, right_info.size)
            else:
                size = left_info.size + right_info.size
        elif self.kind is JoinKind.INNER:
            size = left_info.size * right_info.size
        else:
            size = left_info.size + right_info.size
        trusted = left_info.trusted_columns & right_info.trusted_columns
        return SensitivityInfo(delta=delta, ranges=ranges, size=size,
                               trusted_columns=frozenset(trusted))

    def output_columns(self, context: PlanContext) -> tuple[str, ...]:
        left_columns = self.left.output_columns(context)
        right_columns = self.right.output_columns(context)
        extra = tuple(column for column in right_columns if column not in left_columns)
        return left_columns + extra
